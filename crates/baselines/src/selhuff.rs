//! Selective Huffman coding — Jas, Ghosh-Dastidar, Ng, Touba, TCAD 2003
//! (reference \[7\] of the 9C paper).
//!
//! The stream is cut into fixed `b`-bit blocks; only the `m` most frequent
//! block patterns are Huffman-coded (flag bit `1` + codeword), everything
//! else ships raw (flag bit `0` + `b` bits). Don't-cares are exploited by
//! matching cubes *compatibly* against the selected patterns.
//!
//! The dictionary (the `m` selected patterns) lives in the on-chip decoder,
//! not in the ATE stream; [`SelectiveHuffmanEncoded::dictionary_bits`]
//! reports its size separately, matching how the literature accounts for it.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use crate::huffman::HuffmanCode;
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::{Trit, TritVec};
use std::collections::HashMap;
use std::fmt;

/// Configuration of the selective Huffman codec.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::selhuff::SelectiveHuffman;
/// use ninec_testdata::trit::TritVec;
///
/// let sh = SelectiveHuffman::new(8, 4)?;
/// let stream: TritVec = "0000000000000000XXXXXXXX11111111".parse()?;
/// assert!(sh.compression_ratio(&stream) > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectiveHuffman {
    block_bits: usize,
    coded_patterns: usize,
}

impl SelectiveHuffman {
    /// Creates a codec with `block_bits`-bit blocks and `coded_patterns`
    /// dictionary entries.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSelectiveHuffmanConfig`] if either parameter is 0
    /// or `block_bits > 32`.
    pub fn new(
        block_bits: usize,
        coded_patterns: usize,
    ) -> Result<Self, InvalidSelectiveHuffmanConfig> {
        if block_bits == 0 || block_bits > 32 || coded_patterns == 0 {
            return Err(InvalidSelectiveHuffmanConfig {
                block_bits,
                coded_patterns,
            });
        }
        Ok(Self {
            block_bits,
            coded_patterns,
        })
    }

    /// Block size in bits.
    pub fn block_bits(&self) -> usize {
        self.block_bits
    }

    /// Compresses a cube stream, returning the self-describing result.
    pub fn encode(&self, stream: &TritVec) -> SelectiveHuffmanEncoded {
        let b = self.block_bits;
        let source_len = stream.len();
        if source_len == 0 {
            // The empty stream compresses to zero bits (decode never
            // consults the dictionary or code, so a singleton placeholder
            // keeps the struct well-formed).
            return SelectiveHuffmanEncoded {
                config: *self,
                bits: BitVec::new(),
                dictionary: Vec::new(),
                code: HuffmanCode::from_frequencies(&[1]).expect("singleton alphabet"),
                source_len: 0,
            };
        }
        // Pad with X to whole blocks.
        let padded_len = source_len.div_ceil(b).max(1) * b;
        let mut padded = stream.clone();
        for _ in source_len..padded_len {
            padded.push(Trit::X);
        }

        // Pass 1: count zero-filled signatures to select the dictionary.
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for start in (0..padded_len).step_by(b) {
            let sig = block_signature(&padded, start, b);
            *counts.entry(sig).or_insert(0) += 1;
        }
        let mut ranked: Vec<(u32, u64)> = counts.into_iter().collect();
        ranked.sort_by_key(|&(sig, n)| (std::cmp::Reverse(n), sig));
        ranked.truncate(self.coded_patterns);
        let dictionary: Vec<u32> = ranked.iter().map(|&(sig, _)| sig).collect();

        // Pass 2: compatible matching against the dictionary; count usage.
        let mut usage = vec![0u64; dictionary.len()];
        let mut choices: Vec<Option<usize>> = Vec::with_capacity(padded_len / b);
        for start in (0..padded_len).step_by(b) {
            let hit = dictionary
                .iter()
                .position(|&pat| block_compatible(&padded, start, b, pat));
            if let Some(i) = hit {
                usage[i] += 1;
            }
            choices.push(hit);
        }
        let code = HuffmanCode::from_frequencies(&usage).expect("dictionary is non-empty");

        // Pass 3: emit.
        let mut bits = BitVec::new();
        for (block_idx, start) in (0..padded_len).step_by(b).enumerate() {
            match choices[block_idx] {
                Some(i) => {
                    bits.push(true);
                    code.encode_symbol(i, &mut bits);
                }
                None => {
                    bits.push(false);
                    let raw = fill_trits(&padded.slice(start, start + b), FillStrategy::Zero)
                        .to_bitvec()
                        .expect("zero fill fully specifies the block");
                    bits.extend_from_bitvec(&raw);
                }
            }
        }
        SelectiveHuffmanEncoded {
            config: *self,
            bits,
            dictionary,
            code,
            source_len,
        }
    }
}

impl TestDataCodec for SelectiveHuffman {
    fn name(&self) -> &str {
        "SelHuff"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(stream.len(), Payload::SelHuff(self.encode(stream)))
    }
}

/// Zero-filled `b`-bit signature of a block, MSB-first.
fn block_signature(stream: &TritVec, start: usize, b: usize) -> u32 {
    let mut sig = 0u32;
    for i in 0..b {
        sig <<= 1;
        if stream.get(start + i) == Some(Trit::One) {
            sig |= 1;
        }
    }
    sig
}

/// `true` if every care bit of the block agrees with `pattern`.
fn block_compatible(stream: &TritVec, start: usize, b: usize, pattern: u32) -> bool {
    for i in 0..b {
        let want = pattern >> (b - 1 - i) & 1 == 1;
        match stream.get(start + i) {
            Some(Trit::Zero) if want => return false,
            Some(Trit::One) if !want => return false,
            _ => {}
        }
    }
    true
}

/// Result of selective Huffman compression, carrying the decoder model.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveHuffmanEncoded {
    config: SelectiveHuffman,
    /// The ATE bit stream.
    pub bits: BitVec,
    dictionary: Vec<u32>,
    code: HuffmanCode,
    source_len: usize,
}

impl SelectiveHuffmanEncoded {
    /// Size in bits of the on-chip dictionary (`m · b`).
    pub fn dictionary_bits(&self) -> usize {
        self.dictionary.len() * self.config.block_bits
    }

    /// Decompresses back to `source_len` bits (the selected fill of the
    /// source).
    ///
    /// # Errors
    ///
    /// Returns [`SelectiveHuffmanDecodeError`] on truncation/corruption.
    pub fn decode(&self) -> Result<BitVec, SelectiveHuffmanDecodeError> {
        let b = self.config.block_bits;
        let mut reader = BitReader::new(&self.bits);
        let mut out = BitVec::with_capacity(self.source_len + b);
        while out.len() < self.source_len {
            let coded = reader.read_bit().ok_or(SelectiveHuffmanDecodeError {
                produced: out.len(),
            })?;
            if coded {
                let sym =
                    self.code
                        .decode_symbol(&mut reader)
                        .ok_or(SelectiveHuffmanDecodeError {
                            produced: out.len(),
                        })?;
                let pat = self.dictionary[sym];
                for i in 0..b {
                    out.push(pat >> (b - 1 - i) & 1 == 1);
                }
            } else {
                for _ in 0..b {
                    let bit = reader.read_bit().ok_or(SelectiveHuffmanDecodeError {
                        produced: out.len(),
                    })?;
                    out.push(bit);
                }
            }
        }
        Ok(out.iter().take(self.source_len).collect())
    }
}

/// Error decoding a selective-Huffman stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectiveHuffmanDecodeError {
    /// Bits produced before the failure.
    pub produced: usize,
}

impl fmt::Display for SelectiveHuffmanDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "selective-huffman stream truncated after {} bits",
            self.produced
        )
    }
}

impl std::error::Error for SelectiveHuffmanDecodeError {}

/// Error: invalid selective-Huffman configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSelectiveHuffmanConfig {
    /// Rejected block size.
    pub block_bits: usize,
    /// Rejected dictionary size.
    pub coded_patterns: usize,
}

impl fmt::Display for InvalidSelectiveHuffmanConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid config: block_bits={} (1..=32), coded_patterns={} (>=1)",
            self.block_bits, self.coded_patterns
        )
    }
}

impl std::error::Error for InvalidSelectiveHuffmanConfig {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation() {
        assert!(SelectiveHuffman::new(0, 4).is_err());
        assert!(SelectiveHuffman::new(33, 4).is_err());
        assert!(SelectiveHuffman::new(8, 0).is_err());
        assert!(SelectiveHuffman::new(8, 4).is_ok());
    }

    #[test]
    fn decode_covers_source_care_bits() {
        let sh = SelectiveHuffman::new(4, 3).unwrap();
        let stream: TritVec = "0000X0X011111X0X0000".parse().unwrap();
        let enc = sh.encode(&stream);
        let dec = enc.decode().unwrap();
        assert_eq!(dec.len(), stream.len());
        for i in 0..stream.len() {
            if let Some(v) = stream.get(i).unwrap().value() {
                assert_eq!(dec.get(i), Some(v), "care bit {i}");
            }
        }
    }

    #[test]
    fn repeated_blocks_compress() {
        let sh = SelectiveHuffman::new(8, 2).unwrap();
        let stream: TritVec = "00000000".repeat(20).parse::<TritVec>().unwrap();
        // Every block matches the top pattern: 1 flag + 1 codeword bit.
        let enc = sh.encode(&stream);
        assert!(enc.bits.len() <= 40, "got {}", enc.bits.len());
        assert!(sh.compression_ratio(&stream) > 70.0);
    }

    #[test]
    fn x_blocks_match_dictionary_compatibly() {
        let sh = SelectiveHuffman::new(4, 1).unwrap();
        // Dictionary will hold "0000" (most frequent signature); the all-X
        // block must match it compatibly rather than ship raw.
        let stream: TritVec = "0000XXXX0000".parse().unwrap();
        let enc = sh.encode(&stream);
        // 3 blocks x (flag + 1-bit codeword) = 6 bits.
        assert_eq!(enc.bits.len(), 6);
    }

    #[test]
    fn uncoded_blocks_ship_raw() {
        let sh = SelectiveHuffman::new(4, 1).unwrap();
        // "0101" appears once; dictionary holds "0000".
        let stream: TritVec = "000000000101".parse().unwrap();
        let enc = sh.encode(&stream);
        // 2 coded blocks (2 bits each) + 1 raw block (1 + 4 bits) = 9.
        assert_eq!(enc.bits.len(), 9);
        assert_eq!(enc.decode().unwrap().to_string(), "000000000101");
    }

    #[test]
    fn dictionary_size_reported() {
        let sh = SelectiveHuffman::new(8, 4).unwrap();
        let stream: TritVec = "01010101".repeat(4).parse::<TritVec>().unwrap();
        let enc = sh.encode(&stream);
        assert!(enc.dictionary_bits() <= 32);
    }

    #[test]
    fn padding_preserves_source_length() {
        let sh = SelectiveHuffman::new(8, 2).unwrap();
        let stream: TritVec = "00000".parse().unwrap();
        let enc = sh.encode(&stream);
        assert_eq!(enc.decode().unwrap().len(), 5);
    }
}

//! Golomb coding of scan test data — Chandra & Chakrabarty, TCAD 2001
//! (reference \[8\] of the 9C paper).
//!
//! 0-filled test data is parsed into 0-runs terminated by `1`; a run of
//! length `l` with group size `b = 2^g` is coded as `⌊l/b⌋` ones, a zero,
//! and the `g`-bit binary remainder.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use crate::fdr::RunLengthDecodeError;
use crate::runlength::zero_runs;
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::TritVec;
use std::fmt;

/// The Golomb codec with a power-of-two group size.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::golomb::Golomb;
/// use ninec_testdata::trit::TritVec;
///
/// let golomb = Golomb::new(4)?;
/// let sparse: TritVec = format!("{}1", "0".repeat(30)).parse()?;
/// assert!(golomb.compression_ratio(&sparse) > 50.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Golomb {
    b: u64,
    g: u32,
}

impl Golomb {
    /// Creates a Golomb codec with group size `b`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGroupSize`] unless `b` is a power of two ≥ 2.
    pub fn new(b: u64) -> Result<Self, InvalidGroupSize> {
        if b < 2 || !b.is_power_of_two() {
            return Err(InvalidGroupSize { b });
        }
        Ok(Self {
            b,
            g: b.trailing_zeros(),
        })
    }

    /// The group size `b`.
    pub fn group_size(&self) -> u64 {
        self.b
    }

    /// Encodes one run length.
    fn encode_run(&self, l: u64, out: &mut BitVec) {
        for _ in 0..l / self.b {
            out.push(true);
        }
        out.push(false);
        out.push_bits_msb(l % self.b, self.g as usize);
    }

    /// Compresses a cube stream (0-filling its don't-cares first).
    pub fn compress(&self, stream: &TritVec) -> BitVec {
        let filled = fill_trits(stream, FillStrategy::Zero)
            .to_bitvec()
            .expect("zero fill fully specifies the stream");
        let (runs, _) = zero_runs(&filled);
        let mut out = BitVec::new();
        for l in runs {
            self.encode_run(l, &mut out);
        }
        out
    }

    /// Decompresses to exactly `out_len` bits (the 0-filled source).
    ///
    /// # Errors
    ///
    /// Returns [`RunLengthDecodeError`] on truncated or overlong streams.
    pub fn decompress(
        &self,
        bits: &BitVec,
        out_len: usize,
    ) -> Result<BitVec, RunLengthDecodeError> {
        let mut reader = BitReader::new(bits);
        let mut out = BitVec::with_capacity(out_len);
        while out.len() < out_len {
            let mut q = 0u64;
            loop {
                match reader.read_bit() {
                    Some(true) => q += 1,
                    Some(false) => break,
                    None => {
                        return Err(RunLengthDecodeError::Truncated {
                            produced: out.len(),
                        })
                    }
                }
            }
            let r =
                reader
                    .read_bits_msb(self.g as usize)
                    .ok_or(RunLengthDecodeError::Truncated {
                        produced: out.len(),
                    })?;
            let l = q * self.b + r;
            for _ in 0..l {
                out.push(false);
            }
            out.push(true);
        }
        if out.len() > out_len {
            if out.len() != out_len + 1 || out.get(out_len) != Some(true) {
                return Err(RunLengthDecodeError::Overrun {
                    produced: out.len(),
                });
            }
            let mut trimmed = BitVec::with_capacity(out_len);
            for i in 0..out_len {
                trimmed.push(out.get(i).expect("in range"));
            }
            out = trimmed;
        }
        Ok(out)
    }
}

impl TestDataCodec for Golomb {
    fn name(&self) -> &str {
        "Golomb"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(
            stream.len(),
            Payload::Golomb {
                b: self.b,
                bits: self.compress(stream),
            },
        )
    }
}

/// Error: invalid Golomb group size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGroupSize {
    /// The rejected group size.
    pub b: u64,
}

impl fmt::Display for InvalidGroupSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group size must be a power of two >= 2, got {}", self.b)
    }
}

impl std::error::Error for InvalidGroupSize {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_validation() {
        assert!(Golomb::new(0).is_err());
        assert!(Golomb::new(1).is_err());
        assert!(Golomb::new(3).is_err());
        assert!(Golomb::new(2).is_ok());
        assert!(Golomb::new(8).is_ok());
    }

    #[test]
    fn published_example_codewords() {
        // b = 4: run 0 -> "000", run 3 -> "011", run 4 -> "1000",
        // run 9 -> "11001".
        let g = Golomb::new(4).unwrap();
        let expect = [(0u64, "000"), (3, "011"), (4, "1000"), (9, "11001")];
        for (l, s) in expect {
            let mut out = BitVec::new();
            g.encode_run(l, &mut out);
            assert_eq!(out.to_string(), s, "run {l}");
        }
    }

    #[test]
    fn roundtrips() {
        let g = Golomb::new(4).unwrap();
        for s in ["0000001", "1111", "000000", "0X0X0X1XX0", "1", "0"] {
            let cubes: TritVec = s.parse().unwrap();
            let filled = fill_trits(&cubes, FillStrategy::Zero).to_bitvec().unwrap();
            let back = g.decompress(&g.compress(&cubes), cubes.len()).unwrap();
            assert_eq!(back, filled, "source {s}");
        }
    }

    #[test]
    fn larger_groups_win_on_sparser_data() {
        let sparse: TritVec = format!("{}1", "0".repeat(255)).parse().unwrap();
        let small = Golomb::new(2).unwrap().compressed_size(&sparse);
        let large = Golomb::new(64).unwrap().compressed_size(&sparse);
        assert!(large < small, "b=64 {large} should beat b=2 {small}");
    }

    #[test]
    fn truncated_errors() {
        let g = Golomb::new(4).unwrap();
        let bits = BitVec::from_str_radix2("11").unwrap();
        assert!(matches!(
            g.decompress(&bits, 100),
            Err(RunLengthDecodeError::Truncated { .. })
        ));
    }
}

//! Alternating run-length coding using FDR — Chandra & Chakrabarty's
//! "unified" scheme (reference \[10\] of the 9C paper).
//!
//! The stream is viewed as strictly alternating runs `0^a 1^b 0^c …`
//! (only the leading 0-run may be empty); each length is FDR-coded. No
//! type bits are needed because polarity alternates deterministically.
//! Minimum-transition fill is applied first to lengthen the runs.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use crate::fdr::RunLengthDecodeError;
use crate::runlength::{alternating_runs, fdr_decode_run, fdr_encode_run};
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::TritVec;

/// The alternating run-length codec.
///
/// # Examples
///
/// ```
/// use ninec_baselines::arl::AlternatingRunLength;
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_testdata::trit::TritVec;
///
/// let stream: TritVec = format!("{}{}", "0".repeat(50), "1".repeat(14)).parse()?;
/// assert!(AlternatingRunLength::new().compression_ratio(&stream) > 60.0);
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlternatingRunLength;

impl AlternatingRunLength {
    /// Creates the codec.
    pub fn new() -> Self {
        Self
    }

    /// Compresses a cube stream (minimum-transition fill first).
    pub fn compress(&self, stream: &TritVec) -> BitVec {
        let filled = fill_trits(stream, FillStrategy::MinTransition)
            .to_bitvec()
            .expect("MT fill fully specifies the stream");
        let mut out = BitVec::new();
        for l in alternating_runs(&filled) {
            fdr_encode_run(l, &mut out);
        }
        out
    }

    /// Decompresses to exactly `out_len` bits (the MT-filled source).
    ///
    /// # Errors
    ///
    /// Returns [`RunLengthDecodeError`] on truncated or overlong streams.
    pub fn decompress(
        &self,
        bits: &BitVec,
        out_len: usize,
    ) -> Result<BitVec, RunLengthDecodeError> {
        let mut reader = BitReader::new(bits);
        let mut out = BitVec::with_capacity(out_len);
        let mut symbol = false;
        while out.len() < out_len {
            let l = fdr_decode_run(&mut reader).ok_or(RunLengthDecodeError::Truncated {
                produced: out.len(),
            })?;
            for _ in 0..l {
                out.push(symbol);
            }
            symbol = !symbol;
        }
        if out.len() > out_len {
            return Err(RunLengthDecodeError::Overrun {
                produced: out.len(),
            });
        }
        Ok(out)
    }
}

impl TestDataCodec for AlternatingRunLength {
    fn name(&self) -> &str {
        "ARL"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(stream.len(), Payload::Arl(self.compress(stream)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        for s in [
            "0000001",
            "1111",
            "000000",
            "0X0X0X1XX0",
            "1",
            "0",
            "0101010101",
            "11000111001",
        ] {
            let cubes: TritVec = s.parse().unwrap();
            let filled = fill_trits(&cubes, FillStrategy::MinTransition)
                .to_bitvec()
                .unwrap();
            let a = AlternatingRunLength::new();
            let back = a.decompress(&a.compress(&cubes), cubes.len()).unwrap();
            assert_eq!(back, filled, "source {s}");
        }
    }

    #[test]
    fn leading_one_costs_an_empty_run() {
        // "111" = runs [0, 3]: FDR(0)="00", FDR(3)="1001".
        let s: TritVec = "111".parse().unwrap();
        assert_eq!(
            AlternatingRunLength::new().compress(&s).to_string(),
            "001001"
        );
    }

    #[test]
    fn beats_plain_fdr_on_one_heavy_data() {
        use crate::fdr::Fdr;
        let s: TritVec = "1".repeat(64).parse::<TritVec>().unwrap();
        let arl = AlternatingRunLength::new().compressed_size(&s);
        let fdr = Fdr::new().compressed_size(&s);
        // One empty 0-run + one 64-long 1-run vs sixty-four 0-length runs.
        assert!(
            arl < fdr / 4,
            "ARL {arl} should crush FDR {fdr} on runs of 1s"
        );
    }

    #[test]
    fn truncation_detected() {
        let a = AlternatingRunLength::new();
        assert!(matches!(
            a.decompress(&BitVec::new(), 3),
            Err(RunLengthDecodeError::Truncated { .. })
        ));
    }
}

//! Common interface for the baseline test-data compression codes.
//!
//! [`TestDataCodec`] is the uniform entry point the Table IV harness
//! dispatches through: [`encode_stream`](TestDataCodec::encode_stream)
//! produces a self-describing [`CodecStream`] and
//! [`decode_stream`](TestDataCodec::decode_stream) reconstructs the test
//! data from it, so every code — the run-length family, the Huffman
//! family, the dictionary code, and 9C itself (via
//! [`crate::nine_coded::NineCoded`]) — roundtrips behind one trait object.
//! [`crate::registry::table4_registry`] returns the full Table IV column
//! set as `Box<dyn TestDataCodec>`.
//!
//! A [`CodecStream`] carries whatever decoder model its code needs
//! (Golomb's group size, VIHC's Huffman code, the dictionary contents, 9C's
//! code table), mirroring how the on-chip decompressors of the literature
//! hold that state in hardware rather than in the ATE stream.

use crate::arl::AlternatingRunLength;
use crate::dict::{DictionaryDecodeError, DictionaryEncoded};
use crate::efdr::Efdr;
use crate::fdr::{Fdr, RunLengthDecodeError};
use crate::golomb::Golomb;
use crate::selhuff::{SelectiveHuffmanDecodeError, SelectiveHuffmanEncoded};
use crate::vihc::{VihcDecodeError, VihcEncoded};
use ninec_testdata::bits::BitVec;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// A baseline test-data compression code, as compared against 9C in the
/// paper's Table IV.
///
/// The uniform entry points are
/// [`encode_stream`](TestDataCodec::encode_stream) /
/// [`decode_stream`](TestDataCodec::decode_stream) (a self-describing
/// roundtrip) and [`compressed_size`](TestDataCodec::compressed_size)
/// (enough to reproduce the compression-ratio comparisons); each concrete
/// codec additionally exposes its own typed encode/decode API, which the
/// test suites use for error-path verification.
///
/// The `Send + Sync` supertrait lets the default *segmented* methods
/// ([`encode_segmented`](TestDataCodec::encode_segmented) /
/// [`decode_segmented`](TestDataCodec::decode_segmented)) shard one stream
/// across the engine's work-stealing pool — every codec in this crate is a
/// plain owned-data struct, so the bound costs nothing.
pub trait TestDataCodec: Send + Sync {
    /// Short display name (e.g. `"FDR"`).
    fn name(&self) -> &str;

    /// Compresses `stream` (a test-cube stream; the codec applies its own
    /// preferred don't-care fill) into a self-describing [`CodecStream`].
    fn encode_stream(&self, stream: &TritVec) -> CodecStream;

    /// Parallel default-method path: partitions `stream` into segments of
    /// `segment_bits` source trits (the same segment geometry as
    /// [`ninec::engine::Engine`]) and encodes each independently on the
    /// engine's work-stealing pool.
    ///
    /// Determinism: segments are keyed by index and reassembled in source
    /// order, so the result is independent of `threads`. Each segment is a
    /// self-contained [`CodecStream`] — exactly the paper's Fig. 4(c)
    /// picture of one encoded sub-stream per on-chip decoder.
    fn encode_segmented(
        &self,
        stream: &TritVec,
        threads: usize,
        segment_bits: usize,
    ) -> SegmentedStream {
        let seg_len = segment_bits.max(1);
        let ranges: Vec<(usize, usize)> = (0..stream.len().div_ceil(seg_len))
            .map(|i| (i * seg_len, ((i + 1) * seg_len).min(stream.len())))
            .collect();
        let segments = ninec::engine::pool::map_indexed(threads, ranges.len(), |i| {
            let (start, end) = ranges[i];
            let mut sub = TritVec::with_capacity(end - start);
            sub.extend_from_slice(stream.slice_view(start, end));
            self.encode_stream(&sub)
        });
        SegmentedStream { segments }
    }

    /// Decodes a [`SegmentedStream`] produced by
    /// [`encode_segmented`](TestDataCodec::encode_segmented), decoding
    /// segments concurrently and concatenating them in stream order.
    ///
    /// # Errors
    ///
    /// The first [`CodecDecodeError`] in segment order, if any segment is
    /// truncated or corrupt.
    fn decode_segmented(
        &self,
        encoded: &SegmentedStream,
        threads: usize,
    ) -> Result<TritVec, CodecDecodeError> {
        let parts = ninec::engine::pool::map_indexed(threads, encoded.segments.len(), |i| {
            self.decode_stream(&encoded.segments[i])
        });
        let mut out = TritVec::with_capacity(encoded.source_len());
        for part in parts {
            out.extend_from_tritvec(&part?);
        }
        Ok(out)
    }

    /// Reconstructs test data from an [`encode_stream`](TestDataCodec::encode_stream)
    /// result.
    ///
    /// The reconstruction is the codec's canonical one: the fill-based
    /// baselines return the *filled* (fully specified) source, while 9C
    /// preserves its leftover don't-cares. In every case each care bit of
    /// the original stream is reproduced exactly.
    ///
    /// # Errors
    ///
    /// Returns [`CodecDecodeError`] on truncated or corrupt streams.
    ///
    /// Successful decodes record their wall time into the per-codec
    /// `ninec.baseline.<name>.decode_ns` histogram (a no-op with
    /// telemetry compiled out or runtime-disabled).
    fn decode_stream(&self, encoded: &CodecStream) -> Result<TritVec, CodecDecodeError> {
        let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
        let out = encoded.decode();
        if let (Some(t0), Ok(_)) = (t0, &out) {
            ninec_obs::histogram(&format!("ninec.baseline.{}.decode_ns", self.name()))
                .record(t0.elapsed().as_nanos() as u64);
        }
        out
    }

    /// Size in bits of the compressed form of `stream`.
    fn compressed_size(&self, stream: &TritVec) -> usize {
        self.encode_stream(stream).compressed_bits()
    }

    /// Compression ratio in percent against `|T_D| = stream.len()`.
    ///
    /// By convention the ratio of the **empty stream is 0.0** (neither
    /// compression nor expansion): every codec in this crate produces 0
    /// compressed bits for 0 input bits, and `0/0` is pinned to zero
    /// rather than NaN so sweep maxima and table averages stay finite.
    ///
    /// This is the Table IV harness entry point, so it doubles as the
    /// per-codec measurement site: encode wall time goes to the
    /// `ninec.baseline.<name>.encode_ns` histogram and the resulting
    /// ratio to the `ninec.baseline.<name>.cr_pct` gauge (last write
    /// wins — the gauge reflects the most recent circuit compared).
    fn compression_ratio(&self, stream: &TritVec) -> f64 {
        if stream.is_empty() {
            return 0.0;
        }
        let td = stream.len() as f64;
        let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
        let size = self.compressed_size(stream);
        let cr = (td - size as f64) / td * 100.0;
        if let Some(t0) = t0 {
            let reg = ninec_obs::global();
            reg.histogram(&format!("ninec.baseline.{}.encode_ns", self.name()))
                .record(t0.elapsed().as_nanos() as u64);
            reg.gauge(&format!("ninec.baseline.{}.cr_pct", self.name()))
                .set(cr);
        }
        cr
    }
}

/// A stream sharded into independently decodable [`CodecStream`]
/// segments — the output of [`TestDataCodec::encode_segmented`].
///
/// Segment order is source order; concatenating the decoded segments
/// reproduces the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentedStream {
    segments: Vec<CodecStream>,
}

impl SegmentedStream {
    /// Assembles a stream from hand-built segments — the mutation entry
    /// point for robustness harnesses (drop, duplicate, reorder or splice
    /// segments between codecs). [`TestDataCodec::decode_segmented`] must
    /// answer any such concoction with a typed error or a decode of
    /// whatever the segments claim — never a panic.
    #[must_use]
    pub fn from_segments(segments: Vec<CodecStream>) -> Self {
        Self { segments }
    }

    /// The per-segment compressed streams, in source order.
    #[must_use]
    pub fn segments(&self) -> &[CodecStream] {
        &self.segments
    }

    /// Total source trits covered, `|T_D|`.
    #[must_use]
    pub fn source_len(&self) -> usize {
        self.segments.iter().map(CodecStream::source_len).sum()
    }

    /// Total ATE payload bits across segments, `|T_E|`.
    #[must_use]
    pub fn compressed_bits(&self) -> usize {
        self.segments.iter().map(CodecStream::compressed_bits).sum()
    }
}

/// A self-describing compressed stream: the ATE payload plus whatever
/// decoder model the code keeps on chip.
///
/// Produced by [`TestDataCodec::encode_stream`]; decoded by
/// [`CodecStream::decode`] (or the trait's
/// [`decode_stream`](TestDataCodec::decode_stream), which dispatches
/// here).
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::fdr::Fdr;
/// use ninec_testdata::trit::TritVec;
///
/// let stream: TritVec = "000000010000001".parse()?;
/// let enc = Fdr::new().encode_stream(&stream);
/// assert!(enc.compressed_bits() < stream.len());
/// let back = enc.decode()?;
/// assert_eq!(back.len(), stream.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CodecStream {
    source_len: usize,
    payload: Payload,
}

/// The per-code payload + decoder model. `pub(crate)` so each codec module
/// constructs its own variant; consumers only see [`CodecStream`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Payload {
    /// FDR-coded 0-runs of the 0-filled source.
    Fdr(BitVec),
    /// Golomb-coded 0-runs; `b` is the group size the decoder needs.
    Golomb {
        /// Group size (validated power of two at encode time).
        b: u64,
        /// The ATE bit stream.
        bits: BitVec,
    },
    /// EFDR-coded runs of both polarities.
    Efdr(BitVec),
    /// Alternating run-length coded runs of the MT-filled source.
    Arl(BitVec),
    /// VIHC stream plus its Huffman decoder model.
    Vihc(VihcEncoded),
    /// Selective-Huffman stream plus dictionary and code.
    SelHuff(SelectiveHuffmanEncoded),
    /// Fixed-index dictionary stream plus the dictionary.
    Dict(DictionaryEncoded),
    /// A 9C-encoded stream (carries `K` and the code table).
    NineC(ninec::Encoded),
}

impl CodecStream {
    pub(crate) fn new(source_len: usize, payload: Payload) -> Self {
        Self {
            source_len,
            payload,
        }
    }

    /// Original (unpadded) length of the source stream, `|T_D|`.
    #[must_use]
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Size of the ATE payload in bits, `|T_E|`.
    ///
    /// On-chip decoder state (Huffman tables, dictionaries, the 9C code
    /// table) is *not* counted, matching the accounting of the literature.
    #[must_use]
    pub fn compressed_bits(&self) -> usize {
        match &self.payload {
            Payload::Fdr(bits) | Payload::Efdr(bits) | Payload::Arl(bits) => bits.len(),
            Payload::Golomb { bits, .. } => bits.len(),
            Payload::Vihc(enc) => enc.bits.len(),
            Payload::SelHuff(enc) => enc.bits.len(),
            Payload::Dict(enc) => enc.bits.len(),
            Payload::NineC(enc) => enc.compressed_len(),
        }
    }

    /// Copy of this stream claiming a different source length — the
    /// header/payload-mismatch case of the robustness harness.
    #[must_use]
    pub fn with_source_len(&self, source_len: usize) -> Self {
        Self {
            source_len,
            payload: self.payload.clone(),
        }
    }

    /// Copy with the ATE payload cut to at most `keep` symbols (bits for
    /// the binary codes, trits for 9C) — models a transfer that stopped
    /// short. The claimed source length is unchanged, so decoding should
    /// report truncation.
    #[must_use]
    pub fn truncated(&self, keep: usize) -> Self {
        let mut out = self.clone();
        match &mut out.payload {
            Payload::Fdr(bits) | Payload::Efdr(bits) | Payload::Arl(bits) => bits.truncate(keep),
            Payload::Golomb { bits, .. } => bits.truncate(keep),
            Payload::Vihc(enc) => enc.bits.truncate(keep),
            Payload::SelHuff(enc) => enc.bits.truncate(keep),
            Payload::Dict(enc) => enc.bits.truncate(keep),
            Payload::NineC(enc) => {
                let mut stream = enc.stream().clone();
                stream.truncate(keep);
                out.payload = Payload::NineC(enc.clone().with_stream(stream));
            }
        }
        out
    }

    /// Copy with payload symbol `i % len` inverted (bit flip for the
    /// binary codes; for 9C the trit cycles `0→1→X→0`, hitting both the
    /// wrong-care and lost-care corruption classes). No-op on an empty
    /// payload.
    #[must_use]
    pub fn with_flipped_symbol(&self, i: usize) -> Self {
        fn flip_bits(bits: &mut BitVec, i: usize) {
            if !bits.is_empty() {
                let at = i % bits.len();
                let cur = bits.get(at).unwrap_or(false);
                bits.set(at, !cur);
            }
        }
        let mut out = self.clone();
        match &mut out.payload {
            Payload::Fdr(bits) | Payload::Efdr(bits) | Payload::Arl(bits) => flip_bits(bits, i),
            Payload::Golomb { bits, .. } => flip_bits(bits, i),
            Payload::Vihc(enc) => flip_bits(&mut enc.bits, i),
            Payload::SelHuff(enc) => flip_bits(&mut enc.bits, i),
            Payload::Dict(enc) => flip_bits(&mut enc.bits, i),
            Payload::NineC(enc) => {
                let mut stream = enc.stream().clone();
                if !stream.is_empty() {
                    let at = i % stream.len();
                    let next = match stream.get(at) {
                        Some(Trit::Zero) => Trit::One,
                        Some(Trit::One) => Trit::X,
                        _ => Trit::Zero,
                    };
                    stream.set(at, next);
                }
                out.payload = Payload::NineC(enc.clone().with_stream(stream));
            }
        }
        out
    }

    /// Reconstructs the test data (see
    /// [`TestDataCodec::decode_stream`] for the fill semantics).
    ///
    /// # Errors
    ///
    /// Returns [`CodecDecodeError`] wrapping the underlying typed error on
    /// truncated or corrupt streams.
    pub fn decode(&self) -> Result<TritVec, CodecDecodeError> {
        let n = self.source_len;
        let out = match &self.payload {
            Payload::Fdr(bits) => TritVec::from(&Fdr::new().decompress(bits, n)?),
            Payload::Golomb { b, bits } => {
                let golomb = Golomb::new(*b).expect("group size validated at encode time");
                TritVec::from(&golomb.decompress(bits, n)?)
            }
            Payload::Efdr(bits) => TritVec::from(&Efdr::new().decompress(bits, n)?),
            Payload::Arl(bits) => TritVec::from(&AlternatingRunLength::new().decompress(bits, n)?),
            Payload::Vihc(enc) => TritVec::from(&enc.decode()?),
            Payload::SelHuff(enc) => TritVec::from(&enc.decode()?),
            Payload::Dict(enc) => TritVec::from(&enc.decode()?),
            Payload::NineC(enc) => ninec::DecodeSession::new().decode(enc)?,
        };
        // The model-carrying payloads (VIHC, SelHuff, Dict, 9C) decode to
        // the length *their own* decoder model claims; a mutated stream
        // header that disagrees is corruption, not a shorter answer.
        if out.len() != n {
            return Err(CodecDecodeError::LengthMismatch {
                claimed: n,
                decoded: out.len(),
            });
        }
        Ok(out)
    }
}

/// Error decoding a [`CodecStream`], wrapping the codec's typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecDecodeError {
    /// A run-length code (FDR, Golomb, EFDR, ARL) failed.
    RunLength(RunLengthDecodeError),
    /// VIHC failed.
    Vihc(VihcDecodeError),
    /// Selective Huffman failed.
    SelHuff(SelectiveHuffmanDecodeError),
    /// The dictionary code failed.
    Dict(DictionaryDecodeError),
    /// 9C failed.
    NineC(ninec::DecodeError),
    /// The payload decoded, but to a different length than the stream's
    /// `source_len` header claims — a header/payload mismatch.
    LengthMismatch {
        /// The `source_len` the stream header claims.
        claimed: usize,
        /// What the payload actually decoded to.
        decoded: usize,
    },
}

impl fmt::Display for CodecDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecDecodeError::RunLength(e) => write!(f, "run-length decode: {e}"),
            CodecDecodeError::Vihc(e) => write!(f, "vihc decode: {e}"),
            CodecDecodeError::SelHuff(e) => write!(f, "selective-huffman decode: {e}"),
            CodecDecodeError::Dict(e) => write!(f, "dictionary decode: {e}"),
            CodecDecodeError::NineC(e) => write!(f, "9c decode: {e}"),
            CodecDecodeError::LengthMismatch { claimed, decoded } => write!(
                f,
                "stream header claims {claimed} source trits but the payload decodes to {decoded}"
            ),
        }
    }
}

impl std::error::Error for CodecDecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecDecodeError::RunLength(e) => Some(e),
            CodecDecodeError::Vihc(e) => Some(e),
            CodecDecodeError::SelHuff(e) => Some(e),
            CodecDecodeError::Dict(e) => Some(e),
            CodecDecodeError::NineC(e) => Some(e),
            CodecDecodeError::LengthMismatch { .. } => None,
        }
    }
}

impl From<RunLengthDecodeError> for CodecDecodeError {
    fn from(e: RunLengthDecodeError) -> Self {
        CodecDecodeError::RunLength(e)
    }
}

impl From<VihcDecodeError> for CodecDecodeError {
    fn from(e: VihcDecodeError) -> Self {
        CodecDecodeError::Vihc(e)
    }
}

impl From<SelectiveHuffmanDecodeError> for CodecDecodeError {
    fn from(e: SelectiveHuffmanDecodeError) -> Self {
        CodecDecodeError::SelHuff(e)
    }
}

impl From<DictionaryDecodeError> for CodecDecodeError {
    fn from(e: DictionaryDecodeError) -> Self {
        CodecDecodeError::Dict(e)
    }
}

impl From<ninec::DecodeError> for CodecDecodeError {
    fn from(e: ninec::DecodeError) -> Self {
        CodecDecodeError::NineC(e)
    }
}

/// A parameter sweep behind the codec interface: encodes with every
/// candidate and keeps the smallest stream.
///
/// Table IV's VIHC, Golomb and dictionary columns are "best over a
/// parameter sweep"; `BestOf` makes those columns ordinary registry
/// entries.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::{BestOf, TestDataCodec};
/// use ninec_baselines::golomb::Golomb;
/// use ninec_testdata::trit::TritVec;
///
/// let sweep = BestOf::new(
///     "Golomb",
///     [2u64, 4, 8].map(|b| Golomb::new(b).unwrap()).to_vec(),
/// );
/// let sparse: TritVec = format!("{}1", "0".repeat(30)).parse()?;
/// assert!(sweep.compressed_size(&sparse) <= Golomb::new(2)?.compressed_size(&sparse));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BestOf<C> {
    name: String,
    candidates: Vec<C>,
}

impl<C: TestDataCodec> BestOf<C> {
    /// Wraps `candidates` under display name `name`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    pub fn new(name: impl Into<String>, candidates: Vec<C>) -> Self {
        assert!(
            !candidates.is_empty(),
            "BestOf needs at least one candidate"
        );
        Self {
            name: name.into(),
            candidates,
        }
    }
}

impl<C: TestDataCodec> TestDataCodec for BestOf<C> {
    fn name(&self) -> &str {
        &self.name
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        self.candidates
            .iter()
            .map(|c| c.encode_stream(stream))
            .min_by_key(CodecStream::compressed_bits)
            .expect("BestOf is non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_testdata::trit::Trit;

    struct Fake;
    impl TestDataCodec for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn encode_stream(&self, stream: &TritVec) -> CodecStream {
            // Half-size dummy payload, enough to exercise the defaults.
            let mut bits = BitVec::new();
            for _ in 0..stream.len() / 2 {
                bits.push(false);
            }
            CodecStream::new(stream.len(), Payload::Fdr(bits))
        }
    }

    #[test]
    fn default_ratio() {
        let s: TritVec = "0".repeat(100).parse().unwrap();
        assert!((Fake.compression_ratio(&s) - 50.0).abs() < 1e-12);
        assert_eq!(Fake.compression_ratio(&TritVec::new()), 0.0);
    }

    #[test]
    fn default_compressed_size_measures_the_stream() {
        let s: TritVec = "0".repeat(10).parse().unwrap();
        assert_eq!(Fake.compressed_size(&s), 5);
    }

    /// Every care bit of `src` must survive the codec's roundtrip.
    fn assert_roundtrip_covers(codec: &dyn TestDataCodec, src: &TritVec) {
        let enc = codec.encode_stream(src);
        assert_eq!(enc.source_len(), src.len(), "{}", codec.name());
        let back = codec.decode_stream(&enc).unwrap();
        assert_eq!(back.len(), src.len(), "{}", codec.name());
        for i in 0..src.len() {
            if let Some(v) = src.get(i).unwrap().value() {
                assert_eq!(
                    back.get(i).and_then(Trit::value),
                    Some(v),
                    "{} care bit {i}",
                    codec.name()
                );
            }
        }
    }

    #[test]
    fn every_codec_roundtrips_through_the_stream_interface() {
        let src: TritVec = "0X0X0X1XX01110000000001XXXX10X0X".parse().unwrap();
        let codecs: Vec<Box<dyn TestDataCodec>> = crate::registry::table4_registry(8).unwrap();
        assert_eq!(codecs.len(), 8);
        for codec in &codecs {
            assert_roundtrip_covers(codec.as_ref(), &src);
        }
    }

    #[test]
    fn every_codec_emits_zero_bits_on_empty_input() {
        let empty = TritVec::new();
        for codec in crate::registry::table4_registry(8).unwrap() {
            let enc = codec.encode_stream(&empty);
            assert_eq!(enc.compressed_bits(), 0, "{}", codec.name());
            assert_eq!(codec.compression_ratio(&empty), 0.0, "{}", codec.name());
            assert!(
                codec.decode_stream(&enc).unwrap().is_empty(),
                "{}",
                codec.name()
            );
        }
    }

    #[test]
    fn segmented_path_is_thread_count_independent_for_every_codec() {
        let src: TritVec = "0X0X0X1XX01110000000001XXXX10X0X"
            .repeat(8)
            .parse()
            .unwrap();
        for codec in crate::registry::table4_registry(8).unwrap() {
            let serial = codec.encode_segmented(&src, 1, 64);
            assert_eq!(serial.source_len(), src.len(), "{}", codec.name());
            for threads in [2usize, 8] {
                let par = codec.encode_segmented(&src, threads, 64);
                assert_eq!(par, serial, "{} threads={threads}", codec.name());
            }
            let back = codec.decode_segmented(&serial, 4).unwrap();
            assert_eq!(back.len(), src.len(), "{}", codec.name());
            for i in 0..src.len() {
                if let Some(v) = src.get(i).unwrap().value() {
                    assert_eq!(
                        back.get(i).and_then(Trit::value),
                        Some(v),
                        "{} care bit {i}",
                        codec.name()
                    );
                }
            }
        }
    }

    #[test]
    fn segmented_empty_stream_has_no_segments() {
        let empty = TritVec::new();
        let enc = Fake.encode_segmented(&empty, 4, 64);
        assert!(enc.segments().is_empty());
        assert_eq!(enc.compressed_bits(), 0);
        assert!(Fake.decode_segmented(&enc, 4).unwrap().is_empty());
    }

    #[test]
    fn best_of_picks_the_smallest_stream() {
        use crate::golomb::Golomb;
        let sweep = BestOf::new(
            "Golomb",
            vec![Golomb::new(2).unwrap(), Golomb::new(16).unwrap()],
        );
        let sparse: TritVec = format!("{}1", "0".repeat(63)).parse().unwrap();
        let best = [2u64, 16]
            .into_iter()
            .map(|b| Golomb::new(b).unwrap().compressed_size(&sparse))
            .min()
            .unwrap();
        assert_eq!(sweep.compressed_size(&sparse), best);
        assert_roundtrip_covers(&sweep, &sparse);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn best_of_rejects_empty_sweeps() {
        let _ = BestOf::new("empty", Vec::<Fake>::new());
    }
}

//! Common interface for the baseline test-data compression codes.

use ninec_testdata::trit::TritVec;

/// A baseline test-data compression code, as compared against 9C in the
/// paper's Table IV.
///
/// The uniform entry point is [`compressed_size`](TestDataCodec::compressed_size)
/// (enough to reproduce the compression-ratio comparisons); each concrete
/// codec additionally exposes its own typed encode/decode API, which the
/// test suites use for roundtrip verification.
pub trait TestDataCodec {
    /// Short display name (e.g. `"FDR"`).
    fn name(&self) -> &str;

    /// Size in bits of the compressed form of `stream` (a test-cube stream;
    /// the codec applies its own preferred don't-care fill).
    fn compressed_size(&self, stream: &TritVec) -> usize;

    /// Compression ratio in percent against `|T_D| = stream.len()`.
    fn compression_ratio(&self, stream: &TritVec) -> f64 {
        if stream.is_empty() {
            return 0.0;
        }
        let td = stream.len() as f64;
        (td - self.compressed_size(stream) as f64) / td * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake;
    impl TestDataCodec for Fake {
        fn name(&self) -> &str {
            "fake"
        }
        fn compressed_size(&self, stream: &TritVec) -> usize {
            stream.len() / 2
        }
    }

    #[test]
    fn default_ratio() {
        let s: TritVec = "0".repeat(100).parse().unwrap();
        assert!((Fake.compression_ratio(&s) - 50.0).abs() < 1e-12);
        assert_eq!(Fake.compression_ratio(&TritVec::new()), 0.0);
    }
}

//! VIHC (variable-length input Huffman coding) — Gonciari, Al-Hashimi,
//! Nicolici, DATE 2002 (reference \[13\] of the 9C paper).
//!
//! The 0-filled stream is parsed into variable-length input symbols: 0-runs
//! of length `l < mh` terminated by a `1`, plus the special symbol "`mh`
//! zeros, no terminator" for longer runs. The `mh + 1` symbols are then
//! Huffman-coded. `mh` is the *group size*; the paper sweeps it like 9C's
//! `K`.

use crate::codec::{CodecStream, Payload, TestDataCodec};
use crate::huffman::HuffmanCode;
use ninec_testdata::bits::{BitReader, BitVec};
use ninec_testdata::fill::{fill_trits, FillStrategy};
use ninec_testdata::trit::TritVec;
use std::fmt;

/// The VIHC codec with maximum run (group) size `mh`.
///
/// # Examples
///
/// ```
/// use ninec_baselines::codec::TestDataCodec;
/// use ninec_baselines::vihc::Vihc;
/// use ninec_testdata::trit::TritVec;
///
/// let vihc = Vihc::new(8)?;
/// let sparse: TritVec = format!("{}1", "0".repeat(31)).parse()?;
/// assert!(vihc.compression_ratio(&sparse) > 50.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vihc {
    mh: usize,
}

impl Vihc {
    /// Creates a VIHC codec with group size `mh`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGroupSizeMh`] if `mh` is 0 or exceeds 64.
    pub fn new(mh: usize) -> Result<Self, InvalidGroupSizeMh> {
        if mh == 0 || mh > 64 {
            return Err(InvalidGroupSizeMh { mh });
        }
        Ok(Self { mh })
    }

    /// The group size `mh`.
    pub fn group_size(&self) -> usize {
        self.mh
    }

    /// Parses the 0-filled stream into VIHC symbols.
    ///
    /// Symbol `l` for `l < mh` means "`l` zeros then a `1`"; symbol `mh`
    /// means "`mh` zeros" (run continues). A trailing partial run of `t`
    /// zeros (no terminator) is encoded as symbol `t` and trimmed on
    /// decode via the output length.
    fn symbols(&self, filled: &BitVec) -> Vec<usize> {
        let mut syms = Vec::new();
        let mut run = 0usize;
        for bit in filled.iter() {
            if bit {
                syms.push(run);
                run = 0;
            } else {
                run += 1;
                if run == self.mh {
                    syms.push(self.mh);
                    run = 0;
                }
            }
        }
        if run > 0 {
            syms.push(run); // virtual terminator, trimmed on decode
        }
        syms
    }

    /// Compresses a cube stream, returning the self-describing result.
    pub fn encode(&self, stream: &TritVec) -> VihcEncoded {
        let filled = fill_trits(stream, FillStrategy::Zero)
            .to_bitvec()
            .expect("zero fill fully specifies the stream");
        let syms = self.symbols(&filled);
        let mut freqs = vec![0u64; self.mh + 1];
        for &s in &syms {
            freqs[s] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs).expect("alphabet is non-empty");
        let mut bits = BitVec::new();
        for &s in &syms {
            code.encode_symbol(s, &mut bits);
        }
        VihcEncoded {
            mh: self.mh,
            bits,
            code,
            source_len: stream.len(),
        }
    }
}

impl TestDataCodec for Vihc {
    fn name(&self) -> &str {
        "VIHC"
    }

    fn encode_stream(&self, stream: &TritVec) -> CodecStream {
        CodecStream::new(stream.len(), Payload::Vihc(self.encode(stream)))
    }
}

/// Result of VIHC compression, carrying the decoder model (the Huffman
/// code lives in the on-chip decoder).
#[derive(Debug, Clone, PartialEq)]
pub struct VihcEncoded {
    mh: usize,
    /// The ATE bit stream.
    pub bits: BitVec,
    code: HuffmanCode,
    source_len: usize,
}

impl VihcEncoded {
    /// Codeword length per run-length symbol (`0 ..= mh`) — the contents
    /// of the decode table an on-chip VIHC decoder stores, and therefore
    /// the per-circuit configuration the paper's §IV flexibility argument
    /// is about.
    pub fn code_lengths(&self) -> Vec<usize> {
        (0..=self.mh).map(|s| self.code.codeword(s).len()).collect()
    }

    /// Decompresses back to the 0-filled source.
    ///
    /// # Errors
    ///
    /// Returns [`VihcDecodeError`] on truncation/corruption.
    pub fn decode(&self) -> Result<BitVec, VihcDecodeError> {
        let mut reader = BitReader::new(&self.bits);
        let mut out = BitVec::with_capacity(self.source_len + self.mh);
        while out.len() < self.source_len {
            let sym = self
                .code
                .decode_symbol(&mut reader)
                .ok_or(VihcDecodeError {
                    produced: out.len(),
                })?;
            if sym == self.mh {
                for _ in 0..self.mh {
                    out.push(false);
                }
            } else {
                for _ in 0..sym {
                    out.push(false);
                }
                out.push(true);
            }
        }
        Ok(out.iter().take(self.source_len).collect())
    }
}

/// Error decoding a VIHC stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VihcDecodeError {
    /// Bits produced before the failure.
    pub produced: usize,
}

impl fmt::Display for VihcDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vihc stream truncated after {} bits", self.produced)
    }
}

impl std::error::Error for VihcDecodeError {}

/// Error: invalid VIHC group size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidGroupSizeMh {
    /// The rejected group size.
    pub mh: usize,
}

impl fmt::Display for InvalidGroupSizeMh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "group size must be in 1..=64, got {}", self.mh)
    }
}

impl std::error::Error for InvalidGroupSizeMh {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_validation() {
        assert!(Vihc::new(0).is_err());
        assert!(Vihc::new(65).is_err());
        assert!(Vihc::new(8).is_ok());
    }

    #[test]
    fn symbol_parsing() {
        let v = Vihc::new(4).unwrap();
        let bits = BitVec::from_str_radix2("0001000001").unwrap();
        // "0001" -> sym 3; "00000" crosses mh: "0000" -> sym 4, then "01"
        // -> sym 1.
        assert_eq!(v.symbols(&bits), vec![3, 4, 1]);
    }

    #[test]
    fn trailing_zeros_get_virtual_terminator() {
        let v = Vihc::new(4).unwrap();
        let bits = BitVec::from_str_radix2("100").unwrap();
        assert_eq!(v.symbols(&bits), vec![0, 2]);
    }

    #[test]
    fn roundtrips() {
        for s in [
            "0000001",
            "1111",
            "000000",
            "0X0X0X1XX0",
            "1",
            "0",
            "0010010000000000001",
        ] {
            let cubes: TritVec = s.parse().unwrap();
            let filled = fill_trits(&cubes, FillStrategy::Zero).to_bitvec().unwrap();
            let enc = Vihc::new(4).unwrap().encode(&cubes);
            assert_eq!(enc.decode().unwrap(), filled, "source {s}");
        }
    }

    #[test]
    fn skewed_runs_compress_well() {
        // Mostly maximal runs: one dominant symbol -> ~1 bit each.
        let s: TritVec = format!("{}1", "0".repeat(255)).parse().unwrap();
        let v = Vihc::new(16).unwrap();
        assert!(v.compression_ratio(&s) > 80.0);
    }

    #[test]
    fn truncation_detected() {
        let enc = Vihc::new(4).unwrap().encode(&"0001".parse().unwrap());
        let broken = VihcEncoded {
            bits: BitVec::new(),
            ..enc
        };
        assert!(broken.decode().is_err());
    }
}

//! The Table IV codec registry: every comparison column as one
//! `Box<dyn TestDataCodec>`.
//!
//! The paper's Table IV compares 9C (at its per-circuit best `K`) against
//! FDR, VIHC, MTC and selective Huffman; our harness adds Golomb,
//! alternating run-length and a fixed-index dictionary, and substitutes
//! EFDR for the unspecified MTC column (see `DESIGN.md` §4). Parameterized
//! codes sweep the same ranges the literature reports, wrapped in
//! [`BestOf`] so the sweep is invisible to the dispatcher.

use crate::arl::AlternatingRunLength;
use crate::codec::{BestOf, TestDataCodec};
use crate::dict::FixedIndexDictionary;
use crate::efdr::Efdr;
use crate::fdr::Fdr;
use crate::golomb::Golomb;
use crate::nine_coded::NineCoded;
use crate::selhuff::SelectiveHuffman;
use crate::vihc::Vihc;
use ninec::encode::InvalidBlockSize;

/// VIHC group sizes swept for the Table IV column.
pub const VIHC_MH_SWEEP: [usize; 4] = [4, 8, 16, 32];

/// Golomb group sizes swept for the Table IV column.
pub const GOLOMB_B_SWEEP: [u64; 5] = [2, 4, 8, 16, 32];

/// Dictionary block sizes swept for the Table IV column.
pub const DICT_B_SWEEP: [usize; 2] = [16, 32];

/// Dictionary entry budget for the Table IV column.
pub const DICT_ENTRIES: usize = 256;

/// Selective-Huffman `(block_bits, coded_patterns)` for the Table IV
/// column.
pub const SELHUFF_CONFIG: (usize, usize) = (8, 16);

/// Builds the Table IV column set, with 9C configured at block size
/// `ninec_k` (callers pass the per-circuit best `K` from the Table II
/// sweep).
///
/// Columns, in table order: `9C`, `FDR`, `VIHC`, `EFDR`, `SelHuff`,
/// `Golomb`, `ARL`, `Dict`. Dispatch by [`TestDataCodec::name`].
///
/// # Errors
///
/// Returns [`InvalidBlockSize`] if `ninec_k` is odd or below 4.
///
/// # Examples
///
/// ```
/// use ninec_baselines::registry::table4_registry;
/// use ninec_testdata::trit::TritVec;
///
/// let stream: TritVec = "0000XXXX".repeat(8).parse()?;
/// for codec in table4_registry(8)? {
///     println!("{}: {:.1}%", codec.name(), codec.compression_ratio(&stream));
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn table4_registry(ninec_k: usize) -> Result<Vec<Box<dyn TestDataCodec>>, InvalidBlockSize> {
    Ok(vec![
        Box::new(NineCoded::new(ninec_k)?),
        Box::new(Fdr::new()),
        Box::new(BestOf::new(
            "VIHC",
            VIHC_MH_SWEEP
                .iter()
                .map(|&mh| Vihc::new(mh).expect("sweep mh is valid"))
                .collect(),
        )),
        Box::new(Efdr::new()),
        Box::new(
            SelectiveHuffman::new(SELHUFF_CONFIG.0, SELHUFF_CONFIG.1)
                .expect("selective-huffman config is valid"),
        ),
        Box::new(BestOf::new(
            "Golomb",
            GOLOMB_B_SWEEP
                .iter()
                .map(|&b| Golomb::new(b).expect("sweep b is valid"))
                .collect(),
        )),
        Box::new(AlternatingRunLength::new()),
        Box::new(BestOf::new(
            "Dict",
            DICT_B_SWEEP
                .iter()
                .map(|&b| FixedIndexDictionary::new(b, DICT_ENTRIES).expect("dict config is valid"))
                .collect(),
        )),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_table4_column() {
        let names: Vec<String> = table4_registry(8)
            .unwrap()
            .iter()
            .map(|c| c.name().to_owned())
            .collect();
        assert_eq!(
            names,
            ["9C", "FDR", "VIHC", "EFDR", "SelHuff", "Golomb", "ARL", "Dict"]
        );
    }

    #[test]
    fn registry_validates_k() {
        assert!(table4_registry(7).is_err());
    }
}

//! Test-data substrate for the `ninec` suite.
//!
//! Scan test sets are streams over the three-valued alphabet {`0`, `1`,
//! `X`}. This crate provides the shared data model every other crate in the
//! workspace builds on:
//!
//! - [`bits`] — packed [`BitVec`] plus bit-granular
//!   reader/writer, the substrate of every compression code;
//! - [`trit`] — the three-valued symbol [`Trit`] and packed
//!   [`TritVec`];
//! - [`slice`] — zero-copy [`TritSlice`] subrange views and the
//!   allocation-free [`slice::Chunks`] cursor streaming consumers iterate;
//! - [`words`] — word-parallel kernels over packed LSB-first bit ranges
//!   (popcount classification, cross-boundary word extraction);
//! - [`cube`] — [`TestSet`], the precomputed test set `T_D`;
//! - [`gen`] — profile-calibrated synthetic test-set generators standing in
//!   for the paper's Mintest/IBM data (see `DESIGN.md` §4);
//! - [`fill`] — don't-care fill strategies (random, constant,
//!   minimum-transition);
//! - [`power`] — weighted-transitions scan power metric;
//! - [`stats`] — descriptive statistics;
//! - [`io`] — cube-file text serialization.
//!
//! # Example
//!
//! ```
//! use ninec_testdata::gen::SyntheticProfile;
//! use ninec_testdata::fill::{fill_test_set, FillStrategy};
//! use ninec_testdata::stats::TestSetStats;
//!
//! // Generate an s5378-shaped test set and fill its don't-cares randomly.
//! let profile = SyntheticProfile::new("demo", 32, 128, 0.75);
//! let cubes = profile.generate(1);
//! let filled = fill_test_set(&cubes, FillStrategy::Random { seed: 7 });
//! assert!(filled.covers(&cubes));
//! println!("{}", TestSetStats::compute(&cubes));
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod cube;
pub mod fill;
pub mod gen;
pub mod io;
pub mod power;
#[cfg(feature = "serde")]
mod serde_impls;
pub mod slice;
pub mod stats;
pub mod trit;
pub mod words;

pub use bits::BitVec;
pub use cube::TestSet;
pub use slice::TritSlice;
pub use trit::{Trit, TritVec};

//! Don't-care fill strategies.
//!
//! A key selling point of the 9C technique is that many don't-cares survive
//! compression ("leftover X") and can be filled *after* decompression:
//! randomly to catch non-modeled faults, or transition-minimizing to cut
//! scan-in power. This module implements the fill policies discussed in the
//! paper's Sections I and IV.

use crate::cube::TestSet;
use crate::trit::{Trit, TritVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Policy for replacing `X` symbols with care bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillStrategy {
    /// Every `X` becomes `0`.
    Zero,
    /// Every `X` becomes `1`.
    One,
    /// Every `X` becomes an independent fair coin flip, seeded for
    /// reproducibility (the paper's "filled randomly to detect non-modeled
    /// faults").
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Minimum-transition fill: each `X` repeats the nearest specified bit
    /// to its left (the first run repeats the first care bit; an all-`X`
    /// vector becomes all zeros). Minimizes scan-chain transitions and
    /// therefore shift power.
    MinTransition,
}

/// Fills every `X` in `trits` according to `strategy`, returning a fully
/// specified vector. Care bits are never altered.
///
/// # Examples
///
/// ```
/// use ninec_testdata::fill::{fill_trits, FillStrategy};
/// use ninec_testdata::trit::TritVec;
///
/// let cube: TritVec = "X1XX0X".parse()?;
/// assert_eq!(fill_trits(&cube, FillStrategy::Zero).to_string(), "010000");
/// assert_eq!(fill_trits(&cube, FillStrategy::MinTransition).to_string(), "111100");
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
pub fn fill_trits(trits: &TritVec, strategy: FillStrategy) -> TritVec {
    match strategy {
        FillStrategy::Zero => fill_const(trits, Trit::Zero),
        FillStrategy::One => fill_const(trits, Trit::One),
        FillStrategy::Random { seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            trits
                .iter()
                .map(|t| {
                    if t.is_x() {
                        Trit::from(rng.gen_bool(0.5))
                    } else {
                        t
                    }
                })
                .collect()
        }
        FillStrategy::MinTransition => fill_min_transition(trits),
    }
}

fn fill_const(trits: &TritVec, fill: Trit) -> TritVec {
    trits
        .iter()
        .map(|t| if t.is_x() { fill } else { t })
        .collect()
}

fn fill_min_transition(trits: &TritVec) -> TritVec {
    // First pass: find the first care bit so a leading X run can repeat it.
    let first_care = trits.iter().find(|t| t.is_care()).unwrap_or(Trit::Zero);
    let mut last = first_care;
    trits
        .iter()
        .map(|t| {
            if t.is_care() {
                last = t;
                t
            } else {
                last
            }
        })
        .collect()
}

/// Fills every cube of a test set independently (MT-fill state does not leak
/// across pattern boundaries — each scan load starts fresh).
pub fn fill_test_set(set: &TestSet, strategy: FillStrategy) -> TestSet {
    let mut out = TestSet::new(set.pattern_len());
    for (i, cube) in set.patterns().enumerate() {
        // Derive a distinct sub-seed per pattern so random fill is not
        // identical across cubes yet stays deterministic overall.
        let strategy = match strategy {
            FillStrategy::Random { seed } => FillStrategy::Random {
                seed: seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15),
            },
            other => other,
        };
        out.push_pattern(&fill_trits(&cube, strategy))
            .expect("fill preserves length");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(s: &str) -> TritVec {
        s.parse().unwrap()
    }

    #[test]
    fn zero_one_fill() {
        let c = cube("X0X1X");
        assert_eq!(fill_trits(&c, FillStrategy::Zero).to_string(), "00010");
        assert_eq!(fill_trits(&c, FillStrategy::One).to_string(), "10111");
    }

    #[test]
    fn fills_cover_the_original() {
        let c = cube("X0XX1XX0");
        for strategy in [
            FillStrategy::Zero,
            FillStrategy::One,
            FillStrategy::Random { seed: 3 },
            FillStrategy::MinTransition,
        ] {
            let filled = fill_trits(&c, strategy);
            assert_eq!(filled.count_x(), 0, "{strategy:?} left an X");
            assert!(filled.covers(&c), "{strategy:?} altered a care bit");
        }
    }

    #[test]
    fn random_fill_is_deterministic() {
        let c = cube("XXXXXXXXXXXXXXXX");
        let a = fill_trits(&c, FillStrategy::Random { seed: 9 });
        let b = fill_trits(&c, FillStrategy::Random { seed: 9 });
        let d = fill_trits(&c, FillStrategy::Random { seed: 10 });
        assert_eq!(a, b);
        assert_ne!(a, d);
    }

    #[test]
    fn min_transition_repeats_left_neighbor() {
        assert_eq!(
            fill_trits(&cube("0XX1X0XX"), FillStrategy::MinTransition).to_string(),
            "00011000"
        );
    }

    #[test]
    fn min_transition_leading_run_uses_first_care_bit() {
        assert_eq!(
            fill_trits(&cube("XXX1X"), FillStrategy::MinTransition).to_string(),
            "11111"
        );
    }

    #[test]
    fn min_transition_all_x_is_zeros() {
        assert_eq!(
            fill_trits(&cube("XXXX"), FillStrategy::MinTransition).to_string(),
            "0000"
        );
    }

    #[test]
    fn set_fill_random_differs_across_patterns() {
        let ts = TestSet::from_patterns(8, ["XXXXXXXX", "XXXXXXXX"]).unwrap();
        let filled = fill_test_set(&ts, FillStrategy::Random { seed: 1 });
        assert_ne!(filled.pattern(0), filled.pattern(1));
        assert!(filled.covers(&ts));
    }

    #[test]
    fn set_fill_preserves_dimensions() {
        let ts = TestSet::from_patterns(4, ["X1XX", "0XX1", "XXXX"]).unwrap();
        let filled = fill_test_set(&ts, FillStrategy::MinTransition);
        assert_eq!(filled.num_patterns(), 3);
        assert_eq!(filled.pattern_len(), 4);
        assert_eq!(filled.x_density(), 0.0);
    }
}

//! Text serialization of test sets.
//!
//! The format is the de-facto academic "cube file": optional `#` comment
//! lines, then one pattern per line over `0`, `1`, `X`/`-`. All lines must
//! have equal length. This is close enough to Mintest-style dumps that real
//! test sets can be dropped in when available.

use crate::cube::TestSet;
use crate::trit::TritVec;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Parses a test set from cube-file text.
///
/// # Errors
///
/// Returns [`ReadTestSetError`] if no patterns are present, a line fails to
/// parse, or line lengths disagree.
///
/// # Examples
///
/// ```
/// use ninec_testdata::io::parse_test_set;
///
/// let text = "# two cubes\n01XX\nX-10\n";
/// let ts = parse_test_set(text)?;
/// assert_eq!(ts.num_patterns(), 2);
/// assert_eq!(ts.pattern(1).to_string(), "XX10");
/// # Ok::<(), ninec_testdata::io::ReadTestSetError>(())
/// ```
pub fn parse_test_set(text: &str) -> Result<TestSet, ReadTestSetError> {
    let mut set: Option<TestSet> = None;
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cube: TritVec = line.parse().map_err(|source| ReadTestSetError::Parse {
            line: line_no + 1,
            source,
        })?;
        let set = set.get_or_insert_with(|| TestSet::new(cube.len().max(1)));
        set.push_pattern(&cube)
            .map_err(|e| ReadTestSetError::Length {
                line: line_no + 1,
                expected: e.expected,
                found: e.found,
            })?;
    }
    set.ok_or(ReadTestSetError::Empty)
}

/// Renders a test set as cube-file text (one pattern per line).
pub fn format_test_set(set: &TestSet) -> String {
    let mut out = String::with_capacity(set.total_bits() + set.num_patterns());
    out.push_str(&format!(
        "# {} patterns x {} cells\n",
        set.num_patterns(),
        set.pattern_len()
    ));
    for p in set.patterns() {
        out.push_str(&p.to_string());
        out.push('\n');
    }
    out
}

/// Reads a cube file from disk.
///
/// # Errors
///
/// I/O failures and format errors are both reported via
/// [`ReadTestSetError`].
pub fn read_test_set_file<P: AsRef<Path>>(path: P) -> Result<TestSet, ReadTestSetError> {
    let text = fs::read_to_string(path).map_err(ReadTestSetError::Io)?;
    parse_test_set(&text)
}

/// Writes a cube file to disk.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_test_set_file<P: AsRef<Path>>(path: P, set: &TestSet) -> io::Result<()> {
    fs::write(path, format_test_set(set))
}

/// Error returned when reading a cube file fails.
#[derive(Debug)]
pub enum ReadTestSetError {
    /// The file contained no patterns.
    Empty,
    /// A line contained an invalid character.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Underlying parse failure.
        source: crate::trit::ParseTritError,
    },
    /// A line's length disagreed with the first pattern's.
    Length {
        /// 1-based line number.
        line: usize,
        /// Expected pattern length.
        expected: usize,
        /// Actual line length.
        found: usize,
    },
    /// The file could not be read.
    Io(io::Error),
}

impl fmt::Display for ReadTestSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTestSetError::Empty => write!(f, "cube file contains no patterns"),
            ReadTestSetError::Parse { line, source } => write!(f, "line {line}: {source}"),
            ReadTestSetError::Length {
                line,
                expected,
                found,
            } => {
                write!(f, "line {line}: expected length {expected}, found {found}")
            }
            ReadTestSetError::Io(e) => write!(f, "cube file i/o error: {e}"),
        }
    }
}

impl std::error::Error for ReadTestSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTestSetError::Parse { source, .. } => Some(source),
            ReadTestSetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_blanks() {
        let ts = parse_test_set("# header\n\n01X\n# mid\n1-0\n").unwrap();
        assert_eq!(ts.num_patterns(), 2);
        assert_eq!(ts.pattern_len(), 3);
    }

    #[test]
    fn format_parse_roundtrip() {
        let ts = TestSet::from_patterns(5, ["01XX1", "XXXXX", "10101"]).unwrap();
        let text = format_test_set(&ts);
        let back = parse_test_set(&text).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn empty_is_an_error() {
        assert!(matches!(
            parse_test_set("# nothing\n"),
            Err(ReadTestSetError::Empty)
        ));
    }

    #[test]
    fn length_mismatch_reports_line() {
        let err = parse_test_set("01X\n0101\n").unwrap_err();
        match err {
            ReadTestSetError::Length {
                line,
                expected,
                found,
            } => {
                assert_eq!((line, expected, found), (2, 3, 4));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn bad_char_reports_line() {
        let err = parse_test_set("01X\n0z1\n").unwrap_err();
        assert!(matches!(err, ReadTestSetError::Parse { line: 2, .. }));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ninec_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cubes.txt");
        let ts = TestSet::from_patterns(3, ["01X", "XX1"]).unwrap();
        write_test_set_file(&path, &ts).unwrap();
        let back = read_test_set_file(&path).unwrap();
        assert_eq!(back, ts);
        std::fs::remove_file(&path).ok();
    }
}

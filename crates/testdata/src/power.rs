//! Scan power metrics.
//!
//! The paper notes that leftover don't-cares "can also be used to reduce the
//! total scan-in power". The standard proxy for shift power is the
//! *weighted transitions metric* (WTM): a transition early in the scan-in
//! sequence ripples through more scan cells, so it is weighted by its
//! distance from the end of the chain.

use crate::bits::BitVec;
use crate::cube::TestSet;
use crate::fill::{fill_test_set, FillStrategy};
use std::fmt;

/// Weighted transitions metric of a single, fully specified scan pattern.
///
/// For a pattern `b_1 … b_L` (scanned in first-bit-first):
/// `WTM = Σ_{j=1}^{L-1} (L − j) · (b_j ⊕ b_{j+1})`.
///
/// # Examples
///
/// ```
/// use ninec_testdata::bits::BitVec;
/// use ninec_testdata::power::wtm;
///
/// // "0101" has transitions at j = 1, 2, 3 with weights 3, 2, 1.
/// let p = BitVec::from_str_radix2("0101")?;
/// assert_eq!(wtm(&p), 6);
/// // A constant pattern costs nothing.
/// assert_eq!(wtm(&BitVec::repeat(true, 16)), 0);
/// # Ok::<(), ninec_testdata::bits::ParseBitsError>(())
/// ```
pub fn wtm(pattern: &BitVec) -> u64 {
    let l = pattern.len();
    let mut total = 0u64;
    for j in 1..l {
        let a = pattern.get(j - 1).expect("in range");
        let b = pattern.get(j).expect("in range");
        if a != b {
            total += (l - j) as u64;
        }
    }
    total
}

/// Average and peak scan-in power of a fully specified test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerReport {
    /// Sum of per-pattern WTM over the whole set.
    pub total: u64,
    /// Largest single-pattern WTM.
    pub peak: u64,
    /// Number of patterns measured.
    pub patterns: usize,
}

impl PowerReport {
    /// Mean WTM per pattern.
    pub fn average(&self) -> f64 {
        if self.patterns == 0 {
            0.0
        } else {
            self.total as f64 / self.patterns as f64
        }
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WTM avg {:.0}, peak {}, over {} patterns",
            self.average(),
            self.peak,
            self.patterns
        )
    }
}

/// Measures scan power of a test set after applying `strategy` to its
/// don't-cares.
///
/// # Examples
///
/// ```
/// use ninec_testdata::cube::TestSet;
/// use ninec_testdata::fill::FillStrategy;
/// use ninec_testdata::power::scan_power;
///
/// let ts = TestSet::from_patterns(8, ["0XXXXXX1", "1XXXXXX0"])?;
/// let mt = scan_power(&ts, FillStrategy::MinTransition);
/// let rnd = scan_power(&ts, FillStrategy::Random { seed: 1 });
/// assert!(mt.total < rnd.total, "MT-fill should cut shift power");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn scan_power(set: &TestSet, strategy: FillStrategy) -> PowerReport {
    let filled = fill_test_set(set, strategy);
    let mut total = 0u64;
    let mut peak = 0u64;
    for p in filled.patterns() {
        let bits = p.to_bitvec().expect("filled set is fully specified");
        let w = wtm(&bits);
        total += w;
        peak = peak.max(w);
    }
    PowerReport {
        total,
        peak,
        patterns: filled.num_patterns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wtm_hand_computed() {
        // 1 0 0 1: transitions at j=1 (w=3) and j=3 (w=1).
        let p = BitVec::from_str_radix2("1001").unwrap();
        assert_eq!(wtm(&p), 4);
    }

    #[test]
    fn wtm_alternating_is_maximal() {
        let alt = BitVec::from_str_radix2("10101010").unwrap();
        let l = alt.len() as u64;
        assert_eq!(wtm(&alt), l * (l - 1) / 2);
    }

    #[test]
    fn wtm_edge_cases() {
        assert_eq!(wtm(&BitVec::new()), 0);
        assert_eq!(wtm(&BitVec::from_str_radix2("1").unwrap()), 0);
    }

    #[test]
    fn mt_fill_never_worse_than_zero_fill_on_sparse_sets() {
        let ts =
            TestSet::from_patterns(12, ["1XXXXXXXXXX1", "0XX1XXXX0XXX", "XXXXX1XXXXXX"]).unwrap();
        let mt = scan_power(&ts, FillStrategy::MinTransition);
        let zero = scan_power(&ts, FillStrategy::Zero);
        assert!(
            mt.total <= zero.total,
            "mt {} vs zero {}",
            mt.total,
            zero.total
        );
    }

    #[test]
    fn report_average() {
        let r = PowerReport {
            total: 30,
            peak: 20,
            patterns: 3,
        };
        assert!((r.average() - 10.0).abs() < 1e-12);
        let empty = PowerReport {
            total: 0,
            peak: 0,
            patterns: 0,
        };
        assert_eq!(empty.average(), 0.0);
    }
}

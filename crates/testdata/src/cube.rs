//! Scan test sets: fixed-width collections of test cubes.
//!
//! A *test cube* is one scan pattern over {0, 1, X}; a [`TestSet`] is the
//! ordered set of cubes a core vendor ships (the paper's `T_D`). All cubes
//! in a set share the scan length (number of scan cells).

use crate::trit::{ParseTritError, TritVec};
use std::fmt;

/// An ordered set of equal-length test cubes.
///
/// # Examples
///
/// ```
/// use ninec_testdata::cube::TestSet;
///
/// let ts = TestSet::from_patterns(4, ["01XX", "X1X0"])?;
/// assert_eq!(ts.num_patterns(), 2);
/// assert_eq!(ts.total_bits(), 8);
/// assert_eq!(ts.pattern(1).to_string(), "X1X0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct TestSet {
    pattern_len: usize,
    data: TritVec,
}

impl TestSet {
    /// Creates an empty set whose cubes will be `pattern_len` symbols wide.
    ///
    /// # Panics
    ///
    /// Panics if `pattern_len == 0`.
    pub fn new(pattern_len: usize) -> Self {
        assert!(pattern_len > 0, "pattern length must be positive");
        Self {
            pattern_len,
            data: TritVec::new(),
        }
    }

    /// Builds a set from string patterns over `0`, `1`, `X`/`-`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildTestSetError`] if a pattern has the wrong length or an
    /// invalid character.
    pub fn from_patterns<I, S>(pattern_len: usize, patterns: I) -> Result<Self, BuildTestSetError>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut ts = TestSet::new(pattern_len);
        for (index, p) in patterns.into_iter().enumerate() {
            let cube: TritVec = p
                .as_ref()
                .parse()
                .map_err(|source| BuildTestSetError::Parse { index, source })?;
            ts.push_pattern(&cube)
                .map_err(|_| BuildTestSetError::Length {
                    index,
                    expected: pattern_len,
                    found: p.as_ref().len(),
                })?;
        }
        Ok(ts)
    }

    /// Scan length (symbols per cube).
    pub fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    /// Number of cubes.
    pub fn num_patterns(&self) -> usize {
        self.data.len() / self.pattern_len
    }

    /// Total number of symbols (`num_patterns * pattern_len`) — the paper's
    /// `|T_D|`.
    pub fn total_bits(&self) -> usize {
        self.data.len()
    }

    /// Fraction of symbols that are don't-cares.
    pub fn x_density(&self) -> f64 {
        self.data.x_density()
    }

    /// Appends a cube.
    ///
    /// # Errors
    ///
    /// Returns [`PatternLengthError`] if `cube.len() != self.pattern_len()`.
    pub fn push_pattern(&mut self, cube: &TritVec) -> Result<(), PatternLengthError> {
        if cube.len() != self.pattern_len {
            return Err(PatternLengthError {
                expected: self.pattern_len,
                found: cube.len(),
            });
        }
        self.data.extend_from_tritvec(cube);
        Ok(())
    }

    /// Copies the `i`-th cube out of the set.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_patterns()`.
    pub fn pattern(&self, i: usize) -> TritVec {
        assert!(i < self.num_patterns(), "pattern index {i} out of range");
        self.data
            .slice(i * self.pattern_len, (i + 1) * self.pattern_len)
    }

    /// Iterates over the cubes.
    pub fn patterns(&self) -> Patterns<'_> {
        Patterns {
            set: self,
            index: 0,
        }
    }

    /// The whole set as one flat symbol stream, pattern after pattern —
    /// the order in which a single scan chain consumes it.
    pub fn as_stream(&self) -> &TritVec {
        &self.data
    }

    /// Consumes the set, returning the flat stream.
    pub fn into_stream(self) -> TritVec {
        self.data
    }

    /// Reassembles a set from a flat stream.
    ///
    /// # Panics
    ///
    /// Panics if `pattern_len == 0` or the stream length is not a multiple
    /// of `pattern_len`.
    pub fn from_stream(pattern_len: usize, stream: TritVec) -> Self {
        assert!(pattern_len > 0, "pattern length must be positive");
        assert_eq!(
            stream.len() % pattern_len,
            0,
            "stream length {} is not a multiple of pattern length {pattern_len}",
            stream.len()
        );
        Self {
            pattern_len,
            data: stream,
        }
    }

    /// `true` if every cube of `self` covers the corresponding cube of
    /// `other` (same counts/lengths, all care bits of `other` preserved).
    pub fn covers(&self, other: &TestSet) -> bool {
        self.pattern_len == other.pattern_len
            && self.data.len() == other.data.len()
            && self.data.covers(&other.data)
    }
}

impl fmt::Debug for TestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TestSet({} patterns x {} cells, {:.1}% X)",
            self.num_patterns(),
            self.pattern_len,
            self.x_density() * 100.0
        )
    }
}

impl fmt::Display for TestSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.patterns() {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

/// Iterator over the cubes of a [`TestSet`].
#[derive(Debug, Clone)]
pub struct Patterns<'a> {
    set: &'a TestSet,
    index: usize,
}

impl Iterator for Patterns<'_> {
    type Item = TritVec;

    fn next(&mut self) -> Option<TritVec> {
        if self.index >= self.set.num_patterns() {
            return None;
        }
        let p = self.set.pattern(self.index);
        self.index += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.set.num_patterns() - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Patterns<'_> {}

/// Error returned when a cube's length does not match its set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternLengthError {
    /// The set's pattern length.
    pub expected: usize,
    /// The offered cube's length.
    pub found: usize,
}

impl fmt::Display for PatternLengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern length mismatch: expected {}, found {}",
            self.expected, self.found
        )
    }
}

impl std::error::Error for PatternLengthError {}

/// Error returned by [`TestSet::from_patterns`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildTestSetError {
    /// A pattern failed to parse.
    Parse {
        /// Index of the offending pattern.
        index: usize,
        /// The parse failure.
        source: ParseTritError,
    },
    /// A pattern had the wrong length.
    Length {
        /// Index of the offending pattern.
        index: usize,
        /// Expected length.
        expected: usize,
        /// Actual length.
        found: usize,
    },
}

impl fmt::Display for BuildTestSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTestSetError::Parse { index, source } => {
                write!(f, "pattern {index}: {source}")
            }
            BuildTestSetError::Length {
                index,
                expected,
                found,
            } => {
                write!(
                    f,
                    "pattern {index}: expected length {expected}, found {found}"
                )
            }
        }
    }
}

impl std::error::Error for BuildTestSetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildTestSetError::Parse { source, .. } => Some(source),
            BuildTestSetError::Length { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_iterate() {
        let ts = TestSet::from_patterns(3, ["01X", "1X0", "XXX"]).unwrap();
        assert_eq!(ts.num_patterns(), 3);
        assert_eq!(ts.total_bits(), 9);
        let all: Vec<String> = ts.patterns().map(|p| p.to_string()).collect();
        assert_eq!(all, vec!["01X", "1X0", "XXX"]);
    }

    #[test]
    fn rejects_wrong_length() {
        let err = TestSet::from_patterns(3, ["01"]).unwrap_err();
        assert!(matches!(
            err,
            BuildTestSetError::Length {
                index: 0,
                expected: 3,
                found: 2
            }
        ));
    }

    #[test]
    fn rejects_bad_char() {
        let err = TestSet::from_patterns(3, ["01Z"]).unwrap_err();
        assert!(matches!(err, BuildTestSetError::Parse { index: 0, .. }));
    }

    #[test]
    fn stream_roundtrip() {
        let ts = TestSet::from_patterns(2, ["01", "X1"]).unwrap();
        let stream = ts.clone().into_stream();
        assert_eq!(stream.to_string(), "01X1");
        let back = TestSet::from_stream(2, stream);
        assert_eq!(back, ts);
    }

    #[test]
    fn covering() {
        let cubes = TestSet::from_patterns(3, ["0XX", "X1X"]).unwrap();
        let filled = TestSet::from_patterns(3, ["010", "110"]).unwrap();
        assert!(filled.covers(&cubes));
        assert!(!cubes.covers(&filled));
    }

    #[test]
    fn x_density_of_set() {
        let ts = TestSet::from_patterns(4, ["XXXX", "0101"]).unwrap();
        assert!((ts.x_density() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn from_stream_checks_multiple() {
        let stream: TritVec = "011".parse().unwrap();
        let _ = TestSet::from_stream(2, stream);
    }
}

//! Word-level kernels over packed, LSB-first bit ranges.
//!
//! [`crate::bits::BitVec`] and [`crate::trit::TritVec`] store bits packed
//! LSB-first in `u64` words. The functions here operate directly on those
//! word slices so hot paths (9C half classification, payload copies, run
//! emission) cost `O(len / 64)` word operations instead of `O(len)`
//! per-symbol dispatch. They are the substrate behind
//! [`crate::slice::TritSlice`] and the word-parallel codec kernels in the
//! `ninec` core crate.
//!
//! All ranges are half-open bit ranges `[start, start + len)` over a word
//! slice; bit `i` lives at `words[i / 64] >> (i % 64) & 1`. Callers are
//! responsible for `start + len` staying within `words.len() * 64`
//! (debug-asserted here).

/// Returns the bit at `index`.
#[inline]
#[must_use]
pub fn get_bit(words: &[u64], index: usize) -> bool {
    debug_assert!(index < words.len() * 64);
    words[index / 64] >> (index % 64) & 1 == 1
}

/// Extracts up to 64 bits starting at bit `start`, returned LSB-first in
/// the low bits of the result. Bits past the end of `words` read as 0.
///
/// # Panics
///
/// Panics if `n > 64`.
#[inline]
#[must_use]
pub fn extract_word(words: &[u64], start: usize, n: usize) -> u64 {
    assert!(n <= 64, "cannot extract more than 64 bits at once");
    if n == 0 {
        return 0;
    }
    let w = start / 64;
    let off = start % 64;
    let lo = words.get(w).copied().unwrap_or(0) >> off;
    let value = if off == 0 || off + n <= 64 {
        lo
    } else {
        lo | words.get(w + 1).copied().unwrap_or(0) << (64 - off)
    };
    if n == 64 {
        value
    } else {
        value & ((1u64 << n) - 1)
    }
}

/// Counts the 1-bits in the range.
#[inline]
#[must_use]
pub fn count_ones(words: &[u64], start: usize, len: usize) -> usize {
    fold_range(words, start, len, 0usize, |acc, w| {
        acc + w.count_ones() as usize
    })
}

/// `true` if any bit in the range is 1.
#[inline]
#[must_use]
pub fn any_set(words: &[u64], start: usize, len: usize) -> bool {
    short_circuit_range(words, start, len, |w| w != 0)
}

/// `true` if any position in the range has `a = 1` and `b = 0`
/// (word-parallel `a & !b != 0`).
///
/// With `a` = care plane and `b` = value plane this detects a specified
/// zero, the kernel behind 9C half classification.
#[inline]
#[must_use]
pub fn any_and_not(a: &[u64], b: &[u64], start: usize, len: usize) -> bool {
    debug_assert!(start + len <= a.len() * 64 && start + len <= b.len() * 64 || len == 0);
    let mut pos = start;
    let end = start + len;
    while pos < end {
        let take = (end - pos).min(64 - pos % 64);
        let w = pos / 64;
        let off = pos % 64;
        let mask = range_mask(off, take);
        if a[w] & !b[w] & mask != 0 {
            return true;
        }
        pos += take;
    }
    false
}

/// Counts positions in the range where `a = 1` and `b = 0`.
#[inline]
#[must_use]
pub fn count_and_not(a: &[u64], b: &[u64], start: usize, len: usize) -> usize {
    debug_assert!(start + len <= a.len() * 64 && start + len <= b.len() * 64 || len == 0);
    let mut pos = start;
    let end = start + len;
    let mut total = 0usize;
    while pos < end {
        let take = (end - pos).min(64 - pos % 64);
        let w = pos / 64;
        let off = pos % 64;
        let mask = range_mask(off, take);
        total += (a[w] & !b[w] & mask).count_ones() as usize;
        pos += take;
    }
    total
}

/// A mask with `len` 1-bits starting at bit `off` (`off + len <= 64`).
#[inline]
#[must_use]
fn range_mask(off: usize, len: usize) -> u64 {
    debug_assert!(off + len <= 64);
    if len == 64 {
        u64::MAX
    } else {
        ((1u64 << len) - 1) << off
    }
}

/// Folds the masked words of a bit range. Each callback receives the word
/// with out-of-range bits cleared and already shifted *in place* (not
/// normalized), which is sufficient for popcount-style folds.
#[inline]
fn fold_range<T>(
    words: &[u64],
    start: usize,
    len: usize,
    init: T,
    mut f: impl FnMut(T, u64) -> T,
) -> T {
    debug_assert!(start + len <= words.len() * 64 || len == 0);
    let mut acc = init;
    let mut pos = start;
    let end = start + len;
    while pos < end {
        let take = (end - pos).min(64 - pos % 64);
        let w = words[pos / 64] & range_mask(pos % 64, take);
        acc = f(acc, w);
        pos += take;
    }
    acc
}

/// Like [`fold_range`] but stops early once `f` returns `true`.
#[inline]
fn short_circuit_range(
    words: &[u64],
    start: usize,
    len: usize,
    mut f: impl FnMut(u64) -> bool,
) -> bool {
    debug_assert!(start + len <= words.len() * 64 || len == 0);
    let mut pos = start;
    let end = start + len;
    while pos < end {
        let take = (end - pos).min(64 - pos % 64);
        let w = words[pos / 64] & range_mask(pos % 64, take);
        if f(w) {
            return true;
        }
        pos += take;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits_to_words(bits: &[bool]) -> Vec<u64> {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        words
    }

    fn ref_count(bits: &[bool], start: usize, len: usize) -> usize {
        bits[start..start + len].iter().filter(|&&b| b).count()
    }

    #[test]
    fn extract_word_all_alignments() {
        let bits: Vec<bool> = (0..200).map(|i| (i * 7 + 3) % 5 < 2).collect();
        let words = bits_to_words(&bits);
        for start in 0..(200 - 64) {
            for n in [0usize, 1, 7, 13, 63, 64] {
                let got = extract_word(&words, start, n);
                for (j, &b) in bits[start..start + n].iter().enumerate() {
                    assert_eq!(got >> j & 1 == 1, b, "start {start} n {n} bit {j}");
                }
                if n < 64 {
                    assert_eq!(got >> n, 0, "high bits must be clear");
                }
            }
        }
    }

    #[test]
    fn extract_word_past_end_reads_zero() {
        let words = vec![u64::MAX];
        assert_eq!(extract_word(&words, 60, 8), 0b1111);
        assert_eq!(extract_word(&words, 64, 8), 0);
        assert_eq!(extract_word(&[], 0, 8), 0);
    }

    #[test]
    fn count_and_any_match_reference() {
        let bits: Vec<bool> = (0..300).map(|i| i % 17 == 0 || i % 3 == 1).collect();
        let words = bits_to_words(&bits);
        for &(start, len) in &[
            (0usize, 300usize),
            (1, 63),
            (63, 2),
            (64, 64),
            (65, 130),
            (150, 0),
            (299, 1),
        ] {
            assert_eq!(
                count_ones(&words, start, len),
                ref_count(&bits, start, len),
                "count {start}+{len}"
            );
            assert_eq!(
                any_set(&words, start, len),
                ref_count(&bits, start, len) > 0,
                "any {start}+{len}"
            );
        }
    }

    #[test]
    fn and_not_detects_care_zeros() {
        // care = 1 everywhere, value = 1 on evens -> care & !value on odds.
        let care: Vec<bool> = (0..130).map(|_| true).collect();
        let value: Vec<bool> = (0..130).map(|i| i % 2 == 0).collect();
        let (cw, vw) = (bits_to_words(&care), bits_to_words(&value));
        assert!(any_and_not(&cw, &vw, 0, 130));
        assert_eq!(count_and_not(&cw, &vw, 0, 130), 65);
        // A range covering only even positions has no specified zero.
        assert!(!any_and_not(&cw, &vw, 2, 1));
        assert!(any_and_not(&cw, &vw, 2, 2));
        // Empty range.
        assert!(!any_and_not(&cw, &vw, 64, 0));
        assert_eq!(count_and_not(&cw, &vw, 64, 0), 0);
    }

    #[test]
    fn masks_do_not_leak_across_word_boundaries() {
        let mut bits = vec![false; 192];
        bits[63] = true;
        bits[64] = true;
        bits[127] = true;
        let words = bits_to_words(&bits);
        assert_eq!(count_ones(&words, 0, 63), 0);
        assert_eq!(count_ones(&words, 63, 1), 1);
        assert_eq!(count_ones(&words, 63, 2), 2);
        assert_eq!(count_ones(&words, 65, 62), 0);
        assert_eq!(count_ones(&words, 65, 63), 1);
        assert!(!any_set(&words, 128, 64));
    }
}

//! Zero-copy subrange views over packed trit streams.
//!
//! [`TritSlice`] borrows the care/value bit-planes of a
//! [`TritVec`](crate::trit::TritVec) and exposes word-parallel operations
//! (popcount-based counting, mask-based 9C half classification) over an
//! arbitrary symbol subrange — without copying and without per-symbol enum
//! dispatch. [`Chunks`] walks a stream in fixed-size slices so codec
//! consumers never allocate per block.

use crate::trit::{Trit, TritVec};
use crate::words;
use std::fmt;

/// A borrowed, zero-copy view of a subrange of a packed trit stream.
///
/// The view holds the raw `&[u64]` care/value planes plus a bit offset, so
/// subslicing is O(1) and the classification/counting kernels below run in
/// `O(len / 64)` word operations.
///
/// # Plane invariant
///
/// Like [`TritVec`], the value plane is zero wherever the care plane is zero
/// (`X` symbols store `care = 0, value = 0`). The kernels rely on this:
/// a specified one is simply a set value bit, and a specified zero is
/// `care & !value`.
///
/// # Examples
///
/// ```
/// use ninec_testdata::trit::TritVec;
///
/// let tv: TritVec = "0X00X0X011XX".parse()?;
/// let left = tv.slice_view(0, 6); // "0X00X0"
/// assert_eq!(left.count_care_zeros(), 4);
/// assert!(!left.has_care_one());
/// // 9C half classification without touching individual symbols:
/// let (can_zero, can_one) = left.classify_range(0, left.len());
/// assert!(can_zero && !can_one);
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Clone, Copy)]
pub struct TritSlice<'a> {
    care: &'a [u64],
    value: &'a [u64],
    start: usize,
    len: usize,
}

impl<'a> TritSlice<'a> {
    /// Builds a view from raw packed planes (as exposed by
    /// [`TritVec::care_words`](crate::trit::TritVec::care_words) /
    /// [`TritVec::value_words`](crate::trit::TritVec::value_words)).
    ///
    /// # Panics
    ///
    /// Panics if the bit range `[start, start + len)` exceeds either plane.
    #[must_use]
    pub fn from_raw(care: &'a [u64], value: &'a [u64], start: usize, len: usize) -> Self {
        assert!(
            start + len <= care.len() * 64 && start + len <= value.len() * 64,
            "trit range {start}+{len} out of range"
        );
        Self {
            care,
            value,
            start,
            len,
        }
    }

    /// Number of symbols in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The symbol at `index` within the view, or `None` past the end.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<Trit> {
        if index >= self.len {
            return None;
        }
        let pos = self.start + index;
        Some(
            match (
                words::get_bit(self.care, pos),
                words::get_bit(self.value, pos),
            ) {
                (false, _) => Trit::X,
                (true, false) => Trit::Zero,
                (true, true) => Trit::One,
            },
        )
    }

    /// O(1) subview of the half-open symbol range `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > self.len()`.
    #[must_use]
    pub fn subslice(&self, from: usize, to: usize) -> TritSlice<'a> {
        assert!(
            from <= to && to <= self.len,
            "subslice {from}..{to} out of range {}",
            self.len
        );
        TritSlice {
            care: self.care,
            value: self.value,
            start: self.start + from,
            len: to - from,
        }
    }

    /// Number of specified symbols (word-parallel popcount).
    #[must_use]
    pub fn count_care(&self) -> usize {
        words::count_ones(self.care, self.start, self.len)
    }

    /// Number of don't-cares.
    #[must_use]
    pub fn count_x(&self) -> usize {
        self.len - self.count_care()
    }

    /// Number of specified ones (word-parallel popcount of the value
    /// plane; valid by the plane invariant).
    #[must_use]
    pub fn count_care_ones(&self) -> usize {
        words::count_ones(self.value, self.start, self.len)
    }

    /// Number of specified zeros (word-parallel `care & !value` popcount).
    #[must_use]
    pub fn count_care_zeros(&self) -> usize {
        words::count_and_not(self.care, self.value, self.start, self.len)
    }

    /// `true` if the view contains at least one specified one.
    #[must_use]
    pub fn has_care_one(&self) -> bool {
        words::any_set(self.value, self.start, self.len)
    }

    /// `true` if the view contains at least one specified zero.
    #[must_use]
    pub fn has_care_zero(&self) -> bool {
        words::any_and_not(self.care, self.value, self.start, self.len)
    }

    /// 9C half classification of the symbol range `[from, to)` in
    /// `O(len / 64)` word operations: returns `(can_zero, can_one)`, i.e.
    /// whether every symbol is compatible with all-zeros / with all-ones.
    ///
    /// An empty range is compatible with both. `(false, false)` is the
    /// paper's *mismatch* half.
    ///
    /// # Panics
    ///
    /// Panics if `from > to` or `to > self.len()`.
    #[must_use]
    pub fn classify_range(&self, from: usize, to: usize) -> (bool, bool) {
        assert!(
            from <= to && to <= self.len,
            "classify {from}..{to} out of range {}",
            self.len
        );
        let (start, len) = (self.start + from, to - from);
        let can_zero = !words::any_set(self.value, start, len);
        let can_one = !words::any_and_not(self.care, self.value, start, len);
        (can_zero, can_one)
    }

    /// Extracts up to 64 bits of the care plane starting at symbol `from`,
    /// LSB-first. Symbols past the end read as 0 (don't-care).
    #[must_use]
    pub fn care_word(&self, from: usize, n: usize) -> u64 {
        debug_assert!(from <= self.len);
        words::extract_word(self.care, self.start + from, n.min(64))
    }

    /// Extracts up to 64 bits of the value plane starting at symbol `from`,
    /// LSB-first. Symbols past the end read as 0.
    #[must_use]
    pub fn value_word(&self, from: usize, n: usize) -> u64 {
        debug_assert!(from <= self.len);
        words::extract_word(self.value, self.start + from, n.min(64))
    }

    /// Copies the view into an owned [`TritVec`].
    #[must_use]
    pub fn to_tritvec(&self) -> TritVec {
        let mut out = TritVec::with_capacity(self.len);
        out.extend_from_slice(*self);
        out
    }

    /// Iterates over the symbols in order.
    pub fn iter(&self) -> SliceIter<'a> {
        SliceIter {
            slice: *self,
            index: 0,
        }
    }

    /// The raw care plane words backing this view (bit offset
    /// [`Self::bit_start`] applies).
    #[must_use]
    pub fn care_words(&self) -> &'a [u64] {
        self.care
    }

    /// The raw value plane words backing this view (bit offset
    /// [`Self::bit_start`] applies).
    #[must_use]
    pub fn value_words(&self) -> &'a [u64] {
        self.value
    }

    /// Bit offset of the view's first symbol within the raw planes.
    #[must_use]
    pub fn bit_start(&self) -> usize {
        self.start
    }
}

impl fmt::Display for TritSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for TritSlice<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TritSlice(\"{self}\")")
    }
}

impl<'a> IntoIterator for TritSlice<'a> {
    type Item = Trit;
    type IntoIter = SliceIter<'a>;

    fn into_iter(self) -> SliceIter<'a> {
        SliceIter {
            slice: self,
            index: 0,
        }
    }
}

/// Iterator over the symbols of a [`TritSlice`].
#[derive(Debug, Clone)]
pub struct SliceIter<'a> {
    slice: TritSlice<'a>,
    index: usize,
}

impl Iterator for SliceIter<'_> {
    type Item = Trit;

    fn next(&mut self) -> Option<Trit> {
        let t = self.slice.get(self.index)?;
        self.index += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.slice.len() - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SliceIter<'_> {}

/// Iterator over fixed-size chunks of a trit stream, yielding zero-copy
/// [`TritSlice`] views; the final chunk may be shorter.
///
/// This is the allocation-free block cursor the streaming 9C codec walks.
///
/// # Examples
///
/// ```
/// use ninec_testdata::trit::TritVec;
///
/// let tv: TritVec = "01X10XX1X".parse()?;
/// let sizes: Vec<usize> = tv.chunks(4).map(|c| c.len()).collect();
/// assert_eq!(sizes, [4, 4, 1]);
/// assert_eq!(tv.chunks(4).nth(1).unwrap().to_string(), "0XX1");
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Chunks<'a> {
    slice: TritSlice<'a>,
    pos: usize,
    chunk: usize,
}

impl<'a> Chunks<'a> {
    /// Builds a cursor over `slice` with `chunk`-symbol steps.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    #[must_use]
    pub fn new(slice: TritSlice<'a>, chunk: usize) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        Self {
            slice,
            pos: 0,
            chunk,
        }
    }
}

impl<'a> Iterator for Chunks<'a> {
    type Item = TritSlice<'a>;

    fn next(&mut self) -> Option<TritSlice<'a>> {
        if self.pos >= self.slice.len() {
            return None;
        }
        let end = (self.pos + self.chunk).min(self.slice.len());
        let out = self.slice.subslice(self.pos, end);
        self.pos = end;
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.slice.len() - self.pos).div_ceil(self.chunk);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Chunks<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trit::Trit;

    fn tv(s: &str) -> TritVec {
        s.parse().unwrap()
    }

    #[test]
    fn view_matches_copying_slice() {
        let stream = tv("01X10XX101XX01X1");
        for start in 0..stream.len() {
            for end in start..=stream.len() {
                let view = stream.slice_view(start, end);
                let copy = stream.slice(start, end);
                assert_eq!(view.len(), copy.len());
                assert_eq!(view.to_string(), copy.to_string(), "{start}..{end}");
                assert_eq!(view.to_tritvec(), copy);
            }
        }
    }

    #[test]
    fn counting_kernels_match_scalar() {
        // Long enough to cross several word boundaries.
        let pattern: String = "01X10XX10XXX01X1".repeat(12);
        let stream = tv(&pattern);
        for &(start, end) in &[(0usize, 192usize), (1, 64), (63, 66), (100, 100), (5, 191)] {
            let view = stream.slice_view(start, end);
            let scalar: Vec<Trit> = view.iter().collect();
            assert_eq!(
                view.count_care_zeros(),
                scalar.iter().filter(|&&t| t == Trit::Zero).count()
            );
            assert_eq!(
                view.count_care_ones(),
                scalar.iter().filter(|&&t| t == Trit::One).count()
            );
            assert_eq!(view.count_x(), scalar.iter().filter(|&&t| t.is_x()).count());
            assert_eq!(view.has_care_zero(), scalar.contains(&Trit::Zero));
            assert_eq!(view.has_care_one(), scalar.contains(&Trit::One));
        }
    }

    #[test]
    fn classify_range_all_nine_shapes() {
        let cases = [
            ("0X0X", (true, false)),  // zero-compatible only
            ("1X11", (false, true)),  // one-compatible only
            ("XXXX", (true, true)),   // both
            ("", (true, true)),       // empty is both
            ("01XX", (false, false)), // mismatch
        ];
        for (s, expected) in cases {
            let stream = tv(s);
            let view = stream.as_slice();
            assert_eq!(view.classify_range(0, view.len()), expected, "{s:?}");
        }
        // Subranges classify independently.
        let stream = tv("0X0X1X11");
        let view = stream.as_slice();
        assert_eq!(view.classify_range(0, 4), (true, false));
        assert_eq!(view.classify_range(4, 8), (false, true));
        assert_eq!(view.classify_range(0, 8), (false, false));
        assert_eq!(view.classify_range(3, 5), (false, true)); // "X1"
    }

    #[test]
    fn subslice_composes() {
        let stream = tv("01X10XX101XX");
        let outer = stream.slice_view(2, 10); // "X10XX101"
        let inner = outer.subslice(1, 5); // "10XX"
        assert_eq!(inner.to_string(), "10XX");
        assert_eq!(inner.subslice(0, 0).len(), 0);
    }

    #[test]
    fn plane_word_extraction() {
        let stream = tv("01X1");
        let view = stream.as_slice();
        // care: 1101 (LSB-first: bit0=1,bit1=1,bit2=0,bit3=1) -> 0b1011
        assert_eq!(view.care_word(0, 4), 0b1011);
        // value: 0101 -> bit1=1, bit3=1 -> 0b1010
        assert_eq!(view.value_word(0, 4), 0b1010);
        // Reads past the end are don't-care.
        assert_eq!(view.care_word(0, 64), 0b1011);
    }

    #[test]
    fn chunk_cursor_covers_stream_exactly() {
        let pattern: String = "01X10".repeat(30); // 150 symbols
        let stream = tv(&pattern);
        for chunk in [1usize, 7, 64, 150, 1000] {
            let mut reassembled = TritVec::new();
            let mut count = 0usize;
            for piece in stream.chunks(chunk) {
                assert!(piece.len() <= chunk);
                reassembled.extend_from_slice(piece);
                count += 1;
            }
            assert_eq!(reassembled, stream, "chunk {chunk}");
            assert_eq!(count, stream.len().div_ceil(chunk));
            assert_eq!(stream.chunks(chunk).len(), count);
        }
        assert_eq!(TritVec::new().chunks(8).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subslice_out_of_range_panics() {
        let stream = tv("01X1");
        let _ = stream.as_slice().subslice(2, 9);
    }
}

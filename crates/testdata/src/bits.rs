//! Packed bit vectors and bit-granular readers/writers.
//!
//! Every compression code in this workspace produces or consumes streams at
//! bit granularity; [`BitVec`], [`BitWriter`] and [`BitReader`] are the
//! shared substrate for that.

use std::fmt;

/// A growable, packed vector of bits.
///
/// Bits are stored LSB-first inside `u64` words; index 0 is the first bit
/// pushed. The type is deliberately minimal — exactly the operations the
/// codecs need — rather than a general `Vec<bool>` replacement.
///
/// # Examples
///
/// ```
/// use ninec_testdata::bits::BitVec;
///
/// let mut bv = BitVec::new();
/// bv.push(true);
/// bv.push(false);
/// bv.push(true);
/// assert_eq!(bv.len(), 3);
/// assert_eq!(bv.get(0), Some(true));
/// assert_eq!(bv.to_string(), "101");
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` copies of `bit`.
    #[must_use]
    pub fn repeat(bit: bool, len: usize) -> Self {
        let word = if bit { u64::MAX } else { 0 };
        let mut v = Self {
            words: vec![word; len.div_ceil(64)],
            len,
        };
        v.mask_tail();
        v
    }

    /// Parses a bit vector from a string of `'0'` and `'1'` characters.
    ///
    /// # Errors
    ///
    /// Returns [`ParseBitsError`] if any character is not `'0'` or `'1'`.
    pub fn from_str_radix2(s: &str) -> Result<Self, ParseBitsError> {
        let mut v = Self::with_capacity(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '0' => v.push(false),
                '1' => v.push(true),
                other => {
                    return Err(ParseBitsError {
                        position: i,
                        found: other,
                    })
                }
            }
        }
        Ok(v)
    }

    /// Number of bits stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no bits are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The packed backing words, LSB-first; bit `i` of the vector is
    /// `words()[i / 64] >> (i % 64) & 1`. Bits at positions `>= len()` in
    /// the last word are zero.
    ///
    /// This is the zero-copy entry point for the word-parallel kernels in
    /// [`crate::words`].
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reserves room for at least `additional` more bits.
    pub fn reserve(&mut self, additional: usize) {
        let needed = (self.len + additional).div_ceil(64);
        self.words.reserve(needed.saturating_sub(self.words.len()));
    }

    /// Shortens the vector to `len` bits; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        if len >= self.len {
            return;
        }
        self.len = len;
        self.words.truncate(len.div_ceil(64));
        self.mask_tail();
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        let (w, b) = (self.len / 64, self.len % 64);
        if b == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[w] |= 1 << b;
        }
        self.len += 1;
    }

    /// Returns the bit at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<bool> {
        if index >= self.len {
            return None;
        }
        Some(self.words[index / 64] >> (index % 64) & 1 == 1)
    }

    /// Sets the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, bit: bool) {
        assert!(
            index < self.len,
            "bit index {index} out of range {}",
            self.len
        );
        let (w, b) = (index / 64, index % 64);
        if bit {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Appends the `n` low bits of `value`, LSB first — in O(1) word
    /// operations, not per-bit.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits_lsb(&mut self, value: u64, n: usize) {
        assert!(n <= 64, "cannot push more than 64 bits at once");
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let off = self.len % 64;
        if off == 0 {
            self.words.push(value);
        } else {
            *self.words.last_mut().expect("off != 0 implies a word") |= value << off;
            if off + n > 64 {
                self.words.push(value >> (64 - off));
            }
        }
        self.len += n;
    }

    /// Appends `n` copies of `bit` in O(n / 64) word operations.
    pub fn push_repeat(&mut self, bit: bool, n: usize) {
        let word = if bit { u64::MAX } else { 0 };
        let mut remaining = n;
        self.reserve(n);
        while remaining > 0 {
            let take = remaining.min(64);
            self.push_bits_lsb(word, take);
            remaining -= take;
        }
    }

    /// Appends the bit range `[start, start + len)` of a packed word slice
    /// (as exposed by [`BitVec::words`]) in O(len / 64) word operations.
    pub fn extend_from_words(&mut self, words: &[u64], start: usize, len: usize) {
        assert!(
            start + len <= words.len() * 64,
            "bit range {start}+{len} out of range for {} words",
            words.len()
        );
        self.reserve(len);
        let mut pos = start;
        let end = start + len;
        while pos < end {
            let take = (end - pos).min(64);
            self.push_bits_lsb(crate::words::extract_word(words, pos, take), take);
            pos += take;
        }
    }

    /// Appends the `n` low bits of `value`, MSB of those `n` bits first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn push_bits_msb(&mut self, value: u64, n: usize) {
        assert!(n <= 64, "cannot push more than 64 bits at once");
        for i in (0..n).rev() {
            self.push(value >> i & 1 == 1);
        }
    }

    /// Appends all bits of `other` in O(len / 64) word operations.
    pub fn extend_from_bitvec(&mut self, other: &BitVec) {
        self.extend_from_words(&other.words, 0, other.len);
    }

    /// Number of 1-bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of 0-bits.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Iterates over the bits in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            bits: self,
            index: 0,
        }
    }

    /// Number of positions where `self` and `other` differ.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(
            self.len, other.len,
            "hamming distance requires equal lengths"
        );
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec(\"{self}\")")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = BitVec::with_capacity(iter.size_hint().0);
        for bit in iter {
            v.push(bit);
        }
        v
    }
}

impl Extend<bool> for BitVec {
    fn extend<I: IntoIterator<Item = bool>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.reserve(iter.size_hint().0);
        for bit in iter {
            self.push(bit);
        }
    }
}

impl<'a> IntoIterator for &'a BitVec {
    type Item = bool;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the bits of a [`BitVec`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    bits: &'a BitVec,
    index: usize,
}

impl Iterator for Iter<'_> {
    type Item = bool;

    fn next(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.index)?;
        self.index += 1;
        Some(bit)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.bits.len() - self.index;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Iter<'_> {}

/// Error returned when parsing a [`BitVec`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitsError {
    /// Byte offset of the offending character.
    pub position: usize,
    /// The character that was not `'0'` or `'1'`.
    pub found: char,
}

impl fmt::Display for ParseBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid bit character {:?} at position {}",
            self.found, self.position
        )
    }
}

impl std::error::Error for ParseBitsError {}

/// Incremental writer producing a [`BitVec`].
///
/// Exists mostly for symmetry with [`BitReader`]; encoders that build a
/// stream front-to-back can use it directly.
///
/// # Examples
///
/// ```
/// use ninec_testdata::bits::BitWriter;
///
/// let mut w = BitWriter::new();
/// w.write_bit(true);
/// w.write_bits_msb(0b101, 3);
/// let bv = w.finish();
/// assert_eq!(bv.to_string(), "1101");
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    out: BitVec,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one bit.
    pub fn write_bit(&mut self, bit: bool) {
        self.out.push(bit);
    }

    /// Appends the `n` low bits of `value`, MSB first.
    pub fn write_bits_msb(&mut self, value: u64, n: usize) {
        self.out.push_bits_msb(value, n);
    }

    /// Appends a whole bit vector.
    pub fn write_bitvec(&mut self, bits: &BitVec) {
        self.out.extend_from_bitvec(bits);
    }

    /// Bits written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    /// Consumes the writer, returning the accumulated bits.
    pub fn finish(self) -> BitVec {
        self.out
    }
}

/// Cursor reading a [`BitVec`] front-to-back.
///
/// # Examples
///
/// ```
/// use ninec_testdata::bits::{BitReader, BitVec};
///
/// let bv = BitVec::from_str_radix2("1101")?;
/// let mut r = BitReader::new(&bv);
/// assert_eq!(r.read_bit(), Some(true));
/// assert_eq!(r.read_bits_msb(3), Some(0b101));
/// assert!(r.is_at_end());
/// # Ok::<(), ninec_testdata::bits::ParseBitsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bits: &'a BitVec,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader positioned at the first bit.
    pub fn new(bits: &'a BitVec) -> Self {
        Self { bits, pos: 0 }
    }

    /// Reads one bit, or `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        let bit = self.bits.get(self.pos)?;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits MSB-first into the low bits of a `u64`.
    ///
    /// Returns `None` (consuming nothing) if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    pub fn read_bits_msb(&mut self, n: usize) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.remaining() < n {
            return None;
        }
        let mut value = 0u64;
        for _ in 0..n {
            value = value << 1 | self.read_bit().expect("length checked") as u64;
        }
        Some(value)
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bits left to read.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// `true` once every bit has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut bv = BitVec::new();
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        for &b in &pattern {
            bv.push(b);
        }
        assert_eq!(bv.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), Some(b), "bit {i}");
        }
        assert_eq!(bv.get(200), None);
    }

    #[test]
    fn set_overwrites() {
        let mut bv = BitVec::repeat(false, 130);
        bv.set(0, true);
        bv.set(64, true);
        bv.set(129, true);
        assert_eq!(bv.count_ones(), 3);
        bv.set(64, false);
        assert_eq!(bv.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut bv = BitVec::repeat(false, 3);
        bv.set(3, true);
    }

    #[test]
    fn repeat_masks_tail() {
        let bv = BitVec::repeat(true, 70);
        assert_eq!(bv.count_ones(), 70);
        assert_eq!(bv.len(), 70);
    }

    #[test]
    fn parse_and_display() {
        let bv = BitVec::from_str_radix2("0110010").unwrap();
        assert_eq!(bv.to_string(), "0110010");
        let err = BitVec::from_str_radix2("01x").unwrap_err();
        assert_eq!(err.position, 2);
        assert_eq!(err.found, 'x');
    }

    #[test]
    fn push_bits_orderings() {
        let mut lsb = BitVec::new();
        lsb.push_bits_lsb(0b110, 3); // pushes 0,1,1
        assert_eq!(lsb.to_string(), "011");
        let mut msb = BitVec::new();
        msb.push_bits_msb(0b110, 3); // pushes 1,1,0
        assert_eq!(msb.to_string(), "110");
    }

    #[test]
    fn reader_msb_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits_msb(0xDEAD, 16);
        w.write_bits_msb(0b1, 1);
        let bv = w.finish();
        let mut r = BitReader::new(&bv);
        assert_eq!(r.read_bits_msb(16), Some(0xDEAD));
        assert_eq!(r.read_bits_msb(1), Some(1));
        assert_eq!(r.read_bits_msb(1), None);
        assert!(r.is_at_end());
    }

    #[test]
    fn reader_refuses_partial_read() {
        let bv = BitVec::from_str_radix2("101").unwrap();
        let mut r = BitReader::new(&bv);
        assert_eq!(r.read_bits_msb(4), None);
        assert_eq!(r.position(), 0, "failed read must not consume");
        assert_eq!(r.read_bits_msb(3), Some(0b101));
    }

    #[test]
    fn hamming() {
        let a = BitVec::from_str_radix2("10110").unwrap();
        let b = BitVec::from_str_radix2("10011").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
    }

    #[test]
    fn push_bits_lsb_word_level_matches_bitwise() {
        // Cross word boundaries at every alignment.
        for prefix in 0..67usize {
            let mut word_level = BitVec::new();
            let mut bitwise = BitVec::new();
            for i in 0..prefix {
                word_level.push(i % 3 == 0);
                bitwise.push(i % 3 == 0);
            }
            for &(v, n) in &[
                (0xDEAD_BEEF_u64, 32usize),
                (0b101, 3),
                (u64::MAX, 64),
                (0, 0),
                (1, 1),
            ] {
                word_level.push_bits_lsb(v, n);
                for i in 0..n {
                    bitwise.push(v >> i & 1 == 1);
                }
            }
            assert_eq!(word_level, bitwise, "prefix {prefix}");
        }
    }

    #[test]
    fn push_repeat_runs() {
        let mut bv = BitVec::new();
        bv.push(true);
        bv.push_repeat(false, 70);
        bv.push_repeat(true, 130);
        assert_eq!(bv.len(), 201);
        assert_eq!(bv.count_ones(), 131);
        assert_eq!(bv.get(0), Some(true));
        assert_eq!(bv.get(70), Some(false));
        assert_eq!(bv.get(71), Some(true));
    }

    #[test]
    fn extend_from_bitvec_unaligned() {
        for prefix_len in [0usize, 1, 63, 64, 65] {
            let mut dst = BitVec::repeat(true, prefix_len);
            let src: BitVec = (0..150).map(|i| i % 7 < 3).collect();
            dst.extend_from_bitvec(&src);
            assert_eq!(dst.len(), prefix_len + 150);
            for i in 0..150 {
                assert_eq!(
                    dst.get(prefix_len + i),
                    src.get(i),
                    "prefix {prefix_len} bit {i}"
                );
            }
        }
    }

    #[test]
    fn extend_from_words_subrange() {
        let src: BitVec = (0..200).map(|i| i % 5 == 0).collect();
        let mut dst = BitVec::new();
        dst.push(true);
        dst.extend_from_words(src.words(), 3, 130);
        assert_eq!(dst.len(), 131);
        for i in 0..130 {
            assert_eq!(dst.get(1 + i), src.get(3 + i), "bit {i}");
        }
    }

    #[test]
    fn truncate_masks_tail() {
        let mut bv = BitVec::repeat(true, 130);
        bv.truncate(65);
        assert_eq!(bv.len(), 65);
        assert_eq!(bv.count_ones(), 65);
        // Pushing after truncation must not resurrect stale bits.
        bv.push(false);
        assert_eq!(bv.get(65), Some(false));
        assert_eq!(bv.count_ones(), 65);
        bv.truncate(200); // no-op
        assert_eq!(bv.len(), 66);
    }

    #[test]
    fn words_expose_packed_planes() {
        let mut bv = BitVec::new();
        bv.push_bits_lsb(0b1011, 4);
        assert_eq!(bv.words(), &[0b1011]);
        let full = BitVec::repeat(true, 64);
        assert_eq!(full.words(), &[u64::MAX]);
    }

    #[test]
    fn from_iter_collect() {
        let bv: BitVec = [true, false, true].into_iter().collect();
        assert_eq!(bv.to_string(), "101");
        let round: Vec<bool> = bv.iter().collect();
        assert_eq!(round, vec![true, false, true]);
    }
}

//! Synthetic test-cube generation calibrated to published benchmark profiles.
//!
//! The 9C paper compresses precomputed (Mintest) test sets for six ISCAS'89
//! circuits and two large IBM circuits. Those files are not redistributable,
//! so this module substitutes *profile-calibrated* synthetic sets: pattern
//! count, scan length and don't-care density are fixed to the published
//! values, and care bits are placed in correlated bursts with a 0-biased
//! value distribution — the structure real compacted ATPG cubes exhibit and
//! the structure fixed-block codes exploit. See `DESIGN.md` §4.

use crate::cube::TestSet;
use crate::trit::{Trit, TritVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Statistical profile of a benchmark test set.
///
/// [`SyntheticProfile::generate`] turns a profile into a concrete
/// [`TestSet`], deterministically for a given seed.
///
/// # Examples
///
/// ```
/// use ninec_testdata::gen::SyntheticProfile;
///
/// let profile = SyntheticProfile::new("demo", 20, 128, 0.80);
/// let ts = profile.generate(42);
/// assert_eq!(ts.num_patterns(), 20);
/// assert_eq!(ts.pattern_len(), 128);
/// // Achieved X density tracks the target closely.
/// assert!((ts.x_density() - 0.80).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticProfile {
    /// Human-readable circuit name (e.g. `"s5378"`).
    pub name: String,
    /// Number of test cubes.
    pub num_patterns: usize,
    /// Scan length (cells per cube).
    pub pattern_len: usize,
    /// Target fraction of don't-care symbols, in `(0, 1)`.
    pub x_density: f64,
    /// Probability that a care burst is a burst of zeros (ATPG cubes are
    /// 0-heavy; Mintest-era sets sit around 0.6–0.75).
    pub zero_bias: f64,
    /// Mean length of a care-bit burst, in symbols.
    pub mean_care_run: f64,
    /// Probability that a single bit inside a burst deviates from the
    /// burst's base value.
    pub flip_prob: f64,
    /// How much denser the first cubes are than the last (compacted sets
    /// front-load specified bits). 1.0 = uniform.
    pub density_skew: f64,
}

impl SyntheticProfile {
    /// Creates a profile with default burst structure
    /// (`zero_bias` 0.68, `mean_care_run` 6, `flip_prob` 0.12,
    /// `density_skew` 3.0).
    ///
    /// # Panics
    ///
    /// Panics if `x_density` is not in `(0, 1)` or a dimension is zero.
    pub fn new(name: &str, num_patterns: usize, pattern_len: usize, x_density: f64) -> Self {
        assert!(
            num_patterns > 0 && pattern_len > 0,
            "dimensions must be positive"
        );
        assert!(
            x_density > 0.0 && x_density < 1.0,
            "x_density must be in (0, 1), got {x_density}"
        );
        Self {
            name: name.to_owned(),
            num_patterns,
            pattern_len,
            x_density,
            zero_bias: 0.68,
            mean_care_run: 6.0,
            flip_prob: 0.12,
            density_skew: 3.0,
        }
    }

    /// Total symbols of the generated set (`|T_D|`).
    pub fn total_bits(&self) -> usize {
        self.num_patterns * self.pattern_len
    }

    /// Generates the test set. Deterministic for a given `seed`.
    pub fn generate(&self, seed: u64) -> TestSet {
        let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&self.name));
        let mut ts = TestSet::new(self.pattern_len);
        let n = self.num_patterns;
        // Per-pattern care-density multipliers: geometric decay from the
        // first to the last cube, normalized to mean 1 so the overall X
        // density stays on target.
        let decay: Vec<f64> = (0..n)
            .map(|i| self.density_skew.powf(-(i as f64) / n.max(1) as f64))
            .collect();
        let mean_decay = decay.iter().sum::<f64>() / n as f64;
        let base_care = 1.0 - self.x_density;
        for factor in decay {
            let care_density = (base_care * factor / mean_decay).clamp(0.001, 0.999);
            let cube = self.generate_cube(care_density, &mut rng);
            ts.push_pattern(&cube)
                .expect("generated cube has profile length");
        }
        ts
    }

    /// Returns a copy scaled down by `factor` in both dimensions (at least
    /// 1 pattern / 1 cell) — handy for fast unit tests.
    pub fn scaled_down(&self, factor: usize) -> Self {
        let mut p = self.clone();
        p.num_patterns = (self.num_patterns / factor).max(1);
        p.pattern_len = (self.pattern_len / factor).max(2);
        p
    }

    fn generate_cube(&self, care_density: f64, rng: &mut StdRng) -> TritVec {
        let len = self.pattern_len;
        let mut cube = TritVec::with_capacity(len);
        // Alternate geometric X runs and care bursts sized so the expected
        // care fraction is `care_density`.
        let mean_x_run = (self.mean_care_run * (1.0 - care_density) / care_density).max(0.05);
        let mut in_care = rng.gen_bool(care_density);
        while cube.len() < len {
            if in_care {
                let run = geometric(self.mean_care_run, rng);
                let base = Trit::from(!rng.gen_bool(self.zero_bias));
                for _ in 0..run {
                    if cube.len() >= len {
                        break;
                    }
                    let t = if rng.gen_bool(self.flip_prob) {
                        flip(base)
                    } else {
                        base
                    };
                    cube.push(t);
                }
            } else {
                let run = geometric(mean_x_run, rng);
                for _ in 0..run {
                    if cube.len() >= len {
                        break;
                    }
                    cube.push(Trit::X);
                }
            }
            in_care = !in_care;
        }
        cube
    }
}

fn flip(t: Trit) -> Trit {
    match t {
        Trit::Zero => Trit::One,
        Trit::One => Trit::Zero,
        Trit::X => Trit::X,
    }
}

/// Samples a geometric run length with the given mean (at least 1).
fn geometric(mean: f64, rng: &mut StdRng) -> usize {
    let mean = mean.max(1.0);
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (1.0 + (1.0 - u).ln() / (1.0 - p).max(f64::EPSILON).ln()).floor() as usize
}

fn hash_name(name: &str) -> u64 {
    // FNV-1a, so each profile gets an independent stream for the same seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The six ISCAS'89 circuits of the paper's Tables II–VII, with the
/// published Mintest dimensions and approximate don't-care densities.
///
/// | circuit | patterns | scan cells | |T_D| bits | ~X% |
/// |---------|----------|------------|-----------|-----|
/// | s5378   | 111      | 214        | 23 754    | 72.6|
/// | s9234   | 159      | 247        | 39 273    | 73.0|
/// | s13207  | 236      | 700        | 165 200   | 93.2|
/// | s15850  | 126      | 611        | 76 986    | 83.6|
/// | s38417  | 99       | 1664       | 164 736   | 68.1|
/// | s38584  | 136      | 1464       | 199 104   | 82.2|
pub fn mintest_profiles() -> Vec<SyntheticProfile> {
    vec![
        SyntheticProfile::new("s5378", 111, 214, 0.726),
        SyntheticProfile::new("s9234", 159, 247, 0.730),
        SyntheticProfile::new("s13207", 236, 700, 0.932),
        SyntheticProfile::new("s15850", 126, 611, 0.836),
        SyntheticProfile::new("s38417", 99, 1664, 0.681),
        SyntheticProfile::new("s38584", 136, 1464, 0.822),
    ]
}

/// Looks up one of the [`mintest_profiles`] by circuit name.
pub fn mintest_profile(name: &str) -> Option<SyntheticProfile> {
    mintest_profiles().into_iter().find(|p| p.name == name)
}

/// IBM-like large industrial profiles for the paper's Table VIII
/// (substitution for the proprietary CKT1/CKT2; see `DESIGN.md` §4).
///
/// Very high X density and long care bursts, 16 Mbit and 4 Mbit of data —
/// large enough to show the "optimal K grows for very sparse sets" effect
/// at laptop scale.
pub fn ibm_profiles() -> Vec<SyntheticProfile> {
    let mut ckt1 = SyntheticProfile::new("CKT1", 2000, 8000, 0.968);
    ckt1.mean_care_run = 10.0;
    ckt1.zero_bias = 0.72;
    let mut ckt2 = SyntheticProfile::new("CKT2", 1000, 4000, 0.935);
    ckt2.mean_care_run = 8.0;
    ckt2.zero_bias = 0.70;
    vec![ckt1, ckt2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let p = SyntheticProfile::new("det", 10, 64, 0.8);
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8));
    }

    #[test]
    fn profiles_differ_by_name_for_same_seed() {
        let a = SyntheticProfile::new("a", 10, 64, 0.8).generate(1);
        let b = SyntheticProfile::new("b", 10, 64, 0.8).generate(1);
        assert_ne!(a, b);
    }

    #[test]
    fn hits_target_density() {
        for &target in &[0.3, 0.7, 0.93] {
            let p = SyntheticProfile::new("dens", 60, 500, target);
            let ts = p.generate(11);
            let got = ts.x_density();
            assert!((got - target).abs() < 0.04, "target {target}, got {got}");
        }
    }

    #[test]
    fn zero_bias_shows_in_values() {
        let p = SyntheticProfile::new("bias", 40, 400, 0.5);
        let ts = p.generate(3);
        let stream = ts.as_stream();
        let zeros = stream.count_zeros() as f64;
        let ones = stream.count_ones() as f64;
        assert!(
            zeros > ones,
            "expected 0-biased care bits: {zeros} vs {ones}"
        );
    }

    #[test]
    fn density_skew_front_loads_care_bits() {
        let p = SyntheticProfile::new("skew", 50, 400, 0.8);
        let ts = p.generate(5);
        let first: f64 = (0..10).map(|i| ts.pattern(i).count_care() as f64).sum();
        let last: f64 = (40..50).map(|i| ts.pattern(i).count_care() as f64).sum();
        assert!(
            first > last,
            "first cubes should be denser: {first} vs {last}"
        );
    }

    #[test]
    fn mintest_dimensions_match_published_sizes() {
        let sizes: Vec<(String, usize)> = mintest_profiles()
            .iter()
            .map(|p| (p.name.clone(), p.total_bits()))
            .collect();
        let expected = [
            ("s5378", 23754),
            ("s9234", 39273),
            ("s13207", 165200),
            ("s15850", 76986),
            ("s38417", 164736),
            ("s38584", 199104),
        ];
        for (name, bits) in expected {
            assert!(
                sizes.iter().any(|(n, b)| n == name && *b == bits),
                "{name} should have |T_D| = {bits}"
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(mintest_profile("s9234").is_some());
        assert!(mintest_profile("s0000").is_none());
    }

    #[test]
    fn scaled_down_keeps_shape() {
        let p = mintest_profile("s13207").unwrap().scaled_down(10);
        assert_eq!(p.num_patterns, 23);
        assert_eq!(p.pattern_len, 70);
        let ts = p.generate(1);
        assert!((ts.x_density() - 0.932).abs() < 0.08);
    }

    #[test]
    fn geometric_mean_roughly_right() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let total: usize = (0..n).map(|_| geometric(6.0, &mut rng)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.3, "mean {mean}");
    }
}

//! Three-valued test-data symbols: `0`, `1` and `X` (don't-care).
//!
//! Precomputed scan test sets are streams over {0, 1, X}; [`Trit`] is one
//! symbol and [`TritVec`] a packed vector of them (two bit-planes: a *care*
//! plane and a *value* plane, so a symbol costs 2 bits of storage).

use crate::bits::BitVec;
use crate::slice::{Chunks, TritSlice};
use std::fmt;

/// One test-data symbol: a care bit (`Zero`/`One`) or a don't-care (`X`).
///
/// # Examples
///
/// ```
/// use ninec_testdata::trit::Trit;
///
/// assert!(Trit::X.is_x());
/// assert!(Trit::Zero.compatible_with(Trit::X));
/// assert!(!Trit::Zero.compatible_with(Trit::One));
/// assert_eq!(Trit::try_from('1')?, Trit::One);
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trit {
    /// A specified 0.
    Zero,
    /// A specified 1.
    One,
    /// A don't-care: the tester may apply either value.
    X,
}

impl Trit {
    /// `true` for [`Trit::X`].
    pub fn is_x(self) -> bool {
        self == Trit::X
    }

    /// `true` for a specified (care) symbol.
    pub fn is_care(self) -> bool {
        self != Trit::X
    }

    /// Whether this symbol can coexist with `other` at the same position
    /// (equal, or at least one of the two is `X`).
    pub fn compatible_with(self, other: Trit) -> bool {
        self == other || self.is_x() || other.is_x()
    }

    /// The boolean value of a care symbol, or `None` for `X`.
    pub fn value(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::X => None,
        }
    }

    /// The symbol's character form: `'0'`, `'1'` or `'X'`.
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::X => 'X',
        }
    }
}

impl From<bool> for Trit {
    fn from(bit: bool) -> Self {
        if bit {
            Trit::One
        } else {
            Trit::Zero
        }
    }
}

impl TryFrom<char> for Trit {
    type Error = ParseTritError;

    fn try_from(c: char) -> Result<Self, ParseTritError> {
        match c {
            '0' => Ok(Trit::Zero),
            '1' => Ok(Trit::One),
            'x' | 'X' | '-' => Ok(Trit::X),
            other => Err(ParseTritError { found: other }),
        }
    }
}

impl fmt::Display for Trit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

/// Error returned when a character is not a valid trit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTritError {
    /// The offending character.
    pub found: char,
}

impl fmt::Display for ParseTritError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid trit character {:?} (expected 0, 1, X or -)",
            self.found
        )
    }
}

impl std::error::Error for ParseTritError {}

/// A packed, growable vector of [`Trit`]s.
///
/// Storage is two [`BitVec`] planes: `care` (1 = specified) and `value`
/// (meaningful only where `care` is set). This keeps multi-megabit test
/// sets compact and makes X-counting a popcount.
///
/// # Plane invariant
///
/// Every constructor and mutator maintains `value ⊆ care`: the value plane
/// is zero wherever the care plane is zero (`X` stores `care = 0,
/// value = 0`). The word-parallel kernels in [`crate::slice`] and
/// [`crate::words`] rely on this — a specified one is a set value bit, a
/// specified zero is `care & !value`.
///
/// # Examples
///
/// ```
/// use ninec_testdata::trit::{Trit, TritVec};
///
/// let tv: TritVec = "01X1".parse()?;
/// assert_eq!(tv.len(), 4);
/// assert_eq!(tv.get(2), Some(Trit::X));
/// assert_eq!(tv.count_x(), 1);
/// assert_eq!(tv.to_string(), "01X1");
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct TritVec {
    care: BitVec,
    value: BitVec,
}

impl TritVec {
    /// Creates an empty vector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty vector with room for `n` symbols.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        Self {
            care: BitVec::with_capacity(n),
            value: BitVec::with_capacity(n),
        }
    }

    /// Creates a vector of `len` copies of `t`.
    #[must_use]
    pub fn repeat(t: Trit, len: usize) -> Self {
        Self {
            care: BitVec::repeat(t.is_care(), len),
            value: BitVec::repeat(t == Trit::One, len),
        }
    }

    /// Number of symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.care.len()
    }

    /// `true` when no symbols are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.care.is_empty()
    }

    /// Reserves room for at least `n` more symbols.
    pub fn reserve(&mut self, n: usize) {
        self.care.reserve(n);
        self.value.reserve(n);
    }

    /// Shortens the vector to `len` symbols; no-op if already shorter.
    pub fn truncate(&mut self, len: usize) {
        self.care.truncate(len);
        self.value.truncate(len);
    }

    /// Appends one symbol.
    pub fn push(&mut self, t: Trit) {
        self.care.push(t.is_care());
        self.value.push(t == Trit::One);
    }

    /// Returns the symbol at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<Trit> {
        let care = self.care.get(index)?;
        let value = self.value.get(index).expect("planes stay in sync");
        Some(match (care, value) {
            (false, _) => Trit::X,
            (true, false) => Trit::Zero,
            (true, true) => Trit::One,
        })
    }

    /// Overwrites the symbol at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn set(&mut self, index: usize, t: Trit) {
        self.care.set(index, t.is_care());
        self.value.set(index, t == Trit::One);
    }

    /// Appends all symbols of `other` in O(len / 64) word operations.
    pub fn extend_from_tritvec(&mut self, other: &TritVec) {
        self.care.extend_from_bitvec(&other.care);
        self.value.extend_from_bitvec(&other.value);
    }

    /// Appends all symbols of a zero-copy [`TritSlice`] view in
    /// O(len / 64) word operations.
    pub fn extend_from_slice(&mut self, slice: TritSlice<'_>) {
        self.care
            .extend_from_words(slice.care_words(), slice.bit_start(), slice.len());
        self.value
            .extend_from_words(slice.value_words(), slice.bit_start(), slice.len());
    }

    /// Appends `n` copies of `t` in O(n / 64) word operations.
    pub fn push_run(&mut self, t: Trit, n: usize) {
        self.care.push_repeat(t.is_care(), n);
        self.value.push_repeat(t == Trit::One, n);
    }

    /// Number of don't-care symbols.
    #[must_use]
    pub fn count_x(&self) -> usize {
        self.care.count_zeros()
    }

    /// Number of specified symbols.
    #[must_use]
    pub fn count_care(&self) -> usize {
        self.care.count_ones()
    }

    /// Number of specified zeros (word-parallel `care & !value` popcount).
    #[must_use]
    pub fn count_zeros(&self) -> usize {
        crate::words::count_and_not(self.care.words(), self.value.words(), 0, self.len())
    }

    /// Number of specified ones (word-parallel popcount of the value
    /// plane; valid by the plane invariant).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.value.count_ones()
    }

    /// Fraction of symbols that are `X`, in `[0, 1]`; 0 for an empty vector.
    pub fn x_density(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.count_x() as f64 / self.len() as f64
        }
    }

    /// Iterates over the symbols in order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            trits: self,
            index: 0,
            back: self.len(),
        }
    }

    /// Copies the half-open range `[start, end)` into a new vector in
    /// O(len / 64) word operations.
    ///
    /// Prefer [`TritVec::slice_view`] when a borrowed, zero-copy view
    /// suffices.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    #[must_use]
    pub fn slice(&self, start: usize, end: usize) -> TritVec {
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of range"
        );
        self.slice_view(start, end).to_tritvec()
    }

    /// Zero-copy view of the half-open range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    #[must_use]
    pub fn slice_view(&self, start: usize, end: usize) -> TritSlice<'_> {
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of range"
        );
        TritSlice::from_raw(self.care.words(), self.value.words(), start, end - start)
    }

    /// Zero-copy view of the whole vector.
    #[must_use]
    pub fn as_slice(&self) -> TritSlice<'_> {
        TritSlice::from_raw(self.care.words(), self.value.words(), 0, self.len())
    }

    /// Walks the vector in `chunk`-symbol zero-copy slices (the last chunk
    /// may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks(&self, chunk: usize) -> Chunks<'_> {
        Chunks::new(self.as_slice(), chunk)
    }

    /// `true` if every symbol of `self` is [compatible] with the symbol of
    /// `other` at the same position.
    ///
    /// [compatible]: Trit::compatible_with
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn compatible_with(&self, other: &TritVec) -> bool {
        assert_eq!(
            self.len(),
            other.len(),
            "compatibility requires equal lengths"
        );
        self.iter()
            .zip(other.iter())
            .all(|(a, b)| a.compatible_with(b))
    }

    /// `true` if `self` *covers* `other`: wherever `other` has a care bit,
    /// `self` has the same care bit.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn covers(&self, other: &TritVec) -> bool {
        assert_eq!(self.len(), other.len(), "covering requires equal lengths");
        self.iter()
            .zip(other.iter())
            .all(|(a, b)| b.is_x() || a == b)
    }

    /// Converts a fully specified vector to a [`BitVec`].
    ///
    /// Returns `None` if any symbol is `X`.
    pub fn to_bitvec(&self) -> Option<BitVec> {
        if self.count_x() != 0 {
            return None;
        }
        Some(self.value_plane_masked())
    }

    /// The care plane: 1 where the symbol is specified.
    pub fn care_plane(&self) -> &BitVec {
        &self.care
    }

    fn value_plane_masked(&self) -> BitVec {
        self.iter().map(|t| t == Trit::One).collect()
    }
}

impl fmt::Display for TritVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.iter() {
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for TritVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TritVec(\"{self}\")")
    }
}

impl std::str::FromStr for TritVec {
    type Err = ParseTritError;

    fn from_str(s: &str) -> Result<Self, ParseTritError> {
        let mut v = TritVec::with_capacity(s.len());
        for c in s.chars() {
            v.push(Trit::try_from(c)?);
        }
        Ok(v)
    }
}

impl FromIterator<Trit> for TritVec {
    fn from_iter<I: IntoIterator<Item = Trit>>(iter: I) -> Self {
        let iter = iter.into_iter();
        let mut v = TritVec::with_capacity(iter.size_hint().0);
        for t in iter {
            v.push(t);
        }
        v
    }
}

impl Extend<Trit> for TritVec {
    fn extend<I: IntoIterator<Item = Trit>>(&mut self, iter: I) {
        let iter = iter.into_iter();
        self.reserve(iter.size_hint().0);
        for t in iter {
            self.push(t);
        }
    }
}

impl From<&BitVec> for TritVec {
    fn from(bits: &BitVec) -> Self {
        bits.iter().map(Trit::from).collect()
    }
}

impl<'a> IntoIterator for &'a TritVec {
    type Item = Trit;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the symbols of a [`TritVec`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    trits: &'a TritVec,
    index: usize,
    back: usize,
}

impl Iterator for Iter<'_> {
    type Item = Trit;

    fn next(&mut self) -> Option<Trit> {
        if self.index >= self.back {
            return None;
        }
        let t = self.trits.get(self.index)?;
        self.index += 1;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.back - self.index;
        (rem, Some(rem))
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<Trit> {
        if self.index >= self.back {
            return None;
        }
        self.back -= 1;
        self.trits.get(self.back)
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        let s = "01X10XX1";
        let tv: TritVec = s.parse().unwrap();
        assert_eq!(tv.to_string(), s);
        assert_eq!(tv.len(), 8);
        assert_eq!(tv.count_x(), 3);
        assert_eq!(tv.count_zeros(), 2);
        assert_eq!(tv.count_ones(), 3);
    }

    #[test]
    fn accepts_dash_and_lowercase_x() {
        let tv: TritVec = "0-x".parse().unwrap();
        assert_eq!(tv.to_string(), "0XX");
    }

    #[test]
    fn rejects_garbage() {
        let err = "012".parse::<TritVec>().unwrap_err();
        assert_eq!(err.found, '2');
    }

    #[test]
    fn set_get() {
        let mut tv = TritVec::repeat(Trit::X, 5);
        tv.set(1, Trit::One);
        tv.set(3, Trit::Zero);
        assert_eq!(tv.to_string(), "X1X0X");
        tv.set(1, Trit::X);
        assert_eq!(tv.count_x(), 4);
    }

    #[test]
    fn compatibility_and_covering() {
        let cube: TritVec = "0XX1".parse().unwrap();
        let filled: TritVec = "0101".parse().unwrap();
        assert!(filled.compatible_with(&cube));
        assert!(filled.covers(&cube));
        assert!(!cube.covers(&filled));
        let bad: TritVec = "1101".parse().unwrap();
        assert!(!bad.compatible_with(&cube));
        assert!(!bad.covers(&cube));
    }

    #[test]
    fn to_bitvec_only_when_fully_specified() {
        let tv: TritVec = "0X1".parse().unwrap();
        assert_eq!(tv.to_bitvec(), None);
        let tv: TritVec = "011".parse().unwrap();
        assert_eq!(tv.to_bitvec().unwrap().to_string(), "011");
    }

    #[test]
    fn slice_ranges() {
        let tv: TritVec = "01X10".parse().unwrap();
        assert_eq!(tv.slice(1, 4).to_string(), "1X1");
        assert_eq!(tv.slice(0, 0).len(), 0);
        assert_eq!(tv.slice(5, 5).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        let tv: TritVec = "01".parse().unwrap();
        let _ = tv.slice(1, 3);
    }

    #[test]
    fn x_density() {
        let tv: TritVec = "XX01".parse().unwrap();
        assert!((tv.x_density() - 0.5).abs() < 1e-12);
        assert_eq!(TritVec::new().x_density(), 0.0);
    }

    #[test]
    fn iter_is_double_ended() {
        let tv: TritVec = "01X1".parse().unwrap();
        let rev: TritVec = tv.iter().rev().collect();
        assert_eq!(rev.to_string(), "1X10");
        let mut it = tv.iter();
        assert_eq!(it.next(), Some(Trit::Zero));
        assert_eq!(it.next_back(), Some(Trit::One));
        assert_eq!(it.len(), 2);
        assert_eq!(it.next(), Some(Trit::One));
        assert_eq!(it.next_back(), Some(Trit::X));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    #[test]
    fn from_bitvec() {
        let bv = BitVec::from_str_radix2("101").unwrap();
        let tv = TritVec::from(&bv);
        assert_eq!(tv.to_string(), "101");
        assert_eq!(tv.count_x(), 0);
    }
}

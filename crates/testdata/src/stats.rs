//! Descriptive statistics of test sets.
//!
//! Used by the experiment harness to report the properties the generators
//! are calibrated against, and to sanity-check synthetic data against the
//! published profiles.

use crate::cube::TestSet;
use crate::trit::Trit;
use std::fmt;

/// Summary statistics of a [`TestSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct TestSetStats {
    /// Number of cubes.
    pub num_patterns: usize,
    /// Scan length.
    pub pattern_len: usize,
    /// Total symbols (`|T_D|`).
    pub total_bits: usize,
    /// Count of specified zeros.
    pub zeros: usize,
    /// Count of specified ones.
    pub ones: usize,
    /// Count of don't-cares.
    pub xs: usize,
    /// Mean length of maximal care-bit runs (0 if no care bits).
    pub mean_care_run: f64,
    /// Mean length of maximal X runs (0 if no X).
    pub mean_x_run: f64,
    /// Smallest per-pattern care fraction.
    pub min_pattern_care: f64,
    /// Largest per-pattern care fraction.
    pub max_pattern_care: f64,
}

impl TestSetStats {
    /// Computes statistics over a test set.
    ///
    /// Runs are measured within each pattern (they do not span pattern
    /// boundaries, matching how a scan chain is loaded).
    ///
    /// # Examples
    ///
    /// ```
    /// use ninec_testdata::cube::TestSet;
    /// use ninec_testdata::stats::TestSetStats;
    ///
    /// let ts = TestSet::from_patterns(6, ["00XX11", "XXXXXX"])?;
    /// let st = TestSetStats::compute(&ts);
    /// assert_eq!(st.zeros, 2);
    /// assert_eq!(st.ones, 2);
    /// assert_eq!(st.xs, 8);
    /// assert!((st.x_density() - 8.0 / 12.0).abs() < 1e-12);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn compute(set: &TestSet) -> Self {
        let mut zeros = 0usize;
        let mut ones = 0usize;
        let mut xs = 0usize;
        let mut care_runs = RunAccumulator::default();
        let mut x_runs = RunAccumulator::default();
        let mut min_care = f64::INFINITY;
        let mut max_care: f64 = 0.0;

        for cube in set.patterns() {
            let mut pattern_care = 0usize;
            let mut current: Option<(bool, usize)> = None; // (is_care, run length)
            for t in cube.iter() {
                match t {
                    Trit::Zero => zeros += 1,
                    Trit::One => ones += 1,
                    Trit::X => xs += 1,
                }
                let is_care = t.is_care();
                if is_care {
                    pattern_care += 1;
                }
                current = match current {
                    Some((kind, len)) if kind == is_care => Some((kind, len + 1)),
                    Some((kind, len)) => {
                        if kind {
                            care_runs.push(len);
                        } else {
                            x_runs.push(len);
                        }
                        Some((is_care, 1))
                    }
                    None => Some((is_care, 1)),
                };
            }
            if let Some((kind, len)) = current {
                if kind {
                    care_runs.push(len);
                } else {
                    x_runs.push(len);
                }
            }
            let frac = pattern_care as f64 / set.pattern_len() as f64;
            min_care = min_care.min(frac);
            max_care = max_care.max(frac);
        }

        if set.num_patterns() == 0 {
            min_care = 0.0;
        }
        // One histogram sample per analyzed set: the X-density the paper's
        // LX trade-off depends on, surfaced through the telemetry registry
        // (`testdata.x_density_pct`). Batched here — never in the per-symbol
        // loop — and compiled out without the `obs` feature.
        let total = zeros + ones + xs;
        if ninec_obs::runtime_enabled() && total > 0 {
            let pct = xs as f64 / total as f64 * 100.0;
            ninec_obs::histogram("testdata.x_density_pct").record(pct.round() as u64);
            ninec_obs::counter("testdata.sets_analyzed").inc();
        }
        TestSetStats {
            num_patterns: set.num_patterns(),
            pattern_len: set.pattern_len(),
            total_bits: set.total_bits(),
            zeros,
            ones,
            xs,
            mean_care_run: care_runs.mean(),
            mean_x_run: x_runs.mean(),
            min_pattern_care: min_care,
            max_pattern_care: max_care,
        }
    }

    /// Fraction of symbols that are X.
    pub fn x_density(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.xs as f64 / self.total_bits as f64
        }
    }

    /// Fraction of *care* bits that are 0 (the generator's `zero_bias`).
    pub fn zero_fraction_of_care(&self) -> f64 {
        let care = self.zeros + self.ones;
        if care == 0 {
            0.0
        } else {
            self.zeros as f64 / care as f64
        }
    }
}

impl fmt::Display for TestSetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x {} = {} bits, {:.1}% X ({} zeros / {} ones), care runs ~{:.1}, X runs ~{:.1}",
            self.num_patterns,
            self.pattern_len,
            self.total_bits,
            self.x_density() * 100.0,
            self.zeros,
            self.ones,
            self.mean_care_run,
            self.mean_x_run
        )
    }
}

#[derive(Default)]
struct RunAccumulator {
    total: usize,
    count: usize,
}

impl RunAccumulator {
    fn push(&mut self, len: usize) {
        self.total += len;
        self.count += 1;
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_runs() {
        let ts = TestSet::from_patterns(8, ["00XX11XX", "XXXXXXXX"]).unwrap();
        let st = TestSetStats::compute(&ts);
        assert_eq!(st.zeros, 2);
        assert_eq!(st.ones, 2);
        assert_eq!(st.xs, 12);
        // Care runs: "00" and "11" -> mean 2. X runs: 2, 2, 8 -> mean 4.
        assert!((st.mean_care_run - 2.0).abs() < 1e-12);
        assert!((st.mean_x_run - 4.0).abs() < 1e-12);
    }

    #[test]
    fn runs_do_not_span_patterns() {
        let ts = TestSet::from_patterns(2, ["X1", "1X"]).unwrap();
        let st = TestSetStats::compute(&ts);
        // Two separate care runs of length 1, not one of length 2.
        assert!((st.mean_care_run - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_pattern_care_range() {
        let ts = TestSet::from_patterns(4, ["0101", "XXXX"]).unwrap();
        let st = TestSetStats::compute(&ts);
        assert_eq!(st.min_pattern_care, 0.0);
        assert_eq!(st.max_pattern_care, 1.0);
    }

    #[test]
    fn zero_fraction() {
        let ts = TestSet::from_patterns(4, ["000X", "1XXX"]).unwrap();
        let st = TestSetStats::compute(&ts);
        assert!((st.zero_fraction_of_care() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn synthetic_generator_matches_its_profile() {
        use crate::gen::SyntheticProfile;
        let mut p = SyntheticProfile::new("check", 80, 300, 0.75);
        p.mean_care_run = 5.0;
        let st = TestSetStats::compute(&p.generate(2));
        assert!((st.x_density() - 0.75).abs() < 0.05);
        assert!(st.zero_fraction_of_care() > 0.55);
        assert!(st.mean_care_run > 2.0 && st.mean_care_run < 9.0);
    }
}

//! Serde support (behind the `serde` feature).
//!
//! Data types serialize in their human-readable text forms — a [`TritVec`]
//! is a `"01X"` string, a [`TestSet`] a pattern list — so JSON dumps stay
//! diffable and hand-editable.

use crate::cube::TestSet;
use crate::trit::{Trit, TritVec};
use serde::de::{Error as DeError, Unexpected};
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for Trit {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(self.to_char())
    }
}

impl<'de> Deserialize<'de> for Trit {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let c = char::deserialize(deserializer)?;
        Trit::try_from(c).map_err(|_| D::Error::invalid_value(Unexpected::Char(c), &"0, 1 or X"))
    }
}

impl Serialize for TritVec {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for TritVec {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        s.parse()
            .map_err(|_| D::Error::invalid_value(Unexpected::Str(&s), &"a string over 0/1/X"))
    }
}

#[derive(Serialize, Deserialize)]
struct TestSetRepr {
    pattern_len: usize,
    patterns: Vec<TritVec>,
}

impl Serialize for TestSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        TestSetRepr {
            pattern_len: self.pattern_len(),
            patterns: self.patterns().collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for TestSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let repr = TestSetRepr::deserialize(deserializer)?;
        let mut set = TestSet::new(repr.pattern_len.max(1));
        for (i, p) in repr.patterns.iter().enumerate() {
            set.push_pattern(p)
                .map_err(|e| D::Error::custom(format!("pattern {i}: {e}")))?;
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::SyntheticProfile;

    #[test]
    fn trit_json_roundtrip() {
        for t in [Trit::Zero, Trit::One, Trit::X] {
            let json = serde_json::to_string(&t).unwrap();
            let back: Trit = serde_json::from_str(&json).unwrap();
            assert_eq!(back, t);
        }
        assert!(serde_json::from_str::<Trit>("\"z\"").is_err());
    }

    #[test]
    fn tritvec_serializes_as_string() {
        let tv: TritVec = "01XX1".parse().unwrap();
        assert_eq!(serde_json::to_string(&tv).unwrap(), "\"01XX1\"");
        let back: TritVec = serde_json::from_str("\"01XX1\"").unwrap();
        assert_eq!(back, tv);
        assert!(serde_json::from_str::<TritVec>("\"012\"").is_err());
    }

    #[test]
    fn test_set_json_roundtrip() {
        let ts = SyntheticProfile::new("serde", 5, 24, 0.7).generate(2);
        let json = serde_json::to_string(&ts).unwrap();
        let back: TestSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, ts);
    }

    #[test]
    fn test_set_rejects_inconsistent_lengths() {
        let json = r#"{"pattern_len": 3, "patterns": ["010", "01"]}"#;
        assert!(serde_json::from_str::<TestSet>(json).is_err());
    }
}

//! Multiple-scan-chain data arrangement (paper §III-B, Figures 3 and 4).
//!
//! For reduced pin-count testing, the `L`-cell scan load of each pattern is
//! split across `m` internal scan chains of length `l = ⌈L/m⌉`. At each of
//! the `l` shift cycles the decoder's `m`-bit shifter releases one bit into
//! every chain, so the data stream the decoder consumes is the *vertical*
//! traversal: for each shift cycle, the `m` bits destined for chains
//! `1 … m`. That stream is then cut into `K`-bit blocks (`K` must divide
//! `m`) and 9C-encoded exactly like the single-chain stream.

use crate::encode::{Encoded, Encoder, InvalidBlockSize};
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// A multiple-scan-chain arrangement: `m` chains of `l` cells serving
/// patterns of `L ≤ m·l` cells.
///
/// Chain `c` holds the pattern cells `c·l .. (c+1)·l`; positions beyond `L`
/// (only in the last chain when `m ∤ L`) are padding and carry `X`.
///
/// # Examples
///
/// ```
/// use ninec::multiscan::ScanChains;
///
/// let chains = ScanChains::new(100, 8)?;
/// assert_eq!(chains.chains(), 8);
/// assert_eq!(chains.chain_len(), 13); // ceil(100 / 8)
/// assert_eq!(chains.padded_len(), 104);
/// # Ok::<(), ninec::multiscan::InvalidChainCount>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanChains {
    pattern_len: usize,
    chains: usize,
    chain_len: usize,
}

impl ScanChains {
    /// Splits `pattern_len` cells across `m` chains.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChainCount`] if `m` is 0 or exceeds `pattern_len`.
    pub fn new(pattern_len: usize, m: usize) -> Result<Self, InvalidChainCount> {
        if m == 0 || m > pattern_len {
            return Err(InvalidChainCount { m, pattern_len });
        }
        Ok(Self {
            pattern_len,
            chains: m,
            chain_len: pattern_len.div_ceil(m),
        })
    }

    /// Number of chains `m`.
    pub fn chains(&self) -> usize {
        self.chains
    }

    /// Cells per chain `l`.
    pub fn chain_len(&self) -> usize {
        self.chain_len
    }

    /// Original pattern length `L`.
    pub fn pattern_len(&self) -> usize {
        self.pattern_len
    }

    /// `m · l`, the symbols one pattern occupies in the vertical stream.
    pub fn padded_len(&self) -> usize {
        self.chains * self.chain_len
    }

    /// Rearranges one pattern into its vertical stream: for each shift
    /// cycle `j`, the bits for chains `0 … m−1` (pad cells become `X`).
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len() != self.pattern_len()`.
    pub fn vertical_pattern(&self, pattern: &TritVec) -> TritVec {
        assert_eq!(pattern.len(), self.pattern_len, "pattern length mismatch");
        let mut out = TritVec::with_capacity(self.padded_len());
        for j in 0..self.chain_len {
            for c in 0..self.chains {
                let idx = c * self.chain_len + j;
                out.push(pattern.get(idx).unwrap_or(Trit::X));
            }
        }
        out
    }

    /// Inverse of [`vertical_pattern`](Self::vertical_pattern): recovers the
    /// original pattern (dropping pad positions).
    ///
    /// # Panics
    ///
    /// Panics if `vertical.len() != self.padded_len()`.
    pub fn horizontal_pattern(&self, vertical: &TritVec) -> TritVec {
        assert_eq!(
            vertical.len(),
            self.padded_len(),
            "vertical length mismatch"
        );
        let mut out = TritVec::with_capacity(self.pattern_len);
        for idx in 0..self.pattern_len {
            let (c, j) = (idx / self.chain_len, idx % self.chain_len);
            out.push(vertical.get(j * self.chains + c).expect("length checked"));
        }
        out
    }

    /// Rearranges a whole test set into the stream the multi-scan decoder
    /// consumes (patterns in order, each vertically traversed).
    ///
    /// # Panics
    ///
    /// Panics if `set.pattern_len() != self.pattern_len()`.
    pub fn vertical_stream(&self, set: &TestSet) -> TritVec {
        assert_eq!(
            set.pattern_len(),
            self.pattern_len,
            "test set length mismatch"
        );
        let mut out = TritVec::with_capacity(set.num_patterns() * self.padded_len());
        for p in set.patterns() {
            out.extend_from_tritvec(&self.vertical_pattern(&p));
        }
        out
    }

    /// Inverse of [`vertical_stream`](Self::vertical_stream).
    ///
    /// # Panics
    ///
    /// Panics if the stream is not a whole number of vertical patterns.
    pub fn horizontal_set(&self, vertical: &TritVec) -> TestSet {
        let per = self.padded_len();
        assert_eq!(
            vertical.len() % per,
            0,
            "stream is not whole vertical patterns"
        );
        let mut ts = TestSet::new(self.pattern_len);
        for start in (0..vertical.len()).step_by(per) {
            let v = vertical.slice(start, start + per);
            ts.push_pattern(&self.horizontal_pattern(&v))
                .expect("horizontal pattern has the set's length");
        }
        ts
    }
}

/// Compresses a test set for an `m`-chain design: vertical rearrangement
/// followed by 9C at block size `k`.
///
/// # Errors
///
/// Returns [`MultiScanEncodeError`] if `k` does not divide `m`, `m` is
/// invalid for the set, or `k` itself is invalid.
///
/// # Examples
///
/// ```
/// use ninec::multiscan::encode_multiscan;
/// use ninec_testdata::gen::SyntheticProfile;
///
/// let ts = SyntheticProfile::new("ms", 10, 64, 0.8).generate(1);
/// let encoded = encode_multiscan(&ts, 16, 8)?;
/// assert!(encoded.compression_ratio() > 0.0);
/// # Ok::<(), ninec::multiscan::MultiScanEncodeError>(())
/// ```
pub fn encode_multiscan(
    set: &TestSet,
    m: usize,
    k: usize,
) -> Result<Encoded, MultiScanEncodeError> {
    if !m.is_multiple_of(k) {
        return Err(MultiScanEncodeError::BlockDoesNotDivideChains { k, m });
    }
    let chains = ScanChains::new(set.pattern_len(), m).map_err(MultiScanEncodeError::Chains)?;
    let vertical = chains.vertical_stream(set);
    let encoder = Encoder::new(k).map_err(MultiScanEncodeError::BlockSize)?;
    Ok(encoder.encode_stream(&vertical))
}

/// Error: invalid chain count for a scan configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidChainCount {
    /// Requested chain count.
    pub m: usize,
    /// Pattern length it was requested for.
    pub pattern_len: usize,
}

impl fmt::Display for InvalidChainCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain count {} invalid for pattern length {}",
            self.m, self.pattern_len
        )
    }
}

impl std::error::Error for InvalidChainCount {}

/// Error returned by [`encode_multiscan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiScanEncodeError {
    /// `K` must divide the chain count so whole blocks fill the shifter.
    BlockDoesNotDivideChains {
        /// Block size.
        k: usize,
        /// Chain count.
        m: usize,
    },
    /// Invalid chain count.
    Chains(InvalidChainCount),
    /// Invalid block size.
    BlockSize(InvalidBlockSize),
}

impl fmt::Display for MultiScanEncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiScanEncodeError::BlockDoesNotDivideChains { k, m } => {
                write!(f, "block size {k} must divide chain count {m}")
            }
            MultiScanEncodeError::Chains(e) => e.fmt(f),
            MultiScanEncodeError::BlockSize(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for MultiScanEncodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MultiScanEncodeError::Chains(e) => Some(e),
            MultiScanEncodeError::BlockSize(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_testdata::gen::SyntheticProfile;

    #[test]
    fn vertical_horizontal_roundtrip_exact_division() {
        let chains = ScanChains::new(12, 4).unwrap();
        let pattern: TritVec = "01X010XX11X0".parse().unwrap();
        let v = chains.vertical_pattern(&pattern);
        assert_eq!(v.len(), 12);
        let back = chains.horizontal_pattern(&v);
        assert_eq!(back, pattern);
    }

    #[test]
    fn vertical_order_is_chain_major_per_cycle() {
        // L = 6, m = 2, l = 3. Chain 0 = cells 0,1,2; chain 1 = cells 3,4,5.
        // Cycle j emits (cell j of chain 0, cell j of chain 1).
        let chains = ScanChains::new(6, 2).unwrap();
        let pattern: TritVec = "012345".replace(['2', '3', '4', '5'], "X").parse().unwrap();
        // pattern = 0 1 X X X X
        let v = chains.vertical_pattern(&pattern);
        // cycles: (c0[0], c1[0]) = (0, X), (c0[1], c1[1]) = (1, X), (X, X)
        assert_eq!(v.to_string(), "0X1XXX");
    }

    #[test]
    fn padding_when_chains_do_not_divide() {
        let chains = ScanChains::new(10, 4).unwrap();
        assert_eq!(chains.chain_len(), 3);
        assert_eq!(chains.padded_len(), 12);
        let pattern: TritVec = "0101010101".parse().unwrap();
        let v = chains.vertical_pattern(&pattern);
        assert_eq!(v.len(), 12);
        assert_eq!(chains.horizontal_pattern(&v), pattern);
        // Exactly two pad X's appear.
        assert_eq!(v.count_x(), 2);
    }

    #[test]
    fn set_roundtrip() {
        let ts = SyntheticProfile::new("msrt", 9, 50, 0.7).generate(4);
        let chains = ScanChains::new(50, 5).unwrap();
        let v = chains.vertical_stream(&ts);
        assert_eq!(v.len(), 9 * chains.padded_len());
        let back = chains.horizontal_set(&v);
        assert_eq!(back, ts);
    }

    #[test]
    fn encode_multiscan_roundtrips_through_decode() {
        let ts = SyntheticProfile::new("msenc", 8, 60, 0.75).generate(7);
        let enc = encode_multiscan(&ts, 12, 4).unwrap();
        let vertical = crate::session::DecodeSession::new().decode(&enc).unwrap();
        let chains = ScanChains::new(60, 12).unwrap();
        let back = chains.horizontal_set(&vertical);
        // All care bits preserved through the whole path.
        for (orig, got) in ts.patterns().zip(back.patterns()) {
            for i in 0..orig.len() {
                let o = orig.get(i).unwrap();
                if o.is_care() {
                    assert_eq!(Some(o), got.get(i));
                }
            }
        }
    }

    #[test]
    fn rejects_bad_configs() {
        let ts = SyntheticProfile::new("msbad", 4, 32, 0.5).generate(1);
        assert!(matches!(
            encode_multiscan(&ts, 12, 8),
            Err(MultiScanEncodeError::BlockDoesNotDivideChains { .. })
        ));
        assert!(matches!(
            encode_multiscan(&ts, 0, 8),
            Err(MultiScanEncodeError::Chains(_))
        ));
        assert!(matches!(
            encode_multiscan(&ts, 40, 8),
            Err(MultiScanEncodeError::Chains(_))
        ));
    }

    #[test]
    fn chain_count_validation() {
        assert!(ScanChains::new(10, 0).is_err());
        assert!(ScanChains::new(10, 11).is_err());
        assert!(ScanChains::new(10, 10).is_ok());
    }
}

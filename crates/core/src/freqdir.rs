//! Frequency-directed codeword reassignment (paper §IV, Table VII).
//!
//! Most circuits follow the paper's default frequency order — `C1` is by
//! far the most common case, then `C2`, then `C9` — but some do not (the
//! paper cites s9234 and s15850). For those, the codeword *lengths*
//! {1, 2, 4, 5, 5, 5, 5, 5, 5} can be reassigned to cases in decreasing
//! order of their measured occurrence, squeezing out a little more
//! compression with the same decoder structure.

use crate::code::{CodeTable, PAPER_LENGTHS};
use crate::encode::{EncodeStats, Encoded, Encoder, InvalidBlockSize};
use ninec_testdata::trit::TritVec;

/// Builds a code table whose shortest codewords go to the most frequent
/// cases of `stats` (ties keep the paper's case order).
///
/// # Examples
///
/// ```
/// use ninec::code::Case;
/// use ninec::encode::EncodeStats;
/// use ninec::freqdir::frequency_directed_table;
///
/// // A set where full-mismatch blocks dominate.
/// let mut stats = EncodeStats::default();
/// stats.case_counts = [10, 5, 0, 0, 0, 0, 0, 0, 99];
/// let table = frequency_directed_table(&stats);
/// assert_eq!(table.codeword(Case::MM).len(), 1);
/// assert_eq!(table.codeword(Case::ZZ).len(), 2);
/// assert_eq!(table.codeword(Case::OO).len(), 4);
/// ```
pub fn frequency_directed_table(stats: &EncodeStats) -> CodeTable {
    let mut sorted_lengths = PAPER_LENGTHS;
    sorted_lengths.sort_unstable(); // [1, 2, 4, 5, 5, 5, 5, 5, 5]
    let mut order: Vec<usize> = (0..9).collect();
    // Stable ordering: by count descending, then paper case order.
    order.sort_by_key(|&i| (std::cmp::Reverse(stats.case_counts[i]), i));
    let mut lengths = [0u8; 9];
    for (rank, &case_index) in order.iter().enumerate() {
        lengths[case_index] = sorted_lengths[rank];
    }
    CodeTable::from_lengths(&lengths).expect("a permutation of Kraft-tight lengths stays tight")
}

/// Result of the two-pass frequency-directed encoding.
#[derive(Debug, Clone, PartialEq)]
pub struct FreqDirectedOutcome {
    /// First-pass result with the paper's default table.
    pub baseline: Encoded,
    /// Second-pass result with the reassigned table.
    pub reassigned: Encoded,
}

impl FreqDirectedOutcome {
    /// Compression-ratio improvement in percentage points (positive when
    /// reassignment helped).
    pub fn improvement(&self) -> f64 {
        self.reassigned.compression_ratio() - self.baseline.compression_ratio()
    }

    /// The better of the two encodings (the paper keeps the original
    /// assignment when reassignment does not pay).
    pub fn best(&self) -> &Encoded {
        if self.reassigned.compressed_len() <= self.baseline.compressed_len() {
            &self.reassigned
        } else {
            &self.baseline
        }
    }
}

/// Encodes `stream` twice: once with the paper's table to measure case
/// frequencies, then with the frequency-directed table.
///
/// # Errors
///
/// Returns [`InvalidBlockSize`] for an invalid `k`.
pub fn encode_frequency_directed(
    k: usize,
    stream: &TritVec,
) -> Result<FreqDirectedOutcome, InvalidBlockSize> {
    let baseline = Encoder::new(k)?.encode_stream(stream);
    let table = frequency_directed_table(baseline.stats());
    let reassigned = Encoder::with_table(k, table)?.encode_stream(stream);
    Ok(FreqDirectedOutcome {
        baseline,
        reassigned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::{Case, ALL_CASES};
    use ninec_testdata::gen::SyntheticProfile;

    #[test]
    fn default_frequencies_reproduce_paper_table() {
        let stats = EncodeStats {
            case_counts: [900, 300, 10, 10, 5, 5, 5, 5, 100],
            ..Default::default()
        };
        let t = frequency_directed_table(&stats);
        assert_eq!(t.lengths(), PAPER_LENGTHS);
    }

    #[test]
    fn reassignment_never_hurts_by_recount() {
        // With the *same* block decisions, giving shorter codewords to more
        // frequent cases can only shrink the stream; re-encoding may change
        // decisions but only if cheaper. Verify on synthetic sets.
        for seed in 0..5 {
            let ts = SyntheticProfile::new("fd", 30, 160, 0.7).generate(seed);
            let out = encode_frequency_directed(8, ts.as_stream()).unwrap();
            assert!(
                out.reassigned.compressed_len() <= out.baseline.compressed_len(),
                "seed {seed}: {} > {}",
                out.reassigned.compressed_len(),
                out.baseline.compressed_len()
            );
            assert!(out.improvement() >= 0.0);
        }
    }

    #[test]
    fn reassigned_stream_still_decodes_consistently() {
        let ts = SyntheticProfile::new("fd2", 20, 128, 0.6).generate(9);
        let out = encode_frequency_directed(8, ts.as_stream()).unwrap();
        let dec = crate::session::DecodeSession::new()
            .decode(&out.reassigned)
            .unwrap();
        let src = ts.as_stream();
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), dec.get(i), "care bit {i}");
            }
        }
    }

    #[test]
    fn skewed_stats_move_the_short_codeword() {
        let mut stats = EncodeStats::default();
        stats.case_counts[Case::MM.index()] = 1000;
        stats.case_counts[Case::ZZ.index()] = 1;
        let t = frequency_directed_table(&stats);
        assert_eq!(t.codeword(Case::MM).len(), 1);
        // All other cases get strictly longer codewords.
        for case in ALL_CASES {
            if case != Case::MM {
                assert!(t.codeword(case).len() > 1, "{case}");
            }
        }
    }

    #[test]
    fn best_picks_smaller_stream() {
        let ts = SyntheticProfile::new("fd3", 15, 96, 0.8).generate(2);
        let out = encode_frequency_directed(8, ts.as_stream()).unwrap();
        assert!(out.best().compressed_len() <= out.baseline.compressed_len());
    }
}

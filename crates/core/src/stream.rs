//! Sink/source abstractions for the streaming 9C codec.
//!
//! The streaming encoder ([`crate::encode::StreamEncoder`]) writes its
//! output through a [`BitSink`] and the streaming decoder
//! ([`crate::decode::StreamDecoder`]) pulls its input from a [`BitSource`],
//! so neither endpoint forces the whole stream into memory: an encoder
//! holds at most one partial block (`< K` symbols) and a decoder holds at
//! most one codeword-plus-payload.
//!
//! Both alphabets are three-valued: 9C codewords are fully specified bits,
//! but verbatim payload keeps its don't-cares (the paper's "leftover X"),
//! so the sink consumes [`Trit`]s rather than plain bits. [`TritVec`] is
//! the canonical in-memory sink; [`BitCounter`] measures `|T_E|` without
//! buffering anything.

use ninec_testdata::slice::TritSlice;
use ninec_testdata::trit::{Trit, TritVec};

/// A consumer of an encoded (or decoded) three-valued symbol stream.
///
/// Only [`BitSink::push_trit`] is required; the bulk methods have
/// symbol-at-a-time defaults and exist so word-parallel sinks like
/// [`TritVec`] can accept runs and packed slices in `O(len / 64)`.
///
/// # Examples
///
/// ```
/// use ninec::stream::{BitCounter, BitSink};
/// use ninec_testdata::trit::{Trit, TritVec};
///
/// // TritVec is a sink: bits, runs and verbatim trits all append.
/// let mut out = TritVec::new();
/// out.push_bit(true);
/// out.push_run(Trit::Zero, 4);
/// out.push_trit(Trit::X);
/// assert_eq!(out.to_string(), "10000X");
///
/// // BitCounter sizes the same stream without storing it.
/// let mut n = BitCounter::default();
/// n.push_bit(true);
/// n.push_run(Trit::Zero, 4);
/// n.push_trit(Trit::X);
/// assert_eq!(n.bits(), 6);
/// ```
pub trait BitSink {
    /// Appends one symbol.
    fn push_trit(&mut self, t: Trit);

    /// Appends one fully specified (care) bit.
    #[inline]
    fn push_bit(&mut self, bit: bool) {
        self.push_trit(Trit::from(bit));
    }

    /// Appends `n` copies of `t`.
    #[inline]
    fn push_run(&mut self, t: Trit, n: usize) {
        for _ in 0..n {
            self.push_trit(t);
        }
    }

    /// Appends a packed slice verbatim.
    #[inline]
    fn push_slice(&mut self, slice: TritSlice<'_>) {
        for t in slice.iter() {
            self.push_trit(t);
        }
    }
}

impl BitSink for TritVec {
    #[inline]
    fn push_trit(&mut self, t: Trit) {
        self.push(t);
    }

    #[inline]
    fn push_run(&mut self, t: Trit, n: usize) {
        TritVec::push_run(self, t, n);
    }

    #[inline]
    fn push_slice(&mut self, slice: TritSlice<'_>) {
        self.extend_from_slice(slice);
    }
}

/// A [`BitSink`] that only counts symbols — sizes `|T_E|` in O(1) memory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitCounter {
    bits: u64,
}

impl BitCounter {
    /// Symbols pushed so far.
    #[must_use]
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

impl BitSink for BitCounter {
    #[inline]
    fn push_trit(&mut self, _t: Trit) {
        self.bits += 1;
    }

    #[inline]
    fn push_run(&mut self, _t: Trit, n: usize) {
        self.bits += n as u64;
    }

    #[inline]
    fn push_slice(&mut self, slice: TritSlice<'_>) {
        self.bits += slice.len() as u64;
    }
}

/// A producer of a three-valued symbol stream, pulled one symbol at a time.
///
/// Every `Iterator<Item = Trit>` is a source, so a packed stream streams
/// via [`TritSlice::iter`] and ad-hoc tests can pull from plain vectors.
///
/// # Examples
///
/// ```
/// use ninec::stream::BitSource;
/// use ninec_testdata::trit::Trit;
///
/// let mut src = vec![Trit::One, Trit::X].into_iter();
/// assert_eq!(src.next_trit(), Some(Trit::One));
/// assert_eq!(src.next_trit(), Some(Trit::X));
/// assert_eq!(src.next_trit(), None);
/// ```
pub trait BitSource {
    /// Pulls the next symbol; `None` once the stream is exhausted.
    fn next_trit(&mut self) -> Option<Trit>;
}

impl<I: Iterator<Item = Trit>> BitSource for I {
    #[inline]
    fn next_trit(&mut self) -> Option<Trit> {
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tritvec_sink_bulk_methods_match_push() {
        let payload: TritVec = "01X01X".parse().unwrap();
        let mut bulk = TritVec::new();
        bulk.push_bit(true);
        bulk.push_run(Trit::Zero, 70);
        BitSink::push_slice(&mut bulk, payload.as_slice());

        let mut scalar = TritVec::new();
        scalar.push_trit(Trit::One);
        for _ in 0..70 {
            scalar.push_trit(Trit::Zero);
        }
        for t in payload.iter() {
            scalar.push_trit(t);
        }
        assert_eq!(bulk, scalar);
    }

    #[test]
    fn counter_counts_everything() {
        let payload: TritVec = "01X".parse().unwrap();
        let mut n = BitCounter::default();
        n.push_bit(false);
        n.push_run(Trit::X, 5);
        n.push_slice(payload.as_slice());
        assert_eq!(n.bits(), 1 + 5 + 3);
    }

    #[test]
    fn iterator_is_a_source() {
        let v: TritVec = "0X1".parse().unwrap();
        let mut src = v.iter();
        assert_eq!(src.next_trit(), Some(Trit::Zero));
        assert_eq!(src.next_trit(), Some(Trit::X));
        assert_eq!(src.next_trit(), Some(Trit::One));
        assert_eq!(src.next_trit(), None);
    }
}

//! Compression-ratio and test-application-time analysis (paper §III-C, §IV).

use crate::code::{CodeTable, ALL_CASES};
use crate::encode::{EncodeStats, Encoded};
use std::fmt;

/// One row of the paper's per-circuit result tables.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionReport {
    /// Block size the row was measured at.
    pub k: usize,
    /// `|T_D|` in bits.
    pub source_bits: usize,
    /// `|T_E|` in bits.
    pub compressed_bits: usize,
    /// Compression ratio, percent.
    pub cr_percent: f64,
    /// Leftover don't-cares, percent of `|T_D|`.
    pub lx_percent: f64,
    /// Case occurrence counts `N1 … N9`.
    pub case_counts: [u64; 9],
}

impl CompressionReport {
    /// Builds a report from an encoding result.
    pub fn from_encoded(encoded: &Encoded) -> Self {
        Self {
            k: encoded.k(),
            source_bits: encoded.source_len(),
            compressed_bits: encoded.compressed_len(),
            cr_percent: encoded.compression_ratio(),
            lx_percent: encoded.leftover_x_percent(),
            case_counts: encoded.stats().case_counts,
        }
    }
}

impl fmt::Display for CompressionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "K={}: {} -> {} bits, CR {:.2}%, LX {:.2}%",
            self.k, self.source_bits, self.compressed_bits, self.cr_percent, self.lx_percent
        )
    }
}

/// Test-application-time model of the paper's Section III-C.
///
/// The ATE runs at frequency `f`; the SoC shifts its scan chain at
/// `f_scan = p·f`. Applying the *uncompressed* set costs one ATE cycle per
/// bit: `t_nocomp = |T_D| / f`. With 9C, each block costs its ATE-side bits
/// (codeword + verbatim payload, at `f`) plus `K` scan-shift cycles (at
/// `f_scan`), serialized by the Ack handshake:
///
/// `t_comp = Σ_i N_i · (size_i + K/p) / f`.
///
/// All times below are reported in ATE clock periods (`1/f` units), so `f`
/// itself never needs to be specified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TatModel {
    /// Ratio `f_scan / f` (the paper's `p`), > 0.
    pub p: f64,
}

impl TatModel {
    /// Creates a model for a given clock ratio.
    ///
    /// # Panics
    ///
    /// Panics unless `p > 0`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0, "clock ratio must be positive, got {p}");
        Self { p }
    }

    /// ATE cycles to apply the uncompressed set.
    pub fn uncompressed_cycles(&self, source_bits: usize) -> f64 {
        source_bits as f64
    }

    /// ATE cycles to apply the compressed set through the decoder.
    pub fn compressed_cycles(&self, stats: &EncodeStats, table: &CodeTable, k: usize) -> f64 {
        ALL_CASES
            .into_iter()
            .map(|c| stats.count(c) as f64 * (table.block_bits(c, k) as f64 + k as f64 / self.p))
            .sum()
    }

    /// The paper's `TAT% = (t_nocomp − t_comp) / t_nocomp · 100`.
    ///
    /// Bounded above by the compression ratio; approaches it as `p → ∞`.
    pub fn tat_percent(&self, encoded: &Encoded) -> f64 {
        let t_no = self.uncompressed_cycles(encoded.source_len());
        if t_no == 0.0 {
            return 0.0;
        }
        let t_c = self.compressed_cycles(encoded.stats(), encoded.table(), encoded.k());
        (t_no - t_c) / t_no * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use ninec_testdata::gen::SyntheticProfile;

    fn sample_encoded(k: usize) -> Encoded {
        let ts = SyntheticProfile::new("tat", 40, 200, 0.8).generate(3);
        Encoder::new(k).unwrap().encode_set(&ts)
    }

    #[test]
    fn tat_bounded_by_cr_and_monotone_in_p() {
        let e = sample_encoded(8);
        let cr = e.compression_ratio();
        let mut last = f64::NEG_INFINITY;
        for p in [1.0, 2.0, 4.0, 8.0, 16.0, 64.0] {
            let tat = TatModel::new(p).tat_percent(&e);
            assert!(tat <= cr + 1e-9, "TAT {tat} exceeds CR {cr} at p={p}");
            assert!(tat >= last, "TAT must grow with p");
            last = tat;
        }
    }

    #[test]
    fn tat_approaches_cr_for_large_p() {
        let e = sample_encoded(8);
        let tat = TatModel::new(1e9).tat_percent(&e);
        assert!((tat - e.compression_ratio()).abs() < 1e-3);
    }

    #[test]
    fn compressed_cycles_formula() {
        // One C1 block at K = 8, p = 8: 1 ATE bit + 8/8 scan-equivalent.
        let e = Encoder::new(8)
            .unwrap()
            .encode_stream(&"00000000".parse().unwrap());
        let m = TatModel::new(8.0);
        let cycles = m.compressed_cycles(e.stats(), e.table(), 8);
        assert!((cycles - 2.0).abs() < 1e-12);
        // TAT = (8 - 2) / 8 = 75%.
        assert!((m.tat_percent(&e) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn slow_scan_clock_can_make_tat_negative() {
        // p = 0.5: scanning dominates; even compressed data is slower
        // than streaming raw bits at ATE speed for mismatch-heavy data.
        let e = Encoder::new(8)
            .unwrap()
            .encode_stream(&"01X0101X".parse().unwrap());
        let tat = TatModel::new(0.5).tat_percent(&e);
        assert!(tat < 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ratio_panics() {
        let _ = TatModel::new(0.0);
    }

    #[test]
    fn report_from_encoded() {
        let e = sample_encoded(8);
        let r = CompressionReport::from_encoded(&e);
        assert_eq!(r.k, 8);
        assert_eq!(r.source_bits, 40 * 200);
        assert_eq!(r.compressed_bits, e.compressed_len());
        assert_eq!(r.case_counts.iter().sum::<u64>(), e.stats().blocks);
        assert!(r.to_string().contains("CR"));
    }
}

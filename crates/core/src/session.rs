//! The unified decode entry point: [`DecodeSession`].
//!
//! Before the session API, decoding was scattered over three free
//! functions — `decode(&Encoded)`, `decode_bits(..)` and
//! `decode_stream(..)` — each with its own parameter order. A
//! `DecodeSession` collapses them into one builder: set what you know
//! (`.k()`, `.table()`, `.source_len()`, `.threads()`), then call the
//! entry matching your input shape:
//!
//! | input | call | parameters |
//! |---|---|---|
//! | [`Encoded`] | [`decode`](DecodeSession::decode) | all defaulted from the value; overrides win |
//! | raw trit stream | [`decode_trits`](DecodeSession::decode_trits) | `k` + `source_len` required, `table` defaults to the paper's |
//! | ATE bit stream | [`decode_bits`](DecodeSession::decode_bits) | same as `decode_trits` |
//! | `9CSF` frame bytes | [`decode_frame`](DecodeSession::decode_frame) | self-describing; only `threads` applies |
//!
//! Every malformed input is a typed [`DecodeError`] — a session never
//! panics, unlike the `assert!` the pre-session `decode_stream` carried.
//! (The old free functions were removed in 0.4.0; see the README's
//! migration note.)
//!
//! For frame bytes the session can also expose the decode plan itself:
//! [`plan`](DecodeSession::plan) runs the single header/CRC scan pass
//! and [`execute_plan`](DecodeSession::execute_plan) drives any rung of
//! the strict → repair → salvage ladder against it without re-scanning.
//!
//! ```
//! use ninec::encode::Encoder;
//! use ninec::session::DecodeSession;
//! use ninec_testdata::trit::TritVec;
//!
//! let src: TritVec = "0X0X00XX1111X111".parse()?;
//! let encoded = Encoder::new(8)?.encode_stream(&src);
//! let back = DecodeSession::new().decode(&encoded)?;
//! assert_eq!(back.len(), src.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::code::CodeTable;
use crate::decode::{DecodeError, StreamDecoder};
use crate::encode::Encoded;
use crate::engine::{DecodeAudit, DecodeLimits, Engine, FramePlan, Policy, SalvageReport};
use ninec_testdata::bits::BitVec;
use ninec_testdata::trit::TritVec;

/// Builder-style decode entry point (see the module docs).
///
/// A session is cheap to build and reusable: none of the `decode_*`
/// methods consume it, so one configured session can decode many streams.
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct DecodeSession {
    k: Option<usize>,
    table: Option<CodeTable>,
    source_len: Option<usize>,
    threads: Option<usize>,
    limits: Option<DecodeLimits>,
    salvage: bool,
    repair: bool,
}

impl DecodeSession {
    /// Starts an empty session; every parameter is unset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block size `K` the stream was encoded with.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Code table the stream was encoded with (default: the paper's
    /// Table I code, or the [`Encoded`] value's own table in
    /// [`decode`](DecodeSession::decode)).
    pub fn table(mut self, table: CodeTable) -> Self {
        self.table = Some(table);
        self
    }

    /// Unpadded source length `|T_D|` to produce.
    pub fn source_len(mut self, source_len: usize) -> Self {
        self.source_len = Some(source_len);
        self
    }

    /// Worker threads for [`decode_frame`](DecodeSession::decode_frame)
    /// (default: [`crate::engine::default_threads`]). Raw streams have no
    /// segment boundaries, so the other entries are always serial.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Resource ceilings enforced while parsing `9CSF` frame bytes
    /// (default: [`DecodeLimits::default`]). Raise them for trusted
    /// oversized frames, or tighten them when the input is hostile.
    pub fn limits(mut self, limits: DecodeLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Switches [`decode_frame`](DecodeSession::decode_frame) into
    /// salvage mode: damaged segments are skipped and their span is
    /// materialized as `X` trits instead of failing the whole frame.
    ///
    /// Use [`decode_frame_salvage`](DecodeSession::decode_frame_salvage)
    /// directly when you also need the damage map.
    pub fn salvage(mut self, salvage: bool) -> Self {
        self.salvage = salvage;
        self
    }

    /// Enables the **repair rung** of the decode ladder for the
    /// salvage-mode entries: on v3 frames, parity groups first rebuild
    /// up to `r` damaged segments per group byte-exactly (GF(256)
    /// erasure decoding) before anything is erased to `X`. On v2 frames
    /// this is a no-op.
    ///
    /// Use [`decode_frame_repair`](DecodeSession::decode_frame_repair)
    /// directly when you always want the full ladder.
    pub fn repair(mut self, repair: bool) -> Self {
        self.repair = repair;
        self
    }

    /// Decodes an [`Encoded`] value. Parameters default to the value's
    /// own `k`/`table`/`source_len`; explicitly set ones win.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`]; cannot fail on unmodified encoder output
    /// decoded with its own parameters.
    pub fn decode(&self, encoded: &Encoded) -> Result<TritVec, DecodeError> {
        let k = self.k.unwrap_or_else(|| encoded.k());
        let table = self
            .table
            .clone()
            .unwrap_or_else(|| encoded.table().clone());
        let source_len = self.source_len.unwrap_or_else(|| encoded.source_len());
        decode_trits_with(encoded.stream(), k, &table, source_len)
    }

    /// Decodes a raw three-valued 9C stream. Requires
    /// [`k`](DecodeSession::k) and [`source_len`](DecodeSession::source_len);
    /// [`table`](DecodeSession::table) defaults to the paper's.
    ///
    /// # Errors
    ///
    /// [`DecodeError::MissingParameter`] when `k` or `source_len` is
    /// unset; otherwise see [`DecodeError`].
    pub fn decode_trits(&self, stream: &TritVec) -> Result<TritVec, DecodeError> {
        let k = self.k.ok_or(DecodeError::MissingParameter { what: "k" })?;
        let source_len = self
            .source_len
            .ok_or(DecodeError::MissingParameter { what: "source_len" })?;
        let table = self.table.clone().unwrap_or_else(CodeTable::paper);
        decode_trits_with(stream, k, &table, source_len)
    }

    /// Decodes a fully specified bit stream (what the ATE stores after
    /// X-fill) to the bits scanned into the chain. Same parameter rules
    /// as [`decode_trits`](DecodeSession::decode_trits).
    ///
    /// # Errors
    ///
    /// See [`decode_trits`](DecodeSession::decode_trits).
    pub fn decode_bits(&self, bits: &BitVec) -> Result<BitVec, DecodeError> {
        let trits = TritVec::from(bits);
        let out = self.decode_trits(&trits)?;
        Ok(out
            .to_bitvec()
            .expect("specified input decodes to specified output"))
    }

    /// Decodes a self-describing `9CSF` segment frame, sharding segments
    /// across [`threads`](DecodeSession::threads) workers. The frame
    /// carries its own per-segment `K`, source length and code table, so
    /// no other parameter applies.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TruncatedStream`] / [`DecodeError::Frame`] for
    /// structural problems, [`DecodeError::LimitExceeded`] when the frame
    /// asks for more than [`limits`](DecodeSession::limits) allows, plus
    /// the usual variants when a CRC-valid segment still fails 9C
    /// decoding. Never panics on hostile input.
    ///
    /// With [`salvage(true)`](DecodeSession::salvage) the call tolerates
    /// damaged segments (their span decodes as `X`) and only fails on
    /// file-level damage; the damage map is discarded — use
    /// [`decode_frame_salvage`](DecodeSession::decode_frame_salvage) to
    /// keep it.
    pub fn decode_frame(&self, bytes: &[u8]) -> Result<TritVec, DecodeError> {
        if self.salvage {
            return Ok(self.decode_frame_salvage(bytes)?.trits);
        }
        self.engine().decode_frame(bytes)
    }

    /// Decodes a `9CSF` frame in salvage mode regardless of the
    /// [`salvage`](DecodeSession::salvage) flag, returning the recovered
    /// trits *and* the damage map ([`SalvageReport`]).
    ///
    /// # Errors
    ///
    /// Only file-level damage is fatal (bad magic/version, corrupt file
    /// header, an unbuildable code table, or a file header that itself
    /// exceeds [`limits`](DecodeSession::limits)); per-segment damage is
    /// reported in [`SalvageReport::damaged`] instead.
    pub fn decode_frame_salvage(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        if self.repair {
            return self.decode_frame_repair(bytes);
        }
        self.engine().decode_frame_salvage(bytes)
    }

    /// Decodes a `9CSF` frame through the full decode ladder: damaged
    /// segments are first rebuilt byte-exactly from v3 parity groups
    /// where possible ([`crate::engine::DamageReason::RepairedBy`]
    /// entries in the report), and only what repair could not
    /// reconstruct is erased to `X`. On v2 (or parity-free) frames this
    /// is exactly [`decode_frame_salvage`](DecodeSession::decode_frame_salvage).
    ///
    /// # Errors
    ///
    /// Same file-level failures as
    /// [`decode_frame_salvage`](DecodeSession::decode_frame_salvage).
    pub fn decode_frame_repair(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        self.engine().decode_frame_repair(bytes)
    }

    /// Decodes a `9CSF` frame under a fresh flight-recorder trace and
    /// returns the [`DecodeAudit`] rollup alongside the report: one
    /// entry per segment naming the ladder rung it resolved on
    /// (strict / repaired / salvaged) plus — when tracing is compiled in
    /// and enabled — the worker that decoded it and the decode
    /// wall-clock.
    ///
    /// The ladder is driven by the session's toggles against **one**
    /// plan (a single scan pass): strict first, then
    /// [`repair`](DecodeSession::repair) or
    /// [`salvage`](DecodeSession::salvage) when enabled. The thread's
    /// trace buffer is flushed to the global recorder on every exit —
    /// success, partial salvage or error — so
    /// [`ninec_obs::take_trace`] always sees the decode's events.
    ///
    /// # Errors
    ///
    /// With both toggles off, exactly
    /// [`decode_frame`](DecodeSession::decode_frame)'s strict errors;
    /// with salvage or repair on, only file-level damage is fatal.
    pub fn decode_frame_audited(
        &self,
        bytes: &[u8],
    ) -> Result<(SalvageReport, DecodeAudit), DecodeError> {
        let trace = ninec_obs::begin_trace();
        let result = self.run_audited_ladder(bytes);
        // Flush on every exit: DecodeError included.
        ninec_obs::flush_thread_trace();
        let report = result?;
        let audit = DecodeAudit::collect(trace, &report);
        Ok((report, audit))
    }

    /// The audited ladder body: strict → repair/salvage against one plan,
    /// all under a `decode_frame` trace span.
    fn run_audited_ladder(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        let _frame_span = ninec_obs::trace_span_scope(
            "decode_frame",
            ninec_obs::NO_SEGMENT,
            ninec_obs::TracePayload::None,
        );
        let engine = self.engine();
        let plan = engine.build_plan(bytes)?;
        match engine.execute_plan(&plan, Policy::Strict) {
            Ok(report) => Ok(report),
            Err(_) if self.repair => engine.execute_plan(&plan, Policy::Repair),
            Err(_) if self.salvage => engine.execute_plan(&plan, Policy::Salvage),
            Err(e) => Err(e),
        }
    }

    /// Builds the [`FramePlan`] for a `9CSF` frame: one header/CRC scan
    /// pass classifying every segment slot, reusable by every rung of
    /// the decode ladder via [`execute_plan`](DecodeSession::execute_plan).
    ///
    /// # Errors
    ///
    /// Only file-level damage (bad magic/version, corrupt file header,
    /// or a file-level limit bomb); per-segment damage is recorded in
    /// the plan's entries instead.
    pub fn plan<'a>(&self, bytes: &'a [u8]) -> Result<FramePlan<'a>, DecodeError> {
        self.engine().build_plan(bytes)
    }

    /// Executes one ladder rung ([`Policy::Strict`], [`Policy::Repair`]
    /// or [`Policy::Salvage`]) against a plan from
    /// [`plan`](DecodeSession::plan) — no re-scan, any number of rungs
    /// against the same plan.
    ///
    /// # Errors
    ///
    /// See [`crate::engine::Engine::execute_plan`].
    pub fn execute_plan(
        &self,
        plan: &FramePlan<'_>,
        policy: Policy,
    ) -> Result<SalvageReport, DecodeError> {
        self.engine().execute_plan(plan, policy)
    }

    /// Builds the engine backing the frame entry points.
    fn engine(&self) -> Engine {
        let mut builder = Engine::builder();
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        if let Some(limits) = self.limits {
            builder = builder.limits(limits);
        }
        builder.build()
    }
}

/// Shared serial decode core for the session's non-frame entries.
fn decode_trits_with(
    stream: &TritVec,
    k: usize,
    table: &CodeTable,
    source_len: usize,
) -> Result<TritVec, DecodeError> {
    let _span = ninec_obs::span("decode_session");
    let mut out = TritVec::with_capacity(source_len);
    let dec = StreamDecoder::new(stream.as_slice().iter(), k, table.clone(), source_len)?;
    dec.run_into(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use ninec_testdata::fill::FillStrategy;

    fn sample() -> (TritVec, Encoded) {
        let src: TritVec = "0X0X01X001X0101X111111110000X111".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        (src, enc)
    }

    #[test]
    fn decode_defaults_from_the_encoded_value() {
        let (src, enc) = sample();
        let out = DecodeSession::new().decode(&enc).unwrap();
        assert_eq!(out.len(), src.len());
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), out.get(i));
            }
        }
    }

    #[test]
    fn explicit_overrides_beat_the_encoded_value() {
        let (_, enc) = sample();
        // Overriding K with a wrong-but-valid value decodes differently
        // (or errors) — proving the override actually applies.
        let with_own = DecodeSession::new().decode(&enc).unwrap();
        let with_k16 = DecodeSession::new().k(16).decode(&enc);
        assert_ne!(Ok(with_own), with_k16);
        // Overriding source_len truncates the output.
        let short = DecodeSession::new().source_len(5).decode(&enc).unwrap();
        assert_eq!(short.len(), 5);
    }

    #[test]
    fn decode_trits_requires_k_and_source_len() {
        let (_, enc) = sample();
        assert_eq!(
            DecodeSession::new()
                .source_len(enc.source_len())
                .decode_trits(enc.stream()),
            Err(DecodeError::MissingParameter { what: "k" })
        );
        assert_eq!(
            DecodeSession::new().k(8).decode_trits(enc.stream()),
            Err(DecodeError::MissingParameter { what: "source_len" })
        );
        let ok = DecodeSession::new()
            .k(8)
            .source_len(enc.source_len())
            .decode_trits(enc.stream())
            .unwrap();
        assert_eq!(ok, DecodeSession::new().decode(&enc).unwrap());
    }

    #[test]
    fn invalid_k_is_a_typed_error() {
        let (_, enc) = sample();
        assert_eq!(
            DecodeSession::new()
                .k(7)
                .source_len(enc.source_len())
                .decode_trits(enc.stream()),
            Err(DecodeError::InvalidBlockSize { k: 7 })
        );
        assert_eq!(
            DecodeSession::new().k(2).decode(&enc),
            Err(DecodeError::InvalidBlockSize { k: 2 })
        );
    }

    #[test]
    fn decode_bits_roundtrips_ate_stream() {
        let (src, enc) = sample();
        let ate = enc.to_bitvec(FillStrategy::Zero);
        let out = DecodeSession::new()
            .k(enc.k())
            .source_len(enc.source_len())
            .decode_bits(&ate)
            .unwrap();
        let out_trits = TritVec::from(&out);
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), out_trits.get(i));
            }
        }
    }

    #[test]
    fn decode_frame_is_self_describing() {
        let (src, _) = sample();
        let big: TritVec = {
            let mut v = TritVec::new();
            for _ in 0..50 {
                v.extend_from_tritvec(&src);
            }
            v
        };
        let frame = Engine::builder()
            .threads(2)
            .segment_bits(128)
            .build()
            .encode_frame(8, &big)
            .unwrap();
        // No k/table/source_len needed; threads is the only knob.
        let out = DecodeSession::new()
            .threads(2)
            .decode_frame(&frame)
            .unwrap();
        assert_eq!(out.len(), big.len());
        // Hostile bytes: typed error, no panic.
        assert!(matches!(
            DecodeSession::new().decode_frame(&frame[..frame.len() - 1]),
            Err(DecodeError::TruncatedStream { .. })
        ));
        assert!(matches!(
            DecodeSession::new().decode_frame(b"not a frame"),
            Err(DecodeError::Frame(_))
        ));
    }

    #[test]
    fn salvage_mode_tolerates_a_damaged_segment() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let mut frame = Engine::builder()
            .segment_bits(128)
            .build()
            .encode_frame(8, &big)
            .unwrap();
        // Corrupt one payload byte inside the first segment.
        frame[crate::engine::frame::HEADER_BYTES + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;

        // Strict mode fails closed...
        assert!(DecodeSession::new().decode_frame(&frame).is_err());
        // ...salvage mode recovers everything else.
        let report = DecodeSession::new().decode_frame_salvage(&frame).unwrap();
        assert_eq!(report.trits.len(), big.len());
        assert!(!report.is_full_recovery());
        assert_eq!(report.damaged.len(), 1);
        // The boolean toggle routes decode_frame through the same path.
        let out = DecodeSession::new()
            .salvage(true)
            .decode_frame(&frame)
            .unwrap();
        assert_eq!(out, report.trits);
    }

    #[test]
    fn limits_apply_to_frame_decoding() {
        let (src, _) = sample();
        let frame = Engine::builder().build().encode_frame(8, &src).unwrap();
        let tight = DecodeLimits {
            max_segment_trits: 1,
            ..DecodeLimits::default()
        };
        assert!(matches!(
            DecodeSession::new().limits(tight).decode_frame(&frame),
            Err(DecodeError::LimitExceeded { .. })
        ));
        // Unlimited still decodes fine.
        let out = DecodeSession::new()
            .limits(DecodeLimits::unlimited())
            .decode_frame(&frame)
            .unwrap();
        assert_eq!(out.len(), src.len());
    }

    #[test]
    fn repair_toggle_rebuilds_v3_damage_bit_exact() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let engine = Engine::builder().segment_bits(128).parity(4, 1).build();
        let frame = engine.encode_frame(8, &big).unwrap();
        let clean = engine.decode_frame(&frame).unwrap();
        let mut bad = frame.clone();
        bad[crate::engine::frame::HEADER_BYTES_V3 + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;
        // Plain salvage erases the damage...
        let salvaged = DecodeSession::new().decode_frame_salvage(&bad).unwrap();
        assert!(!salvaged.is_full_recovery());
        // ...repair (via the toggle or the direct entry) rebuilds it.
        for report in [
            DecodeSession::new().repair(true).decode_frame_salvage(&bad),
            DecodeSession::new().decode_frame_repair(&bad),
        ] {
            let report = report.unwrap();
            assert!(report.is_full_recovery());
            assert_eq!(report.trits, clean);
            assert_eq!(report.repaired_segments(), 1);
        }
    }

    #[test]
    fn one_session_plan_drives_every_rung() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let engine = Engine::builder().segment_bits(128).parity(4, 1).build();
        let frame = engine.encode_frame(8, &big).unwrap();
        let clean = engine.decode_frame(&frame).unwrap();
        let mut bad = frame.clone();
        bad[crate::engine::frame::HEADER_BYTES_V3 + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;

        let session = DecodeSession::new();
        let plan = session.plan(&bad).unwrap();
        // Strict fails closed on the damaged segment...
        assert!(session.execute_plan(&plan, Policy::Strict).is_err());
        // ...repair rebuilds it bit-exactly from the SAME plan...
        let repaired = session.execute_plan(&plan, Policy::Repair).unwrap();
        assert!(repaired.is_full_recovery());
        assert_eq!(repaired.trits, clean);
        // ...and salvage erases it, still from the same plan.
        let salvaged = session.execute_plan(&plan, Policy::Salvage).unwrap();
        assert!(!salvaged.is_full_recovery());
        assert_eq!(salvaged.damaged.len(), 1);
    }

    #[test]
    fn session_is_reusable() {
        let (_, enc) = sample();
        let session = DecodeSession::new();
        let a = session.decode(&enc).unwrap();
        let b = session.decode(&enc).unwrap();
        assert_eq!(a, b);
    }
}

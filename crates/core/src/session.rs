//! The unified decode entry point: [`DecodeSession`].
//!
//! Before the session API, decoding was scattered over three free
//! functions — `decode(&Encoded)`, `decode_bits(..)` and
//! `decode_stream(..)` — each with its own parameter order. A
//! `DecodeSession` collapses them into one builder: set what you know
//! (`.k()`, `.table()`, `.source_len()`, `.threads()`), then call the
//! entry matching your input shape:
//!
//! | input | call | parameters |
//! |---|---|---|
//! | [`Encoded`] | [`decode`](DecodeSession::decode) | all defaulted from the value; overrides win |
//! | raw trit stream | [`decode_trits`](DecodeSession::decode_trits) | `k` + `source_len` required, `table` defaults to the paper's |
//! | ATE bit stream | [`decode_bits`](DecodeSession::decode_bits) | same as `decode_trits` |
//! | `9CSF` frame bytes | [`decode_frame`](DecodeSession::decode_frame) | self-describing; `threads` + a [`Policy`] argument |
//!
//! Every malformed input is a typed [`DecodeError`] — a session never
//! panics, unlike the `assert!` the pre-session `decode_stream` carried.
//! (The old free functions were removed in 0.4.0; see the README's
//! migration note.)
//!
//! Frame decoding takes a [`Policy`] — the same enum the plan executor
//! uses — selecting how far down the strict → repair → salvage ladder
//! the session may go, and returns a [`DecodeOutcome`] that says what
//! actually happened (`rung`), carries the damage map when the ladder
//! advanced past strict (`report`) and, with
//! [`audit(true)`](DecodeSession::audit), the per-segment
//! [`DecodeAudit`] rollup. The pre-0.5.0 entries
//! `decode_frame_salvage` / `decode_frame_repair` /
//! `decode_frame_audited` survive as deprecated shims; see the README's
//! migration table.
//!
//! For frame bytes the session can also expose the decode plan itself:
//! [`plan`](DecodeSession::plan) runs the single header/CRC scan pass
//! and [`execute_plan`](DecodeSession::execute_plan) drives any rung of
//! the strict → repair → salvage ladder against it without re-scanning.
//!
//! ```
//! use ninec::encode::Encoder;
//! use ninec::session::DecodeSession;
//! use ninec_testdata::trit::TritVec;
//!
//! let src: TritVec = "0X0X00XX1111X111".parse()?;
//! let encoded = Encoder::new(8)?.encode_stream(&src);
//! let back = DecodeSession::new().decode(&encoded)?;
//! assert_eq!(back.len(), src.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::code::CodeTable;
use crate::decode::{DecodeError, StreamDecoder};
use crate::encode::Encoded;
use crate::engine::{DecodeAudit, DecodeLimits, Engine, FramePlan, Policy, SalvageReport};
use ninec_testdata::bits::BitVec;
use ninec_testdata::trit::TritVec;

pub use ninec_obs::RungKind;

/// What one [`DecodeSession::decode_frame`] call actually did.
///
/// One value answers the three questions the four pre-0.5.0 entry
/// points each answered differently: the recovered stream (`trits`),
/// how it was recovered (`rung`, plus `report` when the ladder advanced
/// past strict) and, when [`audit`](DecodeSession::audit) is on, the
/// per-segment timeline rollup (`audit`).
#[derive(Debug, Clone)]
pub struct DecodeOutcome {
    /// The recovered source stream.
    pub trits: TritVec,
    /// The damage map, present iff the strict rung failed and the
    /// requested [`Policy`] let the ladder advance (repair or salvage).
    /// Its own `trits` field is drained into [`DecodeOutcome::trits`] —
    /// read the stream from the outcome, the map from the report.
    pub report: Option<SalvageReport>,
    /// Per-segment ladder/worker/latency rollup, present iff the session
    /// was built with [`audit(true)`](DecodeSession::audit).
    pub audit: Option<DecodeAudit>,
    /// The ladder rung that produced `trits`: [`RungKind::Strict`] when
    /// every segment decoded clean, [`RungKind::Repaired`] when parity
    /// rebuilt every damaged segment byte-exactly, [`RungKind::Salvaged`]
    /// when something was erased to `X` (lossy recovery).
    pub rung: RungKind,
}

impl DecodeOutcome {
    /// `true` when every source trit was recovered exactly (strict or
    /// fully repaired — nothing was erased to `X`).
    #[must_use]
    pub fn is_lossless(&self) -> bool {
        self.rung != RungKind::Salvaged
    }
}

/// Builder-style decode entry point (see the module docs).
///
/// A session is cheap to build and reusable: none of the `decode_*`
/// methods consume it, so one configured session can decode many streams.
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct DecodeSession {
    k: Option<usize>,
    table: Option<CodeTable>,
    source_len: Option<usize>,
    threads: Option<usize>,
    limits: Option<DecodeLimits>,
    salvage: bool,
    repair: bool,
    audit: bool,
    cancel: Option<crate::CancelToken>,
}

impl DecodeSession {
    /// Starts an empty session; every parameter is unset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block size `K` the stream was encoded with.
    pub fn k(mut self, k: usize) -> Self {
        self.k = Some(k);
        self
    }

    /// Code table the stream was encoded with (default: the paper's
    /// Table I code, or the [`Encoded`] value's own table in
    /// [`decode`](DecodeSession::decode)).
    pub fn table(mut self, table: CodeTable) -> Self {
        self.table = Some(table);
        self
    }

    /// Unpadded source length `|T_D|` to produce.
    pub fn source_len(mut self, source_len: usize) -> Self {
        self.source_len = Some(source_len);
        self
    }

    /// Worker threads for [`decode_frame`](DecodeSession::decode_frame)
    /// (default: [`crate::engine::default_threads`]). Raw streams have no
    /// segment boundaries, so the other entries are always serial.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Resource ceilings enforced while parsing `9CSF` frame bytes
    /// (default: [`DecodeLimits::default`]). Raise them for trusted
    /// oversized frames, or tighten them when the input is hostile.
    pub fn limits(mut self, limits: DecodeLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Pre-0.5.0 salvage-mode toggle for the deprecated frame entries.
    /// The unified [`decode_frame`](DecodeSession::decode_frame) takes
    /// the ladder ceiling as its [`Policy`] argument instead.
    #[deprecated(
        since = "0.5.0",
        note = "pass Policy::Salvage to decode_frame(bytes, policy) instead"
    )]
    pub fn salvage(mut self, salvage: bool) -> Self {
        self.salvage = salvage;
        self
    }

    /// Pre-0.5.0 repair-rung toggle for the deprecated frame entries.
    /// The unified [`decode_frame`](DecodeSession::decode_frame) takes
    /// the ladder ceiling as its [`Policy`] argument instead.
    #[deprecated(
        since = "0.5.0",
        note = "pass Policy::Repair to decode_frame(bytes, policy) instead"
    )]
    pub fn repair(mut self, repair: bool) -> Self {
        self.repair = repair;
        self
    }

    /// Makes [`decode_frame`](DecodeSession::decode_frame) run under a
    /// fresh flight-recorder trace and attach the [`DecodeAudit`] rollup
    /// to the outcome: one entry per segment naming the ladder rung it
    /// resolved on plus — when tracing is compiled in and enabled — the
    /// worker that decoded it and the decode wall-clock. The thread's
    /// trace buffer is flushed to the global recorder on every exit, so
    /// [`ninec_obs::take_trace`] always sees the decode's events.
    pub fn audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Cooperative cancellation for the frame entry points: workers
    /// check `token` between segments, so tripping it (explicitly or by
    /// deadline) aborts the remaining work — strict mode fails typed
    /// ([`DecodeError::Cancelled`] / [`DecodeError::DeadlineExceeded`]),
    /// repair/salvage answer with a partial report whose abandoned
    /// segments are erased as
    /// [`DamageReason::Cancelled`](crate::DamageReason::Cancelled).
    /// `ninec-serve` clones a tenant's session and attaches a
    /// per-request token here.
    pub fn cancel_token(mut self, token: crate::CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Decodes an [`Encoded`] value. Parameters default to the value's
    /// own `k`/`table`/`source_len`; explicitly set ones win.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`]; cannot fail on unmodified encoder output
    /// decoded with its own parameters.
    pub fn decode(&self, encoded: &Encoded) -> Result<TritVec, DecodeError> {
        let k = self.k.unwrap_or_else(|| encoded.k());
        let table = self
            .table
            .clone()
            .unwrap_or_else(|| encoded.table().clone());
        let source_len = self.source_len.unwrap_or_else(|| encoded.source_len());
        decode_trits_with(encoded.stream(), k, &table, source_len)
    }

    /// Decodes a raw three-valued 9C stream. Requires
    /// [`k`](DecodeSession::k) and [`source_len`](DecodeSession::source_len);
    /// [`table`](DecodeSession::table) defaults to the paper's.
    ///
    /// # Errors
    ///
    /// [`DecodeError::MissingParameter`] when `k` or `source_len` is
    /// unset; otherwise see [`DecodeError`].
    pub fn decode_trits(&self, stream: &TritVec) -> Result<TritVec, DecodeError> {
        let k = self.k.ok_or(DecodeError::MissingParameter { what: "k" })?;
        let source_len = self
            .source_len
            .ok_or(DecodeError::MissingParameter { what: "source_len" })?;
        let table = self.table.clone().unwrap_or_else(CodeTable::paper);
        decode_trits_with(stream, k, &table, source_len)
    }

    /// Decodes a fully specified bit stream (what the ATE stores after
    /// X-fill) to the bits scanned into the chain. Same parameter rules
    /// as [`decode_trits`](DecodeSession::decode_trits).
    ///
    /// # Errors
    ///
    /// See [`decode_trits`](DecodeSession::decode_trits).
    pub fn decode_bits(&self, bits: &BitVec) -> Result<BitVec, DecodeError> {
        let trits = TritVec::from(bits);
        let out = self.decode_trits(&trits)?;
        Ok(out
            .to_bitvec()
            .expect("specified input decodes to specified output"))
    }

    /// Decodes a self-describing `9CSF` segment frame, sharding segments
    /// across [`threads`](DecodeSession::threads) workers. The frame
    /// carries its own per-segment `K`, source length and code table, so
    /// `threads`, `limits` and the `policy` argument are the only knobs.
    ///
    /// `policy` is the ladder ceiling — how far past a strict failure
    /// the session may go, driven against **one** [`FramePlan`] (a
    /// single header/CRC scan pass):
    ///
    /// - [`Policy::Strict`] — fail closed on any damaged segment;
    /// - [`Policy::Repair`] — rebuild damage byte-exactly from v3 parity
    ///   groups first, erase to `X` only what parity cannot reach;
    /// - [`Policy::Salvage`] — skip parity, erase damaged spans to `X`.
    ///
    /// The outcome's [`rung`](DecodeOutcome::rung) reports what actually
    /// happened (a clean frame resolves as `Strict` under every policy),
    /// and [`report`](DecodeOutcome::report) carries the damage map
    /// whenever the ladder advanced past strict.
    ///
    /// # Errors
    ///
    /// Under [`Policy::Strict`]: [`DecodeError::TruncatedStream`] /
    /// [`DecodeError::Frame`] for structural problems,
    /// [`DecodeError::LimitExceeded`] when the frame asks for more than
    /// [`limits`](DecodeSession::limits) allows, plus the usual variants
    /// when a CRC-valid segment still fails 9C decoding. Under
    /// [`Policy::Repair`] / [`Policy::Salvage`] only file-level damage
    /// is fatal (bad magic/version, corrupt file header, an unbuildable
    /// code table, or a file header that itself exceeds the limits);
    /// per-segment damage lands in the outcome's report instead. Never
    /// panics on hostile input.
    pub fn decode_frame(&self, bytes: &[u8], policy: Policy) -> Result<DecodeOutcome, DecodeError> {
        if self.audit {
            let trace = ninec_obs::begin_trace();
            let result = {
                // Same span shape as the pre-0.5.0 audited entry: the
                // whole ladder under one `decode_frame` span.
                let _frame_span = ninec_obs::trace_span_scope(
                    "decode_frame",
                    ninec_obs::NO_SEGMENT,
                    ninec_obs::TracePayload::None,
                );
                self.run_ladder(bytes, policy)
            };
            // Flush on every exit: DecodeError included.
            ninec_obs::flush_thread_trace();
            let (report, advanced) = result?;
            let audit = DecodeAudit::collect(trace, &report);
            Ok(Self::outcome(report, advanced, Some(audit)))
        } else {
            let (report, advanced) = self.run_ladder(bytes, policy)?;
            Ok(Self::outcome(report, advanced, None))
        }
    }

    /// The ladder body: strict first, then the requested rung, both
    /// against one plan. Returns the report and whether the ladder
    /// advanced past strict.
    fn run_ladder(
        &self,
        bytes: &[u8],
        policy: Policy,
    ) -> Result<(SalvageReport, bool), DecodeError> {
        let engine = self.engine();
        let plan = engine.build_plan(bytes)?;
        match engine.execute_plan(&plan, Policy::Strict) {
            Ok(report) => Ok((report, false)),
            Err(e) => match policy {
                Policy::Strict => Err(e),
                _ => engine.execute_plan(&plan, policy).map(|r| (r, true)),
            },
        }
    }

    /// Assembles a [`DecodeOutcome`], draining the report's trits and
    /// deriving the frame-level rung from the damage map.
    fn outcome(
        mut report: SalvageReport,
        advanced: bool,
        audit: Option<DecodeAudit>,
    ) -> DecodeOutcome {
        let rung = if !report.is_full_recovery() {
            RungKind::Salvaged
        } else if report.repaired_segments() > 0 {
            RungKind::Repaired
        } else {
            RungKind::Strict
        };
        let trits = std::mem::take(&mut report.trits);
        DecodeOutcome {
            trits,
            report: advanced.then_some(report),
            audit,
            rung,
        }
    }

    /// Pre-0.5.0 salvage entry. Equivalent to
    /// [`decode_frame(bytes, Policy::Salvage)`](DecodeSession::decode_frame)
    /// — or `Policy::Repair` when the deprecated `repair` toggle is set —
    /// except the returned report keeps its own `trits`.
    #[deprecated(
        since = "0.5.0",
        note = "use decode_frame(bytes, Policy::Salvage) and read the outcome's report"
    )]
    pub fn decode_frame_salvage(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        if self.repair {
            return self.engine().decode_frame_repair(bytes);
        }
        self.engine().decode_frame_salvage(bytes)
    }

    /// Pre-0.5.0 full-ladder entry. Equivalent to
    /// [`decode_frame(bytes, Policy::Repair)`](DecodeSession::decode_frame)
    /// except the returned report keeps its own `trits`.
    #[deprecated(
        since = "0.5.0",
        note = "use decode_frame(bytes, Policy::Repair) and read the outcome's report"
    )]
    pub fn decode_frame_repair(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        self.engine().decode_frame_repair(bytes)
    }

    /// Pre-0.5.0 audited entry. Equivalent to
    /// [`decode_frame`](DecodeSession::decode_frame) on a session built
    /// with [`audit(true)`](DecodeSession::audit), with the ladder
    /// ceiling taken from the deprecated `repair`/`salvage` toggles.
    #[deprecated(
        since = "0.5.0",
        note = "use audit(true).decode_frame(bytes, policy) and read the outcome's audit"
    )]
    pub fn decode_frame_audited(
        &self,
        bytes: &[u8],
    ) -> Result<(SalvageReport, DecodeAudit), DecodeError> {
        let trace = ninec_obs::begin_trace();
        let result = {
            let _frame_span = ninec_obs::trace_span_scope(
                "decode_frame",
                ninec_obs::NO_SEGMENT,
                ninec_obs::TracePayload::None,
            );
            let engine = self.engine();
            engine.build_plan(bytes).and_then(|plan| {
                match engine.execute_plan(&plan, Policy::Strict) {
                    Ok(report) => Ok(report),
                    Err(_) if self.repair => engine.execute_plan(&plan, Policy::Repair),
                    Err(_) if self.salvage => engine.execute_plan(&plan, Policy::Salvage),
                    Err(e) => Err(e),
                }
            })
        };
        // Flush on every exit: DecodeError included.
        ninec_obs::flush_thread_trace();
        let report = result?;
        let audit = DecodeAudit::collect(trace, &report);
        Ok((report, audit))
    }

    /// Builds the [`FramePlan`] for a `9CSF` frame: one header/CRC scan
    /// pass classifying every segment slot, reusable by every rung of
    /// the decode ladder via [`execute_plan`](DecodeSession::execute_plan).
    ///
    /// # Errors
    ///
    /// Only file-level damage (bad magic/version, corrupt file header,
    /// or a file-level limit bomb); per-segment damage is recorded in
    /// the plan's entries instead.
    pub fn plan<'a>(&self, bytes: &'a [u8]) -> Result<FramePlan<'a>, DecodeError> {
        self.engine().build_plan(bytes)
    }

    /// Executes one ladder rung ([`Policy::Strict`], [`Policy::Repair`]
    /// or [`Policy::Salvage`]) against a plan from
    /// [`plan`](DecodeSession::plan) — no re-scan, any number of rungs
    /// against the same plan.
    ///
    /// # Errors
    ///
    /// See [`crate::engine::Engine::execute_plan`].
    pub fn execute_plan(
        &self,
        plan: &FramePlan<'_>,
        policy: Policy,
    ) -> Result<SalvageReport, DecodeError> {
        self.engine().execute_plan(plan, policy)
    }

    /// Builds the engine backing the frame entry points.
    fn engine(&self) -> Engine {
        let mut builder = Engine::builder();
        if let Some(threads) = self.threads {
            builder = builder.threads(threads);
        }
        if let Some(limits) = self.limits {
            builder = builder.limits(limits);
        }
        if let Some(token) = &self.cancel {
            builder = builder.cancel_token(token.clone());
        }
        builder.build()
    }
}

/// Shared serial decode core for the session's non-frame entries.
fn decode_trits_with(
    stream: &TritVec,
    k: usize,
    table: &CodeTable,
    source_len: usize,
) -> Result<TritVec, DecodeError> {
    let _span = ninec_obs::span("decode_session");
    let mut out = TritVec::with_capacity(source_len);
    let dec = StreamDecoder::new(stream.as_slice().iter(), k, table.clone(), source_len)?;
    dec.run_into(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use ninec_testdata::fill::FillStrategy;

    fn sample() -> (TritVec, Encoded) {
        let src: TritVec = "0X0X01X001X0101X111111110000X111".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        (src, enc)
    }

    #[test]
    fn decode_defaults_from_the_encoded_value() {
        let (src, enc) = sample();
        let out = DecodeSession::new().decode(&enc).unwrap();
        assert_eq!(out.len(), src.len());
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), out.get(i));
            }
        }
    }

    #[test]
    fn explicit_overrides_beat_the_encoded_value() {
        let (_, enc) = sample();
        // Overriding K with a wrong-but-valid value decodes differently
        // (or errors) — proving the override actually applies.
        let with_own = DecodeSession::new().decode(&enc).unwrap();
        let with_k16 = DecodeSession::new().k(16).decode(&enc);
        assert_ne!(Ok(with_own), with_k16);
        // Overriding source_len truncates the output.
        let short = DecodeSession::new().source_len(5).decode(&enc).unwrap();
        assert_eq!(short.len(), 5);
    }

    #[test]
    fn decode_trits_requires_k_and_source_len() {
        let (_, enc) = sample();
        assert_eq!(
            DecodeSession::new()
                .source_len(enc.source_len())
                .decode_trits(enc.stream()),
            Err(DecodeError::MissingParameter { what: "k" })
        );
        assert_eq!(
            DecodeSession::new().k(8).decode_trits(enc.stream()),
            Err(DecodeError::MissingParameter { what: "source_len" })
        );
        let ok = DecodeSession::new()
            .k(8)
            .source_len(enc.source_len())
            .decode_trits(enc.stream())
            .unwrap();
        assert_eq!(ok, DecodeSession::new().decode(&enc).unwrap());
    }

    #[test]
    fn invalid_k_is_a_typed_error() {
        let (_, enc) = sample();
        assert_eq!(
            DecodeSession::new()
                .k(7)
                .source_len(enc.source_len())
                .decode_trits(enc.stream()),
            Err(DecodeError::InvalidBlockSize { k: 7 })
        );
        assert_eq!(
            DecodeSession::new().k(2).decode(&enc),
            Err(DecodeError::InvalidBlockSize { k: 2 })
        );
    }

    #[test]
    fn decode_bits_roundtrips_ate_stream() {
        let (src, enc) = sample();
        let ate = enc.to_bitvec(FillStrategy::Zero);
        let out = DecodeSession::new()
            .k(enc.k())
            .source_len(enc.source_len())
            .decode_bits(&ate)
            .unwrap();
        let out_trits = TritVec::from(&out);
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), out_trits.get(i));
            }
        }
    }

    #[test]
    fn decode_frame_is_self_describing() {
        let (src, _) = sample();
        let big: TritVec = {
            let mut v = TritVec::new();
            for _ in 0..50 {
                v.extend_from_tritvec(&src);
            }
            v
        };
        let frame = Engine::builder()
            .threads(2)
            .segment_bits(128)
            .build()
            .encode_frame(8, &big)
            .unwrap();
        // No k/table/source_len needed; threads + policy are the knobs.
        let out = DecodeSession::new()
            .threads(2)
            .decode_frame(&frame, Policy::Strict)
            .unwrap();
        assert_eq!(out.trits.len(), big.len());
        // A clean frame resolves on the strict rung: no report, no audit.
        assert_eq!(out.rung, RungKind::Strict);
        assert!(out.is_lossless());
        assert!(out.report.is_none());
        assert!(out.audit.is_none());
        // Hostile bytes: typed error, no panic.
        assert!(matches!(
            DecodeSession::new().decode_frame(&frame[..frame.len() - 1], Policy::Strict),
            Err(DecodeError::TruncatedStream { .. })
        ));
        assert!(matches!(
            DecodeSession::new().decode_frame(b"not a frame", Policy::Strict),
            Err(DecodeError::Frame(_))
        ));
    }

    #[test]
    fn a_tripped_cancel_token_fails_strict_typed_and_salvage_partial() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let frame = Engine::builder()
            .segment_bits(128)
            .build()
            .encode_frame(8, &big)
            .unwrap();

        // Pre-tripped explicit cancel: strict fails typed.
        let token = crate::CancelToken::new();
        token.cancel();
        let err = DecodeSession::new()
            .cancel_token(token.clone())
            .decode_frame(&frame, Policy::Strict)
            .expect_err("strict refuses a cancelled decode");
        assert_eq!(err, DecodeError::Cancelled);

        // Salvage under the same token answers partially: every segment
        // erased as Cancelled, full length preserved.
        let out = DecodeSession::new()
            .cancel_token(token)
            .decode_frame(&frame, Policy::Salvage)
            .unwrap();
        assert_eq!(out.trits.len(), big.len());
        assert!(!out.is_lossless());
        let report = out.report.expect("salvage produced a report");
        assert!(!report.damaged.is_empty());
        assert!(report
            .damaged
            .iter()
            .all(|d| d.reason == crate::DamageReason::Cancelled));

        // An expired deadline surfaces as the deadline-typed error.
        let expired = crate::CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let err = DecodeSession::new()
            .cancel_token(expired)
            .decode_frame(&frame, Policy::Strict)
            .expect_err("strict refuses an expired deadline");
        assert_eq!(err, DecodeError::DeadlineExceeded);

        // A live token changes nothing.
        let live = crate::CancelToken::after(std::time::Duration::from_secs(3600));
        let out = DecodeSession::new()
            .cancel_token(live)
            .decode_frame(&frame, Policy::Strict)
            .unwrap();
        assert_eq!(out.trits.len(), big.len());
        assert!(out.is_lossless());
    }

    #[test]
    fn salvage_policy_tolerates_a_damaged_segment() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let mut frame = Engine::builder()
            .segment_bits(128)
            .build()
            .encode_frame(8, &big)
            .unwrap();
        // Corrupt one payload byte inside the first segment.
        frame[crate::engine::frame::HEADER_BYTES + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;

        // Strict policy fails closed...
        assert!(DecodeSession::new()
            .decode_frame(&frame, Policy::Strict)
            .is_err());
        // ...salvage policy recovers everything else and says so.
        let out = DecodeSession::new()
            .decode_frame(&frame, Policy::Salvage)
            .unwrap();
        assert_eq!(out.trits.len(), big.len());
        assert_eq!(out.rung, RungKind::Salvaged);
        assert!(!out.is_lossless());
        let report = out.report.expect("ladder advanced past strict");
        assert_eq!(report.damaged.len(), 1);
        assert!(!report.is_full_recovery());
        // The report's own trits are drained into the outcome.
        assert!(report.trits.is_empty());
    }

    #[test]
    fn limits_apply_to_frame_decoding() {
        let (src, _) = sample();
        let frame = Engine::builder().build().encode_frame(8, &src).unwrap();
        let tight = DecodeLimits {
            max_segment_trits: 1,
            ..DecodeLimits::default()
        };
        assert!(matches!(
            DecodeSession::new()
                .limits(tight)
                .decode_frame(&frame, Policy::Strict),
            Err(DecodeError::LimitExceeded { .. })
        ));
        // Unlimited still decodes fine.
        let out = DecodeSession::new()
            .limits(DecodeLimits::unlimited())
            .decode_frame(&frame, Policy::Strict)
            .unwrap();
        assert_eq!(out.trits.len(), src.len());
    }

    #[test]
    fn repair_policy_rebuilds_v3_damage_bit_exact() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let engine = Engine::builder().segment_bits(128).parity(4, 1).build();
        let frame = engine.encode_frame(8, &big).unwrap();
        let clean = engine.decode_frame(&frame).unwrap();
        let mut bad = frame.clone();
        bad[crate::engine::frame::HEADER_BYTES_V3 + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;
        // Salvage policy erases the damage...
        let salvaged = DecodeSession::new()
            .decode_frame(&bad, Policy::Salvage)
            .unwrap();
        assert_eq!(salvaged.rung, RungKind::Salvaged);
        // ...repair policy rebuilds it bit-exactly.
        let out = DecodeSession::new()
            .decode_frame(&bad, Policy::Repair)
            .unwrap();
        assert_eq!(out.rung, RungKind::Repaired);
        assert!(out.is_lossless());
        assert_eq!(out.trits, clean);
        let report = out.report.expect("ladder advanced past strict");
        assert!(report.is_full_recovery());
        assert_eq!(report.repaired_segments(), 1);
    }

    #[test]
    fn audit_toggle_attaches_the_per_segment_rollup() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let engine = Engine::builder().segment_bits(128).parity(4, 1).build();
        let frame = engine.encode_frame(8, &big).unwrap();
        let mut bad = frame.clone();
        bad[crate::engine::frame::HEADER_BYTES_V3 + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;
        let out = DecodeSession::new()
            .threads(1)
            .audit(true)
            .decode_frame(&bad, Policy::Repair)
            .unwrap();
        assert_eq!(out.rung, RungKind::Repaired);
        let audit = out.audit.expect("audit(true) attaches the rollup");
        let report = out.report.expect("ladder advanced past strict");
        assert_eq!(audit.segments.len(), report.total_segments);
        assert!(audit
            .segments
            .iter()
            .any(|s| matches!(s.rung, crate::engine::SegmentRung::Repaired { .. })));
        // Without the toggle the outcome stays lean.
        let lean = DecodeSession::new()
            .decode_frame(&frame, Policy::Repair)
            .unwrap();
        assert!(lean.audit.is_none());
    }

    #[test]
    fn one_session_plan_drives_every_rung() {
        let (src, _) = sample();
        let mut big = TritVec::new();
        for _ in 0..50 {
            big.extend_from_tritvec(&src);
        }
        let engine = Engine::builder().segment_bits(128).parity(4, 1).build();
        let frame = engine.encode_frame(8, &big).unwrap();
        let clean = engine.decode_frame(&frame).unwrap();
        let mut bad = frame.clone();
        bad[crate::engine::frame::HEADER_BYTES_V3 + crate::engine::frame::SEGMENT_HEADER_BYTES] ^=
            0x55;

        let session = DecodeSession::new();
        let plan = session.plan(&bad).unwrap();
        // Strict fails closed on the damaged segment...
        assert!(session.execute_plan(&plan, Policy::Strict).is_err());
        // ...repair rebuilds it bit-exactly from the SAME plan...
        let repaired = session.execute_plan(&plan, Policy::Repair).unwrap();
        assert!(repaired.is_full_recovery());
        assert_eq!(repaired.trits, clean);
        // ...and salvage erases it, still from the same plan.
        let salvaged = session.execute_plan(&plan, Policy::Salvage).unwrap();
        assert!(!salvaged.is_full_recovery());
        assert_eq!(salvaged.damaged.len(), 1);
    }

    #[test]
    fn session_is_reusable() {
        let (_, enc) = sample();
        let session = DecodeSession::new();
        let a = session.decode(&enc).unwrap();
        let b = session.decode(&enc).unwrap();
        assert_eq!(a, b);
    }
}

//! The 9C software (reference) decoder.
//!
//! The on-chip decoder is modeled cycle-accurately in `ninec-decompressor`;
//! this module is the behavioural reference both are checked against.

use crate::code::{CodeTable, HalfSpec};
use crate::encode::InvalidBlockSize;
use crate::engine::frame::FrameError;
use crate::stream::{BitSink, BitSource};
use ninec_testdata::trit::Trit;
use std::fmt;

/// Error returned when a compressed stream cannot be decoded.
///
/// Every malformed input — including an invalid block size, which older
/// releases rejected with an `assert!` — is reported as a typed variant:
/// library callers never abort.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// No codeword matches at the given bit offset (truncated or corrupt
    /// stream).
    BadCodeword {
        /// Bit offset where matching failed.
        offset: usize,
    },
    /// A don't-care appeared inside a codeword (codewords must be fully
    /// specified).
    XInCodeword {
        /// Bit offset of the offending symbol.
        offset: usize,
    },
    /// The stream ended in the middle of a verbatim payload.
    TruncatedPayload {
        /// Bit offset where the payload started.
        offset: usize,
    },
    /// Decoding produced fewer symbols than `source_len` requires.
    TooShort {
        /// Symbols produced.
        produced: usize,
        /// Symbols required.
        required: usize,
    },
    /// The requested block size is not even and at least 4. (Replaces the
    /// pre-session `assert!` in `decode_stream`.)
    InvalidBlockSize {
        /// The rejected block size.
        k: usize,
    },
    /// A framed (`9CSF`) byte stream ended before the promised structure
    /// was complete.
    TruncatedStream {
        /// Byte offset at which more data was required.
        offset: usize,
    },
    /// A framed (`9CSF`) byte stream is structurally invalid (bad magic,
    /// bad CRC, unsupported version, bad table, malformed segment).
    Frame(FrameError),
    /// A [`DecodeSession`](crate::session::DecodeSession) was asked to
    /// decode without a required parameter.
    MissingParameter {
        /// Which builder parameter was missing (`"k"` / `"source_len"`).
        what: &'static str,
    },
    /// A frame's header-claimed sizes exceed the configured
    /// [`DecodeLimits`](crate::engine::DecodeLimits) — rejected *before*
    /// any allocation (decompression-bomb guard).
    LimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The size the frame claimed.
        requested: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The pool worker decoding one segment panicked; the panic was
    /// caught at the task boundary and every other segment completed.
    /// (In salvage mode this becomes a damage-map entry instead.)
    WorkerPanicked {
        /// Zero-based index of the segment whose worker panicked.
        segment: usize,
    },
    /// The caller's [`CancelToken`](crate::CancelToken) was cancelled
    /// before the decode finished; remaining segment jobs were abandoned
    /// between segments. (In salvage mode this becomes a damage-map
    /// entry instead.)
    Cancelled,
    /// The caller's [`CancelToken`](crate::CancelToken) deadline passed
    /// before the decode finished; remaining segment jobs were abandoned
    /// between segments. (In salvage mode this becomes a damage-map
    /// entry instead.)
    DeadlineExceeded,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadCodeword { offset } => {
                write!(f, "no codeword matches at bit offset {offset}")
            }
            DecodeError::XInCodeword { offset } => {
                write!(f, "don't-care inside a codeword at bit offset {offset}")
            }
            DecodeError::TruncatedPayload { offset } => {
                write!(
                    f,
                    "stream ends inside the payload starting at bit offset {offset}"
                )
            }
            DecodeError::TooShort { produced, required } => {
                write!(f, "decoded {produced} symbols but {required} were required")
            }
            DecodeError::InvalidBlockSize { k } => {
                write!(f, "block size must be even and at least 4, got {k}")
            }
            DecodeError::TruncatedStream { offset } => {
                write!(f, "framed stream truncated at byte offset {offset}")
            }
            DecodeError::Frame(e) => write!(f, "invalid segment frame: {e}"),
            DecodeError::MissingParameter { what } => {
                write!(f, "decode session is missing the `{what}` parameter")
            }
            DecodeError::LimitExceeded {
                what,
                requested,
                limit,
            } => {
                write!(
                    f,
                    "decode limit exceeded: {what} {requested} > limit {limit}"
                )
            }
            DecodeError::WorkerPanicked { segment } => {
                write!(f, "decode worker panicked on segment {segment}")
            }
            DecodeError::Cancelled => write!(f, "decode cancelled by caller"),
            DecodeError::DeadlineExceeded => write!(f, "decode deadline exceeded"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InvalidBlockSize> for DecodeError {
    fn from(e: InvalidBlockSize) -> Self {
        DecodeError::InvalidBlockSize { k: e.k }
    }
}

/// A streaming 9C decoder pulling codewords and payload from a
/// [`BitSource`] and emitting decoded symbols into any [`BitSink`], one
/// block per step — memory stays `O(K)` regardless of stream length.
///
/// Produces exactly `source_len` symbols in total: pad symbols the encoder
/// appended to fill its final block are consumed from the source but never
/// emitted.
///
/// # Examples
///
/// ```
/// use ninec::code::CodeTable;
/// use ninec::decode::StreamDecoder;
/// use ninec_testdata::trit::TritVec;
///
/// // C1 ("0") then C5 ("11100") with payload "01X0", at K = 8.
/// let te: TritVec = "01110001X0".parse()?;
/// let mut dec = StreamDecoder::new(te.as_slice().iter(), 8, CodeTable::paper(), 16)?;
/// let mut out = TritVec::new();
/// while dec.decode_block_into(&mut out)? > 0 {}
/// assert_eq!(out.to_string(), "0000000000000 1X0".replace(' ', ""));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct StreamDecoder<S: BitSource> {
    source: S,
    table: CodeTable,
    half: usize,
    source_len: usize,
    /// Symbols produced so far *before clipping to `source_len`* (the
    /// final block may overshoot by the encoder's pad).
    produced: usize,
    /// Bit offset consumed from the source, for error reporting.
    pos: usize,
    /// Blocks decoded so far — local tally, flushed once to the
    /// `ninec.decode.*` counters when the decoder is dropped.
    blocks: u64,
}

impl<S: BitSource> StreamDecoder<S> {
    /// Creates a decoder for a stream of `source_len` symbols encoded at
    /// block size `k` with `table`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] unless `k` is even and at least 4.
    pub fn new(
        source: S,
        k: usize,
        table: CodeTable,
        source_len: usize,
    ) -> Result<Self, InvalidBlockSize> {
        if k < 4 || !k.is_multiple_of(2) {
            return Err(InvalidBlockSize { k });
        }
        Ok(Self {
            source,
            table,
            half: k / 2,
            source_len,
            produced: 0,
            pos: 0,
            blocks: 0,
        })
    }

    /// Symbols emitted so far (clipped to the promised `source_len`).
    #[must_use]
    pub fn produced(&self) -> usize {
        self.produced.min(self.source_len)
    }

    /// `true` once all `source_len` symbols have been emitted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.produced >= self.source_len
    }

    /// Decodes the next block into `out`, returning the number of symbols
    /// emitted — `0` once the stream is complete. Uniform halves are
    /// emitted as word-level runs via [`BitSink::push_run`].
    ///
    /// # Errors
    ///
    /// See [`DecodeError`].
    pub fn decode_block_into<O: BitSink>(&mut self, out: &mut O) -> Result<usize, DecodeError> {
        if self.produced >= self.source_len {
            return Ok(0);
        }
        // Match the next codeword; X inside a codeword is a corruption.
        let mut saw_x_at = None;
        let mut pulled = 0usize;
        let pos0 = self.pos;
        let matched = self.table.match_at(|i| match self.source.next_trit() {
            Some(Trit::Zero) => {
                pulled += 1;
                Some(false)
            }
            Some(Trit::One) => {
                pulled += 1;
                Some(true)
            }
            Some(Trit::X) => {
                pulled += 1;
                if saw_x_at.is_none() {
                    saw_x_at = Some(pos0 + i);
                }
                None
            }
            None => None,
        });
        self.pos += pulled;
        let (case, _used) = match matched {
            Some(hit) => hit,
            None => {
                return Err(match saw_x_at {
                    Some(offset) => DecodeError::XInCodeword { offset },
                    None if pulled == 0 => DecodeError::TooShort {
                        produced: self.produced,
                        required: self.source_len,
                    },
                    None => DecodeError::BadCodeword { offset: pos0 },
                })
            }
        };
        let half = self.half;
        let mut emitted = 0usize;
        let (ls, rs) = case.halves();
        for spec in [ls, rs] {
            // Clip emission to the promised source length; pad symbols are
            // consumed but dropped.
            let take = half.min(self.source_len.saturating_sub(self.produced));
            match spec {
                HalfSpec::Zero => out.push_run(Trit::Zero, take),
                HalfSpec::One => out.push_run(Trit::One, take),
                HalfSpec::Mismatch => {
                    let payload_at = self.pos;
                    for i in 0..half {
                        let t = self
                            .source
                            .next_trit()
                            .ok_or(DecodeError::TruncatedPayload { offset: payload_at })?;
                        self.pos += 1;
                        if i < take {
                            out.push_trit(t);
                        }
                    }
                }
            }
            self.produced += half;
            emitted += take;
        }
        self.blocks += 1;
        Ok(emitted)
    }

    /// Drives the decoder to completion, emitting everything into `out`.
    ///
    /// # Errors
    ///
    /// See [`DecodeError`].
    pub fn run_into<O: BitSink>(mut self, out: &mut O) -> Result<(), DecodeError> {
        while self.decode_block_into(out)? > 0 {}
        Ok(())
    }
}

impl<S: BitSource> Drop for StreamDecoder<S> {
    /// Flushes the run's tally into the global [`ninec_obs`] registry
    /// (`ninec.decode.runs` / `.blocks` / `.bits_in` / `.symbols_out`) —
    /// one batched flush per decoder lifetime, skipped for decoders that
    /// never emitted a block and compiled out with telemetry disabled.
    fn drop(&mut self) {
        if self.blocks > 0 {
            crate::metrics::publish_decode(self.blocks, self.pos as u64, self.produced() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{Encoded, Encoder};
    use crate::session::DecodeSession;
    use ninec_testdata::fill::FillStrategy;
    use ninec_testdata::trit::TritVec;

    /// Session-based decode of an [`Encoded`] (the canonical entry point).
    fn sdecode(enc: &Encoded) -> Result<TritVec, DecodeError> {
        DecodeSession::new().decode(enc)
    }

    /// Session-based decode of a raw trit stream with the paper table.
    fn sdecode_trits(te: &TritVec, k: usize, source_len: usize) -> Result<TritVec, DecodeError> {
        DecodeSession::new()
            .k(k)
            .source_len(source_len)
            .decode_trits(te)
    }

    fn roundtrip(k: usize, s: &str) {
        let src: TritVec = s.parse().unwrap();
        let enc = Encoder::new(k).unwrap().encode_stream(&src);
        let dec = sdecode(&enc).unwrap();
        assert_eq!(dec.len(), src.len());
        // Every care bit of the source is preserved; every X is either
        // preserved or bound to a constant by a uniform case.
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            let d = dec.get(i).unwrap();
            if s.is_care() {
                assert_eq!(s, d, "care bit {i} changed in {s:?}");
            }
        }
    }

    #[test]
    fn roundtrips() {
        roundtrip(8, "0X0X01X001X0101X111111110000X111");
        roundtrip(4, "01X010XX11");
        roundtrip(16, &"X0".repeat(40));
        roundtrip(8, "0000000001"); // needs padding
    }

    #[test]
    fn decode_regenerates_uniform_runs() {
        let src: TritVec = "0X0XX11X".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let dec = sdecode(&enc).unwrap();
        assert_eq!(dec.to_string(), "00001111");
    }

    #[test]
    fn payload_x_survives_decode() {
        let src: TritVec = "000001X0".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let dec = sdecode(&enc).unwrap();
        assert_eq!(dec.to_string(), "000001X0");
    }

    #[test]
    fn decode_bits_matches_filled_decode() {
        let src: TritVec = "0X0X01X001X0101X".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let ate_bits = enc.to_bitvec(FillStrategy::Random { seed: 5 });
        let dec = DecodeSession::new()
            .k(8)
            .table(enc.table().clone())
            .source_len(enc.source_len())
            .decode_bits(&ate_bits)
            .unwrap();
        // The fully specified decode must cover the cube source.
        let dec_trits = TritVec::from(&dec);
        assert!(dec_trits.covers(&sdecode(&enc).unwrap()) || dec_trits.compatible_with(&src));
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), dec_trits.get(i));
            }
        }
    }

    #[test]
    fn bad_codeword_reported() {
        // "11" alone is not a valid codeword prefix completion.
        let te: TritVec = "11".parse().unwrap();
        let err = sdecode_trits(&te, 8, 8).unwrap_err();
        assert!(matches!(err, DecodeError::BadCodeword { offset: 0 }));
    }

    #[test]
    fn x_in_codeword_reported() {
        let te: TritVec = "X".parse().unwrap();
        let err = sdecode_trits(&te, 8, 8).unwrap_err();
        assert!(matches!(err, DecodeError::XInCodeword { offset: 0 }));
    }

    #[test]
    fn truncated_payload_reported() {
        // C9 ("1100") promises 8 payload bits but only 3 follow.
        let te: TritVec = "1100010".parse().unwrap();
        let err = sdecode_trits(&te, 8, 8).unwrap_err();
        assert!(matches!(err, DecodeError::TruncatedPayload { offset: 4 }));
    }

    #[test]
    fn too_short_reported() {
        // One C1 block yields 8 symbols; 16 were promised.
        let te: TritVec = "0".parse().unwrap();
        let err = sdecode_trits(&te, 8, 16).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::TooShort {
                produced: 8,
                required: 16
            }
        ));
    }

    #[test]
    fn invalid_block_size_is_an_error_not_a_panic() {
        // Replaces the pre-session `assert!`: library callers never abort.
        let te: TritVec = "0".parse().unwrap();
        for k in [0usize, 2, 7] {
            let err = sdecode_trits(&te, k, 8).unwrap_err();
            assert_eq!(err, DecodeError::InvalidBlockSize { k });
        }
    }

    #[test]
    fn stream_decoder_drains_block_by_block() {
        let src: TritVec = "0X0X01X001X0101X111111110000X11101".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let expect = sdecode(&enc).unwrap();
        let mut dec = StreamDecoder::new(
            enc.stream().as_slice().iter(),
            enc.k(),
            enc.table().clone(),
            enc.source_len(),
        )
        .unwrap();
        // Drain after every block: peak buffering is one block.
        let mut got = TritVec::new();
        let mut buf = TritVec::new();
        loop {
            let n = dec.decode_block_into(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(buf.len() <= 8, "drained buffer exceeded one block");
            got.extend_from_tritvec(&buf);
            buf.truncate(0);
        }
        assert!(dec.is_done());
        assert_eq!(dec.produced(), src.len());
        assert_eq!(got, expect);
    }

    #[test]
    fn stream_decoder_run_into_matches_one_shot() {
        let src: TritVec = "01X0101XXXXXXXXX0000000011".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let mut out = TritVec::new();
        StreamDecoder::new(
            enc.stream().as_slice().iter(),
            enc.k(),
            enc.table().clone(),
            enc.source_len(),
        )
        .unwrap()
        .run_into(&mut out)
        .unwrap();
        assert_eq!(out, sdecode(&enc).unwrap());
    }

    #[test]
    fn stream_decoder_rejects_bad_block_size() {
        let v = TritVec::new();
        assert!(StreamDecoder::new(v.as_slice().iter(), 7, CodeTable::paper(), 0).is_err());
        assert!(StreamDecoder::new(v.as_slice().iter(), 2, CodeTable::paper(), 0).is_err());
    }

    #[test]
    fn custom_table_roundtrip() {
        use crate::code::PAPER_LENGTHS;
        let mut lengths = PAPER_LENGTHS;
        lengths.swap(0, 8);
        let table = CodeTable::from_lengths(&lengths).unwrap();
        let src: TritVec = "01X010XX11000111".parse().unwrap();
        let enc = Encoder::with_table(8, table.clone())
            .unwrap()
            .encode_stream(&src);
        let dec = sdecode(&enc).unwrap();
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), dec.get(i));
            }
        }
    }
}

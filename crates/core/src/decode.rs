//! The 9C software (reference) decoder.
//!
//! The on-chip decoder is modeled cycle-accurately in `ninec-decompressor`;
//! this module is the behavioural reference both are checked against.

use crate::code::{CodeTable, HalfSpec};
use crate::encode::Encoded;
use ninec_testdata::bits::BitVec;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// Error returned when a compressed stream cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// No codeword matches at the given bit offset (truncated or corrupt
    /// stream).
    BadCodeword {
        /// Bit offset where matching failed.
        offset: usize,
    },
    /// A don't-care appeared inside a codeword (codewords must be fully
    /// specified).
    XInCodeword {
        /// Bit offset of the offending symbol.
        offset: usize,
    },
    /// The stream ended in the middle of a verbatim payload.
    TruncatedPayload {
        /// Bit offset where the payload started.
        offset: usize,
    },
    /// Decoding produced fewer symbols than `source_len` requires.
    TooShort {
        /// Symbols produced.
        produced: usize,
        /// Symbols required.
        required: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadCodeword { offset } => {
                write!(f, "no codeword matches at bit offset {offset}")
            }
            DecodeError::XInCodeword { offset } => {
                write!(f, "don't-care inside a codeword at bit offset {offset}")
            }
            DecodeError::TruncatedPayload { offset } => {
                write!(f, "stream ends inside the payload starting at bit offset {offset}")
            }
            DecodeError::TooShort { produced, required } => {
                write!(f, "decoded {produced} symbols but {required} were required")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a three-valued 9C stream produced with `table` and block size
/// `k`, yielding exactly `source_len` symbols.
///
/// Uniform halves decode to runs of `0`/`1`; verbatim payload is copied
/// through unchanged, so don't-cares in the payload reappear as `X` in the
/// output. Pad symbols beyond `source_len` are dropped.
///
/// # Errors
///
/// See [`DecodeError`].
///
/// # Examples
///
/// ```
/// use ninec::code::CodeTable;
/// use ninec::decode::decode_stream;
/// use ninec_testdata::trit::TritVec;
///
/// // C1 ("0") then C5 ("11100") with payload "01X0", at K = 8.
/// let te: TritVec = "011100 01X0".replace(' ', "").parse()?;
/// let out = decode_stream(&te, 8, &CodeTable::paper(), 16)?;
/// assert_eq!(out.to_string(), "00000000" .to_owned() + "000001X0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn decode_stream(
    stream: &TritVec,
    k: usize,
    table: &CodeTable,
    source_len: usize,
) -> Result<TritVec, DecodeError> {
    assert!(k >= 4 && k % 2 == 0, "block size must be even and >= 4, got {k}");
    let half = k / 2;
    let mut out = TritVec::with_capacity(source_len + k);
    let mut pos = 0usize;
    while out.len() < source_len {
        if pos >= stream.len() {
            return Err(DecodeError::TooShort {
                produced: out.len(),
                required: source_len,
            });
        }
        // Match the next codeword; X inside a codeword is a corruption.
        let mut saw_x_at = None;
        let matched = table.match_at(|i| match stream.get(pos + i) {
            Some(Trit::Zero) => Some(false),
            Some(Trit::One) => Some(true),
            Some(Trit::X) => {
                if saw_x_at.is_none() {
                    saw_x_at = Some(pos + i);
                }
                None
            }
            None => None,
        });
        let (case, used) = match matched {
            Some(hit) => hit,
            None => {
                return Err(match saw_x_at {
                    Some(offset) => DecodeError::XInCodeword { offset },
                    None => DecodeError::BadCodeword { offset: pos },
                })
            }
        };
        pos += used;
        let (ls, rs) = case.halves();
        for spec in [ls, rs] {
            match spec {
                HalfSpec::Zero => {
                    for _ in 0..half {
                        out.push(Trit::Zero);
                    }
                }
                HalfSpec::One => {
                    for _ in 0..half {
                        out.push(Trit::One);
                    }
                }
                HalfSpec::Mismatch => {
                    if pos + half > stream.len() {
                        return Err(DecodeError::TruncatedPayload { offset: pos });
                    }
                    for i in 0..half {
                        out.push(stream.get(pos + i).expect("length checked"));
                    }
                    pos += half;
                }
            }
        }
    }
    Ok(out.slice(0, source_len))
}

/// Decodes an [`Encoded`] value back to a stream of `|T_D|` symbols.
///
/// # Errors
///
/// See [`DecodeError`]; cannot fail on streams produced by
/// [`Encoder::encode_stream`](crate::encode::Encoder::encode_stream).
pub fn decode(encoded: &Encoded) -> Result<TritVec, DecodeError> {
    decode_stream(
        encoded.stream(),
        encoded.k(),
        encoded.table(),
        encoded.source_len(),
    )
}

/// Decodes a fully specified bit stream (what the ATE actually stores,
/// after X-fill) to the bits scanned into the chain.
///
/// # Errors
///
/// See [`DecodeError`].
pub fn decode_bits(
    bits: &BitVec,
    k: usize,
    table: &CodeTable,
    source_len: usize,
) -> Result<BitVec, DecodeError> {
    let trits = TritVec::from(bits);
    let out = decode_stream(&trits, k, table, source_len)?;
    Ok(out.to_bitvec().expect("specified input decodes to specified output"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;
    use ninec_testdata::fill::FillStrategy;

    fn roundtrip(k: usize, s: &str) {
        let src: TritVec = s.parse().unwrap();
        let enc = Encoder::new(k).unwrap().encode_stream(&src);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.len(), src.len());
        // Every care bit of the source is preserved; every X is either
        // preserved or bound to a constant by a uniform case.
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            let d = dec.get(i).unwrap();
            if s.is_care() {
                assert_eq!(s, d, "care bit {i} changed in {s:?}");
            }
        }
    }

    #[test]
    fn roundtrips() {
        roundtrip(8, "0X0X01X001X0101X111111110000X111");
        roundtrip(4, "01X010XX11");
        roundtrip(16, &"X0".repeat(40));
        roundtrip(8, "0000000001"); // needs padding
    }

    #[test]
    fn decode_regenerates_uniform_runs() {
        let src: TritVec = "0X0XX11X".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.to_string(), "00001111");
    }

    #[test]
    fn payload_x_survives_decode() {
        let src: TritVec = "000001X0".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let dec = decode(&enc).unwrap();
        assert_eq!(dec.to_string(), "000001X0");
    }

    #[test]
    fn decode_bits_matches_filled_decode() {
        let src: TritVec = "0X0X01X001X0101X".parse().unwrap();
        let enc = Encoder::new(8).unwrap().encode_stream(&src);
        let ate_bits = enc.to_bitvec(FillStrategy::Random { seed: 5 });
        let dec = decode_bits(&ate_bits, 8, enc.table(), enc.source_len()).unwrap();
        // The fully specified decode must cover the cube source.
        let dec_trits = TritVec::from(&dec);
        assert!(dec_trits.covers(&decode(&enc).unwrap()) || dec_trits.compatible_with(&src));
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), dec_trits.get(i));
            }
        }
    }

    #[test]
    fn bad_codeword_reported() {
        // "11" alone is not a valid codeword prefix completion.
        let te: TritVec = "11".parse().unwrap();
        let err = decode_stream(&te, 8, &CodeTable::paper(), 8).unwrap_err();
        assert!(matches!(err, DecodeError::BadCodeword { offset: 0 }));
    }

    #[test]
    fn x_in_codeword_reported() {
        let te: TritVec = "X".parse().unwrap();
        let err = decode_stream(&te, 8, &CodeTable::paper(), 8).unwrap_err();
        assert!(matches!(err, DecodeError::XInCodeword { offset: 0 }));
    }

    #[test]
    fn truncated_payload_reported() {
        // C9 ("1100") promises 8 payload bits but only 3 follow.
        let te: TritVec = "1100010".parse().unwrap();
        let err = decode_stream(&te, 8, &CodeTable::paper(), 8).unwrap_err();
        assert!(matches!(err, DecodeError::TruncatedPayload { offset: 4 }));
    }

    #[test]
    fn too_short_reported() {
        // One C1 block yields 8 symbols; 16 were promised.
        let te: TritVec = "0".parse().unwrap();
        let err = decode_stream(&te, 8, &CodeTable::paper(), 16).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::TooShort { produced: 8, required: 16 }
        ));
    }

    #[test]
    fn custom_table_roundtrip() {
        use crate::code::PAPER_LENGTHS;
        let mut lengths = PAPER_LENGTHS;
        lengths.swap(0, 8);
        let table = CodeTable::from_lengths(&lengths).unwrap();
        let src: TritVec = "01X010XX11000111".parse().unwrap();
        let enc = Encoder::with_table(8, table.clone()).unwrap().encode_stream(&src);
        let dec = decode(&enc).unwrap();
        for i in 0..src.len() {
            let s = src.get(i).unwrap();
            if s.is_care() {
                assert_eq!(Some(s), dec.get(i));
            }
        }
    }
}

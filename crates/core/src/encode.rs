//! The 9C encoder.

use crate::block::HalfClass;
use crate::code::{Case, CodeTable, HalfSpec, ALL_CASES};
use crate::stream::BitSink;
use ninec_testdata::cube::TestSet;
use ninec_testdata::slice::TritSlice;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// Case-selection policy among (near-)equal-cost alternatives.
///
/// A block with flexible halves (e.g. all-`X`) satisfies several cases at
/// different costs. [`CaseSelect::MinSize`] is the paper's policy: always
/// take the cheapest case. [`CaseSelect::PowerAware`] exploits the same
/// flexibility for scan power: among cases within `max_extra_bits` of the
/// cheapest, pick the one whose bound values introduce the fewest
/// transitions at the block-boundary and half-boundary seams — trading a
/// sliver of CR for quieter scan-in (the paper's §IV remark, made
/// concrete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaseSelect {
    /// The paper's greedy: cheapest case, ties to the lower case index.
    #[default]
    MinSize,
    /// Transition-minimizing selection within a size budget per block.
    PowerAware {
        /// How many extra encoded bits per block the selector may spend.
        max_extra_bits: usize,
    },
}

/// Per-case occurrence counts and size bookkeeping for one encoding run —
/// the paper's `N_1 … N_9` (Table VI) plus derived sizes.
///
/// Since the introduction of the [`crate::metrics`] telemetry layer this
/// struct is the *local tally* the streaming encoder keeps on the hot
/// path; at [`StreamEncoder::finish`] it is flushed once into the
/// process-wide [`ninec_obs`] registry (counters
/// `ninec.encode.case.C1 … C9`, `ninec.encode.blocks`, …). The public
/// fields and accessors are kept as a thin per-run compatibility shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeStats {
    /// Occurrences of each case, `C1` … `C9`.
    pub case_counts: [u64; 9],
    /// Total number of `K`-bit blocks encoded.
    pub blocks: u64,
    /// Total encoded bits `|T_E|` (codewords + verbatim payload).
    pub encoded_bits: u64,
    /// Don't-care symbols that survived into the payload (leftover X).
    pub leftover_x: u64,
}

impl EncodeStats {
    /// Occurrences of `case`.
    ///
    /// **Deprecation note:** for cross-run aggregation prefer the
    /// `ninec.encode.case.C*` counters in the [`ninec_obs::global`]
    /// registry (see [`crate::metrics`]); this accessor only sees one
    /// run's tally and will eventually become crate-private.
    pub fn count(&self, case: Case) -> u64 {
        self.case_counts[case.index()]
    }

    /// Flushes this tally into the global [`ninec_obs`] registry under
    /// the `ninec.encode.*` names, exactly as [`StreamEncoder::finish`]
    /// does automatically. `table`/`k` rebuild the per-block size
    /// histogram from the case counts; `source_len` is `|T_D|`.
    ///
    /// This is the compatibility bridge for callers that assembled their
    /// stats manually (e.g. from the scalar reference encoder).
    pub fn publish(&self, source_len: usize, table: &CodeTable, k: usize) {
        crate::metrics::publish_encode(self, source_len, table, k);
    }

    /// Recomputes `|T_E|` from the counts via the paper's formula:
    /// `Σ N_i · (|C_i| + payload_i(K))`. Equals [`EncodeStats::encoded_bits`]
    /// for the table/K the stats were produced with.
    pub fn size_by_formula(&self, table: &CodeTable, k: usize) -> u64 {
        ALL_CASES
            .into_iter()
            .map(|c| self.count(c) * table.block_bits(c, k) as u64)
            .sum()
    }
}

impl fmt::Display for EncodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for case in ALL_CASES {
            write!(f, "{}={} ", case.label(), self.count(case))?;
        }
        write!(f, "blocks={} |T_E|={}", self.blocks, self.encoded_bits)
    }
}

/// The result of compressing a test stream with 9C.
///
/// The compressed stream is itself three-valued: codeword bits are care
/// bits, but verbatim payload keeps its don't-cares — the "leftover X" the
/// paper trades off against compression ratio. Use
/// [`Encoded::to_bitvec`](Encoded::to_bitvec) to bind them before shipping
/// to an ATE.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    k: usize,
    table: CodeTable,
    stream: TritVec,
    source_len: usize,
    stats: EncodeStats,
}

impl Encoded {
    /// Assembles an `Encoded` from already-validated parts — used by the
    /// engine to merge per-segment encodes into one stream value.
    pub(crate) fn from_parts(
        k: usize,
        table: CodeTable,
        stream: TritVec,
        source_len: usize,
        stats: EncodeStats,
    ) -> Self {
        Self {
            k,
            table,
            stream,
            source_len,
            stats,
        }
    }

    /// Replaces the compressed stream `T_E`, keeping `k`, the table and
    /// `source_len` from `self`.
    ///
    /// This is the corruption-modelling hook for robustness harnesses: it
    /// presents an arbitrary (bit-flipped, truncated, spliced) stream to
    /// the decoder under the original header parameters, exactly what a
    /// damaged ATE image looks like. Decoding the result must yield a
    /// typed [`crate::DecodeError`] or a correct-length stream — never a
    /// panic. Normal encoding never needs this.
    #[must_use]
    pub fn with_stream(mut self, stream: TritVec) -> Self {
        self.stream = stream;
        self
    }

    /// Block size `K` used for encoding.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The code table used for encoding.
    pub fn table(&self) -> &CodeTable {
        &self.table
    }

    /// The compressed stream `T_E` (codewords are care bits, payload may
    /// contain `X`).
    pub fn stream(&self) -> &TritVec {
        &self.stream
    }

    /// Original (unpadded) length of the source stream, `|T_D|`.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// `|T_E|` in bits.
    pub fn compressed_len(&self) -> usize {
        self.stream.len()
    }

    /// Encoding statistics.
    pub fn stats(&self) -> &EncodeStats {
        &self.stats
    }

    /// Compression ratio in percent:
    /// `CR% = (|T_D| − |T_E|) / |T_D| · 100`. Negative when the code
    /// expands the data.
    pub fn compression_ratio(&self) -> f64 {
        if self.source_len == 0 {
            return 0.0;
        }
        (self.source_len as f64 - self.compressed_len() as f64) / self.source_len as f64 * 100.0
    }

    /// Leftover don't-cares as a percentage of `|T_D|` (the paper's LX%).
    pub fn leftover_x_percent(&self) -> f64 {
        if self.source_len == 0 {
            return 0.0;
        }
        self.stats.leftover_x as f64 / self.source_len as f64 * 100.0
    }

    /// Binds the leftover don't-cares with `strategy`, yielding the bit
    /// stream an ATE would store.
    pub fn to_bitvec(
        &self,
        strategy: ninec_testdata::fill::FillStrategy,
    ) -> ninec_testdata::bits::BitVec {
        ninec_testdata::fill::fill_trits(&self.stream, strategy)
            .to_bitvec()
            .expect("fill produces a fully specified stream")
    }
}

/// Error: invalid block size for 9C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBlockSize {
    /// The rejected size.
    pub k: usize,
}

impl fmt::Display for InvalidBlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block size must be even and at least 4, got {}", self.k)
    }
}

impl std::error::Error for InvalidBlockSize {}

/// The 9C encoder for a fixed block size `K`.
///
/// # Examples
///
/// ```
/// use ninec::encode::Encoder;
/// use ninec_testdata::trit::TritVec;
///
/// let encoder = Encoder::new(8)?;
/// // One all-zero-compatible block and one all-ones block: "0" + "10".
/// let stream: TritVec = "0X0X00XX1111X111".parse()?;
/// let encoded = encoder.encode_stream(&stream);
/// assert_eq!(encoded.stream().to_string(), "010");
/// assert!(encoded.compression_ratio() > 80.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    k: usize,
    table: CodeTable,
    select: CaseSelect,
}

impl Encoder {
    /// Creates an encoder with the paper's code table.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] unless `k` is even and at least 4.
    pub fn new(k: usize) -> Result<Self, InvalidBlockSize> {
        Self::with_table(k, CodeTable::paper())
    }

    /// Creates an encoder with a custom (e.g. frequency-reassigned) table.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] unless `k` is even and at least 4.
    pub fn with_table(k: usize, table: CodeTable) -> Result<Self, InvalidBlockSize> {
        if k < 4 || !k.is_multiple_of(2) {
            return Err(InvalidBlockSize { k });
        }
        Ok(Self {
            k,
            table,
            select: CaseSelect::MinSize,
        })
    }

    /// Sets the case-selection policy (see [`CaseSelect`]).
    pub fn with_case_select(mut self, select: CaseSelect) -> Self {
        self.select = select;
        self
    }

    /// Block size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The encoder's code table.
    pub fn table(&self) -> &CodeTable {
        &self.table
    }

    /// Compresses a flat symbol stream.
    ///
    /// The stream is padded with `X` to a multiple of `K`; the pad is
    /// free to encode (it extends the final block's halves) and the decoder
    /// drops it again via [`Encoded::source_len`].
    ///
    /// This is a thin wrapper over the streaming path: it feeds the whole
    /// stream to a [`StreamEncoder`] writing into a [`TritVec`] sink. The
    /// hot loop classifies each `K/2` half in `O(K/64)` word operations on
    /// the packed care/value planes and never allocates per block.
    pub fn encode_stream(&self, stream: &TritVec) -> Encoded {
        let _span = ninec_obs::span("encode_stream");
        let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
        let mut out = TritVec::with_capacity(stream.len() / 4 + 8);
        let mut enc = self.stream_encoder(&mut out);
        enc.feed(stream.as_slice());
        let totals = enc.finish();
        if let Some(t0) = t0 {
            crate::metrics::publish_encode_throughput(stream.len(), t0.elapsed().as_secs_f64());
        }
        Encoded {
            k: self.k,
            table: self.table.clone(),
            stream: out,
            source_len: totals.source_len,
            stats: totals.stats,
        }
    }

    /// Compresses chunked input, proving chunk boundaries are invisible:
    /// the result is bit-identical to [`Encoder::encode_stream`] on the
    /// concatenation of the chunks.
    pub fn encode_chunked<'a, I>(&self, chunks: I) -> Encoded
    where
        I: IntoIterator<Item = TritSlice<'a>>,
    {
        let _span = ninec_obs::span("encode_chunked");
        let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
        let mut out = TritVec::new();
        let mut enc = self.stream_encoder(&mut out);
        for chunk in chunks {
            enc.feed(chunk);
        }
        let totals = enc.finish();
        if let Some(t0) = t0 {
            crate::metrics::publish_encode_throughput(
                totals.source_len,
                t0.elapsed().as_secs_f64(),
            );
        }
        Encoded {
            k: self.k,
            table: self.table.clone(),
            stream: out,
            source_len: totals.source_len,
            stats: totals.stats,
        }
    }

    /// Compresses a test set as one stream, pattern after pattern — the
    /// single-scan-chain arrangement of the paper's Figure 4(a).
    pub fn encode_set(&self, set: &TestSet) -> Encoded {
        self.encode_stream(set.as_stream())
    }

    /// Starts a streaming encode writing into `sink`.
    ///
    /// Feed chunks of any size with [`StreamEncoder::feed`]; the encoder
    /// buffers at most `K − 1` symbols between calls, so peak memory is
    /// `O(K + chunk)` regardless of stream length. Call
    /// [`StreamEncoder::finish`] to flush the final partial block (padded
    /// with `X`) and collect the [`EncodeStats`].
    ///
    /// # Examples
    ///
    /// ```
    /// use ninec::encode::Encoder;
    /// use ninec_testdata::trit::TritVec;
    ///
    /// let encoder = Encoder::new(8)?;
    /// let stream: TritVec = "0X0X00XX1111X111".parse()?;
    ///
    /// let mut out = TritVec::new();
    /// let mut enc = encoder.stream_encoder(&mut out);
    /// for chunk in stream.chunks(3) {
    ///     enc.feed(chunk);
    /// }
    /// let totals = enc.finish();
    /// assert_eq!(out.to_string(), "010");
    /// assert_eq!(totals.source_len, 16);
    /// assert_eq!(totals.stats.blocks, 2);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn stream_encoder<'a, S: BitSink>(&'a self, sink: &'a mut S) -> StreamEncoder<'a, S> {
        StreamEncoder {
            encoder: self,
            sink,
            pending: TritVec::with_capacity(self.k),
            stats: EncodeStats::default(),
            source_len: 0,
            prev_last: None,
        }
    }

    /// Scalar per-symbol reference encoder, kept for differential testing
    /// and as the baseline of the throughput benchmarks. Produces a stream
    /// bit-identical to [`Encoder::encode_stream`].
    #[doc(hidden)]
    pub fn encode_stream_scalar(&self, stream: &TritVec) -> Encoded {
        let k = self.k;
        let source_len = stream.len();
        let padded_len = source_len.div_ceil(k) * k;
        let mut padded;
        let stream = if padded_len == source_len {
            stream
        } else {
            padded = stream.clone();
            for _ in source_len..padded_len {
                padded.push(Trit::X);
            }
            &padded
        };

        let mut out = TritVec::with_capacity(padded_len / 4);
        let mut stats = EncodeStats::default();
        let half = k / 2;
        // For power-aware selection: the value the scan chain last saw.
        let mut prev_last: Option<bool> = None;
        for start in (0..padded_len).step_by(k) {
            let block = stream.slice_view(start, start + k);
            let left = HalfClass::classify_scalar(
                (start..start + half).map(|i| stream.get(i).expect("in range")),
            );
            let right = HalfClass::classify_scalar(
                (start + half..start + k).map(|i| stream.get(i).expect("in range")),
            );
            let case = self.select_case(block, left, right, prev_last);
            stats.case_counts[case.index()] += 1;
            stats.blocks += 1;
            for bit in self.table.codeword(case).iter_bits() {
                out.push(Trit::from(bit));
            }
            let (ls, rs) = case.halves();
            for (spec, offset) in [(ls, 0), (rs, half)] {
                if spec == HalfSpec::Mismatch {
                    for i in start + offset..start + offset + half {
                        let t = stream.get(i).expect("in range");
                        if t.is_x() {
                            stats.leftover_x += 1;
                        }
                        out.push(t);
                    }
                }
            }
            prev_last = half_boundary_value(block, half, half, rs, BlockEdge::Last);
        }
        stats.encoded_bits = out.len() as u64;
        Encoded {
            k,
            table: self.table.clone(),
            stream: out,
            source_len,
            stats,
        }
    }

    /// Picks the block's case under the configured selection policy.
    ///
    /// `block` is the (possibly short, `X`-pad-implied) block slice;
    /// allocation-free: candidates are filtered in two passes over the
    /// fixed nine-case table.
    pub(crate) fn select_case(
        &self,
        block: TritSlice<'_>,
        left: HalfClass,
        right: HalfClass,
        prev_last: Option<bool>,
    ) -> Case {
        let k = self.k;
        let budget = match self.select {
            CaseSelect::MinSize => 0,
            CaseSelect::PowerAware { max_extra_bits } => max_extra_bits,
        };
        let feasible = |case: Case| {
            let (ls, rs) = case.halves();
            left.satisfies(ls) && right.satisfies(rs)
        };
        let best_cost = ALL_CASES
            .into_iter()
            .filter(|&c| feasible(c))
            .map(|c| self.table.block_bits(c, k))
            .min()
            .expect("MM is always feasible");
        let mut best: Option<((usize, usize, usize), Case)> = None;
        for case in ALL_CASES {
            if !feasible(case) {
                continue;
            }
            let cost = self.table.block_bits(case, k);
            if cost > best_cost + budget {
                continue;
            }
            let penalty = match self.select {
                CaseSelect::MinSize => 0,
                CaseSelect::PowerAware { .. } => seam_transitions(block, k, case, prev_last),
            };
            let key = (penalty, cost, case.index());
            if best.is_none_or(|(b, _)| key < b) {
                best = Some((key, case));
            }
        }
        best.expect("candidate set is non-empty").1
    }
}

/// Totals collected by a [`StreamEncoder`] over its whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeTotals {
    /// Per-case counts and `|T_E|` bookkeeping.
    pub stats: EncodeStats,
    /// Symbols fed in total, `|T_D|`.
    pub source_len: usize,
}

/// An in-progress streaming 9C encode (see [`Encoder::stream_encoder`]).
///
/// Holds at most one partial block (`< K` symbols) between
/// [`feed`](StreamEncoder::feed) calls; everything else goes straight to
/// the sink, so memory stays bounded no matter how long the stream is.
#[derive(Debug)]
pub struct StreamEncoder<'a, S: BitSink> {
    encoder: &'a Encoder,
    sink: &'a mut S,
    pending: TritVec,
    stats: EncodeStats,
    source_len: usize,
    prev_last: Option<bool>,
}

impl<S: BitSink> StreamEncoder<'_, S> {
    /// Feeds the next chunk of the source stream.
    ///
    /// Whole blocks are classified word-parallel directly on the chunk's
    /// packed planes; only a sub-block remainder (`< K` symbols) is
    /// buffered for the next call.
    pub fn feed(&mut self, mut chunk: TritSlice<'_>) {
        let k = self.encoder.k;
        self.source_len += chunk.len();
        // Top up a pending partial block first.
        if !self.pending.is_empty() {
            let need = k - self.pending.len();
            let take = need.min(chunk.len());
            self.pending.extend_from_slice(chunk.subslice(0, take));
            chunk = chunk.subslice(take, chunk.len());
            if self.pending.len() == k {
                encode_block(
                    self.encoder,
                    self.sink,
                    &mut self.stats,
                    &mut self.prev_last,
                    self.pending.as_slice(),
                );
                self.pending.truncate(0);
            } else {
                return; // chunk exhausted inside the pending block
            }
        }
        // Whole blocks straight off the chunk, no copies.
        let whole = chunk.len() / k * k;
        let mut start = 0;
        while start < whole {
            encode_block(
                self.encoder,
                self.sink,
                &mut self.stats,
                &mut self.prev_last,
                chunk.subslice(start, start + k),
            );
            start += k;
        }
        // Buffer the remainder.
        if whole < chunk.len() {
            self.pending
                .extend_from_slice(chunk.subslice(whole, chunk.len()));
        }
    }

    /// Flushes the final partial block (implicitly padded with `X`) and
    /// returns the run's totals.
    ///
    /// Also publishes the tally into the global [`ninec_obs`] registry
    /// (one batched flush per run — the per-block hot loop never touches
    /// an atomic); a no-op when telemetry is compiled out or runtime
    /// disabled.
    pub fn finish(mut self) -> EncodeTotals {
        if !self.pending.is_empty() {
            encode_block(
                self.encoder,
                self.sink,
                &mut self.stats,
                &mut self.prev_last,
                self.pending.as_slice(),
            );
        }
        crate::metrics::publish_encode(
            &self.stats,
            self.source_len,
            &self.encoder.table,
            self.encoder.k,
        );
        EncodeTotals {
            stats: self.stats,
            source_len: self.source_len,
        }
    }
}

/// Encodes one block given as a slice of `1 ..= K` symbols; symbols past
/// `block.len()` are implicit `X` padding (they classify as compatible
/// with everything, and pad positions inside a verbatim half are emitted
/// as `X` and counted as leftover don't-cares).
fn encode_block<S: BitSink>(
    enc: &Encoder,
    sink: &mut S,
    stats: &mut EncodeStats,
    prev_last: &mut Option<bool>,
    block: TritSlice<'_>,
) {
    let k = enc.k;
    let half = k / 2;
    let len = block.len();
    debug_assert!(len >= 1 && len <= k);
    let left = HalfClass::classify_slice(block, 0, half.min(len));
    let right = HalfClass::classify_slice(block, half.min(len), len);
    let case = enc.select_case(block, left, right, *prev_last);
    stats.case_counts[case.index()] += 1;
    stats.blocks += 1;
    stats.encoded_bits += enc.table.block_bits(case, k) as u64;
    for bit in enc.table.codeword(case).iter_bits() {
        sink.push_bit(bit);
    }
    let (ls, rs) = case.halves();
    for (spec, offset) in [(ls, 0), (rs, half)] {
        if spec == HalfSpec::Mismatch {
            let from = offset.min(len);
            let to = (offset + half).min(len);
            let sub = block.subslice(from, to);
            let pad = half - (to - from);
            stats.leftover_x += (sub.count_x() + pad) as u64;
            sink.push_slice(sub);
            sink.push_run(Trit::X, pad);
        }
    }
    *prev_last = half_boundary_value(block, half, half, rs, BlockEdge::Last);
}

/// Which edge of a half to inspect.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockEdge {
    First,
    Last,
}

/// The concrete value a half presents at one of its edges after decoding,
/// or `None` when it is data-dependent (an `X` in a verbatim payload).
/// Positions past `block.len()` are implicit pad `X` (also `None`).
fn half_boundary_value(
    block: TritSlice<'_>,
    half_start: usize,
    half: usize,
    spec: HalfSpec,
    edge: BlockEdge,
) -> Option<bool> {
    match spec {
        HalfSpec::Zero => Some(false),
        HalfSpec::One => Some(true),
        HalfSpec::Mismatch => {
            let idx = match edge {
                BlockEdge::First => half_start,
                BlockEdge::Last => half_start + half - 1,
            };
            if idx < block.len() {
                block.get(idx).and_then(Trit::value)
            } else {
                None
            }
        }
    }
}

/// Transitions a case introduces at the previous-block seam and the
/// half-to-half seam (only seams whose two sides are both known count).
fn seam_transitions(block: TritSlice<'_>, k: usize, case: Case, prev_last: Option<bool>) -> usize {
    let half = k / 2;
    let (ls, rs) = case.halves();
    let left_first = half_boundary_value(block, 0, half, ls, BlockEdge::First);
    let left_last = half_boundary_value(block, 0, half, ls, BlockEdge::Last);
    let right_first = half_boundary_value(block, half, half, rs, BlockEdge::First);
    let seam = |a: Option<bool>, b: Option<bool>| matches!((a, b), (Some(x), Some(y)) if x != y);
    seam(prev_last, left_first) as usize + seam(left_last, right_first) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(k: usize, s: &str) -> Encoded {
        Encoder::new(k).unwrap().encode_stream(&s.parse().unwrap())
    }

    #[test]
    fn rejects_bad_block_sizes() {
        assert!(Encoder::new(0).is_err());
        assert!(Encoder::new(2).is_err());
        assert!(Encoder::new(7).is_err());
        assert!(Encoder::new(4).is_ok());
    }

    #[test]
    fn all_zero_block_is_one_bit() {
        let e = enc(8, "0X00X0X0");
        assert_eq!(e.stream().to_string(), "0");
        assert_eq!(e.stats().count(Case::ZZ), 1);
        assert_eq!(e.stats().leftover_x, 0);
    }

    #[test]
    fn table_one_example_cases() {
        // K = 8 blocks exercising C2, C3, C4.
        let e = enc(8, "11111111");
        assert_eq!(e.stream().to_string(), "10");
        let e = enc(8, "0000X111");
        assert_eq!(e.stream().to_string(), "11010");
        let e = enc(8, "1X110000");
        assert_eq!(e.stream().to_string(), "11011");
    }

    #[test]
    fn mismatch_halves_travel_verbatim_with_their_x() {
        // Left 0-compatible, right mismatch "01X0": C5 + payload.
        let e = enc(8, "0X0X01X0");
        assert_eq!(e.stream().to_string(), "1110001X0");
        assert_eq!(e.stats().count(Case::ZM), 1);
        assert_eq!(e.stats().leftover_x, 1);
        assert!((e.leftover_x_percent() - 100.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn full_mismatch_block() {
        let e = enc(8, "01X0101X");
        assert_eq!(e.stream().to_string(), "110001X0101X");
        assert_eq!(e.stats().count(Case::MM), 1);
        assert_eq!(e.stats().leftover_x, 2);
    }

    #[test]
    fn padding_extends_last_block_with_x() {
        // 10 symbols at K = 8: second block is "01" + 6 X pads -> mismatch?
        // "01XXXXXX" halves: "01XX" mismatch? contains 0 and 1 -> yes, left
        // mismatch; right all-X -> MZ.
        let e = enc(8, "0000000001");
        assert_eq!(e.source_len(), 10);
        assert_eq!(e.stats().count(Case::ZZ), 1);
        assert_eq!(e.stats().count(Case::MZ), 1);
        // Stream: "0" + C6 "11101" + verbatim "01XX".
        assert_eq!(e.stream().to_string(), "01110101XX");
    }

    #[test]
    fn formula_matches_emitted_length() {
        let e = enc(8, "0X0X01X001X0101X111111110000X111");
        assert_eq!(
            e.stats().size_by_formula(e.table(), e.k()),
            e.compressed_len() as u64
        );
    }

    #[test]
    fn compression_ratio_sign() {
        // Highly compressible: all X.
        let e = enc(16, &"X".repeat(160));
        assert!(e.compression_ratio() > 90.0);
        // Incompressible: alternating cares -> every block MM, CR < 0.
        let s: String = std::iter::repeat_n("01", 40)
            .flat_map(|x| x.chars())
            .collect();
        let e = enc(8, &s);
        assert!(e.compression_ratio() < 0.0);
    }

    #[test]
    fn to_bitvec_binds_all_x() {
        use ninec_testdata::fill::FillStrategy;
        let e = enc(8, "0X0X01X0");
        let bits = e.to_bitvec(FillStrategy::Zero);
        assert_eq!(bits.to_string(), "111000100");
    }

    #[test]
    fn stats_display_mentions_all_cases() {
        let e = enc(8, "00000000");
        let s = e.stats().to_string();
        assert!(s.contains("C1=1") && s.contains("C9=0"));
    }

    #[test]
    fn empty_stream() {
        let e = enc(8, "");
        assert_eq!(e.compressed_len(), 0);
        assert_eq!(e.compression_ratio(), 0.0);
        assert_eq!(e.stats().blocks, 0);
    }

    #[test]
    fn chunked_feed_is_invisible() {
        let src: TritVec = "0X0X01X001X0101X111111110000X1111X0".parse().unwrap();
        let one_shot = Encoder::new(8).unwrap().encode_stream(&src);
        for chunk in [1usize, 3, 7, 8, 64] {
            let chunked = Encoder::new(8).unwrap().encode_chunked(src.chunks(chunk));
            assert_eq!(chunked, one_shot, "chunk size {chunk}");
        }
    }

    #[test]
    fn scalar_reference_is_bit_identical() {
        let src: TritVec = "0X0X01X001X0101X111111110000X111XXXXXXXX01"
            .parse()
            .unwrap();
        for k in [4usize, 8, 16, 32] {
            let word = Encoder::new(k).unwrap().encode_stream(&src);
            let scalar = Encoder::new(k).unwrap().encode_stream_scalar(&src);
            assert_eq!(word, scalar, "K={k}");
        }
    }

    #[test]
    fn counting_sink_sizes_without_buffering() {
        use crate::stream::BitCounter;
        let src: TritVec = "0X0X01X001X0101X1111111100".parse().unwrap();
        let enc = Encoder::new(8).unwrap();
        let mut counter = BitCounter::default();
        let mut se = enc.stream_encoder(&mut counter);
        se.feed(src.as_slice());
        let totals = se.finish();
        let full = enc.encode_stream(&src);
        assert_eq!(counter.bits(), full.compressed_len() as u64);
        assert_eq!(totals.stats, *full.stats());
        assert_eq!(totals.stats.encoded_bits, counter.bits());
    }

    #[test]
    fn streaming_buffer_stays_sub_block() {
        // Feed one symbol at a time; the pending buffer must never reach K.
        let src: TritVec = "01X0101X0X0X01X011111111".parse().unwrap();
        let mut out = TritVec::new();
        let enc = Encoder::new(8).unwrap();
        let mut se = enc.stream_encoder(&mut out);
        for chunk in src.chunks(1) {
            se.feed(chunk);
            assert!(se.pending.len() < 8, "pending {} >= K", se.pending.len());
        }
        let totals = se.finish();
        let full = enc.encode_stream(&src);
        assert_eq!(&out, full.stream());
        assert_eq!(totals.source_len, src.len());
    }

    #[test]
    fn power_aware_keeps_all_x_blocks_on_the_previous_value() {
        // "1111 1111" then all-X: MinSize binds the X block to zeros
        // (C1, 1 bit); PowerAware spends one extra bit on C2 to avoid the
        // 1->0 seam transition.
        let src: TritVec = "11111111XXXXXXXX".parse().unwrap();
        let default = Encoder::new(8).unwrap().encode_stream(&src);
        assert_eq!(default.stats().count(Case::ZZ), 1);
        let quiet = Encoder::new(8)
            .unwrap()
            .with_case_select(CaseSelect::PowerAware { max_extra_bits: 1 })
            .encode_stream(&src);
        assert_eq!(quiet.stats().count(Case::OO), 2);
        assert_eq!(quiet.stats().count(Case::ZZ), 0);
        // Cost: one extra bit total.
        assert_eq!(quiet.compressed_len(), default.compressed_len() + 1);
    }

    #[test]
    fn power_aware_with_zero_budget_equals_min_size() {
        let src: TritVec = "11111111XXXXXXXX01X0XXXX".parse().unwrap();
        let a = Encoder::new(8).unwrap().encode_stream(&src);
        let b = Encoder::new(8)
            .unwrap()
            .with_case_select(CaseSelect::PowerAware { max_extra_bits: 0 })
            .encode_stream(&src);
        assert_eq!(a.stream(), b.stream());
    }

    #[test]
    fn power_aware_extra_cost_is_bounded_by_budget() {
        use ninec_testdata::gen::SyntheticProfile;
        let ts = SyntheticProfile::new("pw", 20, 120, 0.8).generate(5);
        for budget in [1usize, 4] {
            let default = Encoder::new(8).unwrap().encode_set(&ts);
            let quiet = Encoder::new(8)
                .unwrap()
                .with_case_select(CaseSelect::PowerAware {
                    max_extra_bits: budget,
                })
                .encode_set(&ts);
            let extra = quiet.compressed_len() as i64 - default.compressed_len() as i64;
            assert!(extra >= 0);
            assert!(
                extra as u64 <= budget as u64 * default.stats().blocks,
                "budget {budget}: extra {extra}"
            );
            // Still decodes compatibly.
            let dec = crate::session::DecodeSession::new().decode(&quiet).unwrap();
            let src = ts.as_stream();
            for i in 0..src.len() {
                let s = src.get(i).unwrap();
                if s.is_care() {
                    assert_eq!(Some(s), dec.get(i));
                }
            }
        }
    }

    #[test]
    fn power_aware_reduces_decoded_transitions() {
        use ninec_testdata::fill::{fill_trits, FillStrategy};
        use ninec_testdata::gen::SyntheticProfile;
        use ninec_testdata::power::wtm;
        let ts = SyntheticProfile::new("pwr", 30, 128, 0.8).generate(8);
        let measure = |select: CaseSelect| {
            let enc = Encoder::new(8)
                .unwrap()
                .with_case_select(select)
                .encode_set(&ts);
            let dec = crate::session::DecodeSession::new().decode(&enc).unwrap();
            wtm(&fill_trits(&dec, FillStrategy::MinTransition)
                .to_bitvec()
                .unwrap())
        };
        let default = measure(CaseSelect::MinSize);
        let quiet = measure(CaseSelect::PowerAware { max_extra_bits: 2 });
        assert!(
            quiet < default,
            "power-aware {quiet} should beat default {default}"
        );
    }
}

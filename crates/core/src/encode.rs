//! The 9C encoder.

use crate::block::HalfClass;
use crate::code::{Case, CodeTable, HalfSpec, ALL_CASES};
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// Case-selection policy among (near-)equal-cost alternatives.
///
/// A block with flexible halves (e.g. all-`X`) satisfies several cases at
/// different costs. [`CaseSelect::MinSize`] is the paper's policy: always
/// take the cheapest case. [`CaseSelect::PowerAware`] exploits the same
/// flexibility for scan power: among cases within `max_extra_bits` of the
/// cheapest, pick the one whose bound values introduce the fewest
/// transitions at the block-boundary and half-boundary seams — trading a
/// sliver of CR for quieter scan-in (the paper's §IV remark, made
/// concrete).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CaseSelect {
    /// The paper's greedy: cheapest case, ties to the lower case index.
    #[default]
    MinSize,
    /// Transition-minimizing selection within a size budget per block.
    PowerAware {
        /// How many extra encoded bits per block the selector may spend.
        max_extra_bits: usize,
    },
}

/// Per-case occurrence counts and size bookkeeping for one encoding run —
/// the paper's `N_1 … N_9` (Table VI) plus derived sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodeStats {
    /// Occurrences of each case, `C1` … `C9`.
    pub case_counts: [u64; 9],
    /// Total number of `K`-bit blocks encoded.
    pub blocks: u64,
    /// Total encoded bits `|T_E|` (codewords + verbatim payload).
    pub encoded_bits: u64,
    /// Don't-care symbols that survived into the payload (leftover X).
    pub leftover_x: u64,
}

impl EncodeStats {
    /// Occurrences of `case`.
    pub fn count(&self, case: Case) -> u64 {
        self.case_counts[case.index()]
    }

    /// Recomputes `|T_E|` from the counts via the paper's formula:
    /// `Σ N_i · (|C_i| + payload_i(K))`. Equals [`EncodeStats::encoded_bits`]
    /// for the table/K the stats were produced with.
    pub fn size_by_formula(&self, table: &CodeTable, k: usize) -> u64 {
        ALL_CASES
            .into_iter()
            .map(|c| self.count(c) * table.block_bits(c, k) as u64)
            .sum()
    }
}

impl fmt::Display for EncodeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for case in ALL_CASES {
            write!(f, "{}={} ", case.label(), self.count(case))?;
        }
        write!(f, "blocks={} |T_E|={}", self.blocks, self.encoded_bits)
    }
}

/// The result of compressing a test stream with 9C.
///
/// The compressed stream is itself three-valued: codeword bits are care
/// bits, but verbatim payload keeps its don't-cares — the "leftover X" the
/// paper trades off against compression ratio. Use
/// [`Encoded::to_bitvec`](Encoded::to_bitvec) to bind them before shipping
/// to an ATE.
#[derive(Debug, Clone, PartialEq)]
pub struct Encoded {
    k: usize,
    table: CodeTable,
    stream: TritVec,
    source_len: usize,
    stats: EncodeStats,
}

impl Encoded {
    /// Block size `K` used for encoding.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The code table used for encoding.
    pub fn table(&self) -> &CodeTable {
        &self.table
    }

    /// The compressed stream `T_E` (codewords are care bits, payload may
    /// contain `X`).
    pub fn stream(&self) -> &TritVec {
        &self.stream
    }

    /// Original (unpadded) length of the source stream, `|T_D|`.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// `|T_E|` in bits.
    pub fn compressed_len(&self) -> usize {
        self.stream.len()
    }

    /// Encoding statistics.
    pub fn stats(&self) -> &EncodeStats {
        &self.stats
    }

    /// Compression ratio in percent:
    /// `CR% = (|T_D| − |T_E|) / |T_D| · 100`. Negative when the code
    /// expands the data.
    pub fn compression_ratio(&self) -> f64 {
        if self.source_len == 0 {
            return 0.0;
        }
        (self.source_len as f64 - self.compressed_len() as f64) / self.source_len as f64 * 100.0
    }

    /// Leftover don't-cares as a percentage of `|T_D|` (the paper's LX%).
    pub fn leftover_x_percent(&self) -> f64 {
        if self.source_len == 0 {
            return 0.0;
        }
        self.stats.leftover_x as f64 / self.source_len as f64 * 100.0
    }

    /// Binds the leftover don't-cares with `strategy`, yielding the bit
    /// stream an ATE would store.
    pub fn to_bitvec(&self, strategy: ninec_testdata::fill::FillStrategy) -> ninec_testdata::bits::BitVec {
        ninec_testdata::fill::fill_trits(&self.stream, strategy)
            .to_bitvec()
            .expect("fill produces a fully specified stream")
    }
}

/// Error: invalid block size for 9C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidBlockSize {
    /// The rejected size.
    pub k: usize,
}

impl fmt::Display for InvalidBlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block size must be even and at least 4, got {}", self.k)
    }
}

impl std::error::Error for InvalidBlockSize {}

/// The 9C encoder for a fixed block size `K`.
///
/// # Examples
///
/// ```
/// use ninec::encode::Encoder;
/// use ninec_testdata::trit::TritVec;
///
/// let encoder = Encoder::new(8)?;
/// // One all-zero-compatible block and one all-ones block: "0" + "10".
/// let stream: TritVec = "0X0X00XX1111X111".parse()?;
/// let encoded = encoder.encode_stream(&stream);
/// assert_eq!(encoded.stream().to_string(), "010");
/// assert!(encoded.compression_ratio() > 80.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Encoder {
    k: usize,
    table: CodeTable,
    select: CaseSelect,
}

impl Encoder {
    /// Creates an encoder with the paper's code table.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] unless `k` is even and at least 4.
    pub fn new(k: usize) -> Result<Self, InvalidBlockSize> {
        Self::with_table(k, CodeTable::paper())
    }

    /// Creates an encoder with a custom (e.g. frequency-reassigned) table.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBlockSize`] unless `k` is even and at least 4.
    pub fn with_table(k: usize, table: CodeTable) -> Result<Self, InvalidBlockSize> {
        if k < 4 || k % 2 != 0 {
            return Err(InvalidBlockSize { k });
        }
        Ok(Self { k, table, select: CaseSelect::MinSize })
    }

    /// Sets the case-selection policy (see [`CaseSelect`]).
    pub fn with_case_select(mut self, select: CaseSelect) -> Self {
        self.select = select;
        self
    }

    /// Block size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The encoder's code table.
    pub fn table(&self) -> &CodeTable {
        &self.table
    }

    /// Compresses a flat symbol stream.
    ///
    /// The stream is padded with `X` to a multiple of `K`; the pad is
    /// free to encode (it extends the final block's halves) and the decoder
    /// drops it again via [`Encoded::source_len`].
    pub fn encode_stream(&self, stream: &TritVec) -> Encoded {
        let k = self.k;
        let source_len = stream.len();
        let padded_len = source_len.div_ceil(k) * k;
        let mut padded;
        let stream = if padded_len == source_len {
            stream
        } else {
            padded = stream.clone();
            for _ in source_len..padded_len {
                padded.push(Trit::X);
            }
            &padded
        };

        let mut out = TritVec::with_capacity(padded_len / 4);
        let mut stats = EncodeStats::default();
        let half = k / 2;
        // For power-aware selection: the value the scan chain last saw.
        let mut prev_last: Option<bool> = None;
        for start in (0..padded_len).step_by(k) {
            let left = HalfClass::classify(
                (start..start + half).map(|i| stream.get(i).expect("in range")),
            );
            let right = HalfClass::classify(
                (start + half..start + k).map(|i| stream.get(i).expect("in range")),
            );
            let case = self.select_case(stream, start, left, right, prev_last);
            stats.case_counts[case.index()] += 1;
            stats.blocks += 1;
            for bit in self.table.codeword(case).iter_bits() {
                out.push(Trit::from(bit));
            }
            let (ls, rs) = case.halves();
            for (spec, offset) in [(ls, 0), (rs, half)] {
                if spec == HalfSpec::Mismatch {
                    for i in start + offset..start + offset + half {
                        let t = stream.get(i).expect("in range");
                        if t.is_x() {
                            stats.leftover_x += 1;
                        }
                        out.push(t);
                    }
                }
            }
            prev_last = half_boundary_value(stream, start + half, half, rs, BlockEdge::Last);
        }
        stats.encoded_bits = out.len() as u64;
        Encoded {
            k,
            table: self.table.clone(),
            stream: out,
            source_len,
            stats,
        }
    }

    /// Compresses a test set as one stream, pattern after pattern — the
    /// single-scan-chain arrangement of the paper's Figure 4(a).
    pub fn encode_set(&self, set: &TestSet) -> Encoded {
        self.encode_stream(set.as_stream())
    }

    /// Picks the block's case under the configured selection policy.
    fn select_case(
        &self,
        stream: &TritVec,
        start: usize,
        left: HalfClass,
        right: HalfClass,
        prev_last: Option<bool>,
    ) -> Case {
        let k = self.k;
        let budget = match self.select {
            CaseSelect::MinSize => 0,
            CaseSelect::PowerAware { max_extra_bits } => max_extra_bits,
        };
        let mut candidates: Vec<(usize, Case)> = ALL_CASES
            .into_iter()
            .filter(|case| {
                let (ls, rs) = case.halves();
                left.satisfies(ls) && right.satisfies(rs)
            })
            .map(|case| (self.table.block_bits(case, k), case))
            .collect();
        let best_cost = candidates
            .iter()
            .map(|(c, _)| *c)
            .min()
            .expect("MM is always feasible");
        candidates.retain(|(c, _)| *c <= best_cost + budget);
        candidates
            .into_iter()
            .min_by_key(|&(cost, case)| {
                let penalty = match self.select {
                    CaseSelect::MinSize => 0,
                    CaseSelect::PowerAware { .. } => {
                        seam_transitions(stream, start, k, case, prev_last)
                    }
                };
                (penalty, cost, case.index())
            })
            .map(|(_, case)| case)
            .expect("candidate set is non-empty")
    }
}

/// Which edge of a half to inspect.
#[derive(Clone, Copy, PartialEq, Eq)]
enum BlockEdge {
    First,
    Last,
}

/// The concrete value a half presents at one of its edges after decoding,
/// or `None` when it is data-dependent (an `X` in a verbatim payload).
fn half_boundary_value(
    stream: &TritVec,
    half_start: usize,
    half: usize,
    spec: HalfSpec,
    edge: BlockEdge,
) -> Option<bool> {
    match spec {
        HalfSpec::Zero => Some(false),
        HalfSpec::One => Some(true),
        HalfSpec::Mismatch => {
            let idx = match edge {
                BlockEdge::First => half_start,
                BlockEdge::Last => half_start + half - 1,
            };
            stream.get(idx).and_then(Trit::value)
        }
    }
}

/// Transitions a case introduces at the previous-block seam and the
/// half-to-half seam (only seams whose two sides are both known count).
fn seam_transitions(
    stream: &TritVec,
    start: usize,
    k: usize,
    case: Case,
    prev_last: Option<bool>,
) -> usize {
    let half = k / 2;
    let (ls, rs) = case.halves();
    let left_first = half_boundary_value(stream, start, half, ls, BlockEdge::First);
    let left_last = half_boundary_value(stream, start, half, ls, BlockEdge::Last);
    let right_first = half_boundary_value(stream, start + half, half, rs, BlockEdge::First);
    let seam = |a: Option<bool>, b: Option<bool>| matches!((a, b), (Some(x), Some(y)) if x != y);
    seam(prev_last, left_first) as usize + seam(left_last, right_first) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(k: usize, s: &str) -> Encoded {
        Encoder::new(k).unwrap().encode_stream(&s.parse().unwrap())
    }

    #[test]
    fn rejects_bad_block_sizes() {
        assert!(Encoder::new(0).is_err());
        assert!(Encoder::new(2).is_err());
        assert!(Encoder::new(7).is_err());
        assert!(Encoder::new(4).is_ok());
    }

    #[test]
    fn all_zero_block_is_one_bit() {
        let e = enc(8, "0X00X0X0");
        assert_eq!(e.stream().to_string(), "0");
        assert_eq!(e.stats().count(Case::ZZ), 1);
        assert_eq!(e.stats().leftover_x, 0);
    }

    #[test]
    fn table_one_example_cases() {
        // K = 8 blocks exercising C2, C3, C4.
        let e = enc(8, "11111111");
        assert_eq!(e.stream().to_string(), "10");
        let e = enc(8, "0000X111");
        assert_eq!(e.stream().to_string(), "11010");
        let e = enc(8, "1X110000");
        assert_eq!(e.stream().to_string(), "11011");
    }

    #[test]
    fn mismatch_halves_travel_verbatim_with_their_x() {
        // Left 0-compatible, right mismatch "01X0": C5 + payload.
        let e = enc(8, "0X0X01X0");
        assert_eq!(e.stream().to_string(), "1110001X0");
        assert_eq!(e.stats().count(Case::ZM), 1);
        assert_eq!(e.stats().leftover_x, 1);
        assert!((e.leftover_x_percent() - 100.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn full_mismatch_block() {
        let e = enc(8, "01X0101X");
        assert_eq!(e.stream().to_string(), "110001X0101X");
        assert_eq!(e.stats().count(Case::MM), 1);
        assert_eq!(e.stats().leftover_x, 2);
    }

    #[test]
    fn padding_extends_last_block_with_x() {
        // 10 symbols at K = 8: second block is "01" + 6 X pads -> mismatch?
        // "01XXXXXX" halves: "01XX" mismatch? contains 0 and 1 -> yes, left
        // mismatch; right all-X -> MZ.
        let e = enc(8, "0000000001");
        assert_eq!(e.source_len(), 10);
        assert_eq!(e.stats().count(Case::ZZ), 1);
        assert_eq!(e.stats().count(Case::MZ), 1);
        // Stream: "0" + C6 "11101" + verbatim "01XX".
        assert_eq!(e.stream().to_string(), "01110101XX");
    }

    #[test]
    fn formula_matches_emitted_length() {
        let e = enc(8, "0X0X01X001X0101X111111110000X111");
        assert_eq!(
            e.stats().size_by_formula(e.table(), e.k()),
            e.compressed_len() as u64
        );
    }

    #[test]
    fn compression_ratio_sign() {
        // Highly compressible: all X.
        let e = enc(16, &"X".repeat(160));
        assert!(e.compression_ratio() > 90.0);
        // Incompressible: alternating cares -> every block MM, CR < 0.
        let s: String = std::iter::repeat("01").take(40).flat_map(|x| x.chars()).collect();
        let e = enc(8, &s);
        assert!(e.compression_ratio() < 0.0);
    }

    #[test]
    fn to_bitvec_binds_all_x() {
        use ninec_testdata::fill::FillStrategy;
        let e = enc(8, "0X0X01X0");
        let bits = e.to_bitvec(FillStrategy::Zero);
        assert_eq!(bits.to_string(), "111000100");
    }

    #[test]
    fn stats_display_mentions_all_cases() {
        let e = enc(8, "00000000");
        let s = e.stats().to_string();
        assert!(s.contains("C1=1") && s.contains("C9=0"));
    }

    #[test]
    fn empty_stream() {
        let e = enc(8, "");
        assert_eq!(e.compressed_len(), 0);
        assert_eq!(e.compression_ratio(), 0.0);
        assert_eq!(e.stats().blocks, 0);
    }

    #[test]
    fn power_aware_keeps_all_x_blocks_on_the_previous_value() {
        // "1111 1111" then all-X: MinSize binds the X block to zeros
        // (C1, 1 bit); PowerAware spends one extra bit on C2 to avoid the
        // 1->0 seam transition.
        let src: TritVec = "11111111XXXXXXXX".parse().unwrap();
        let default = Encoder::new(8).unwrap().encode_stream(&src);
        assert_eq!(default.stats().count(Case::ZZ), 1);
        let quiet = Encoder::new(8)
            .unwrap()
            .with_case_select(CaseSelect::PowerAware { max_extra_bits: 1 })
            .encode_stream(&src);
        assert_eq!(quiet.stats().count(Case::OO), 2);
        assert_eq!(quiet.stats().count(Case::ZZ), 0);
        // Cost: one extra bit total.
        assert_eq!(quiet.compressed_len(), default.compressed_len() + 1);
    }

    #[test]
    fn power_aware_with_zero_budget_equals_min_size() {
        let src: TritVec = "11111111XXXXXXXX01X0XXXX".parse().unwrap();
        let a = Encoder::new(8).unwrap().encode_stream(&src);
        let b = Encoder::new(8)
            .unwrap()
            .with_case_select(CaseSelect::PowerAware { max_extra_bits: 0 })
            .encode_stream(&src);
        assert_eq!(a.stream(), b.stream());
    }

    #[test]
    fn power_aware_extra_cost_is_bounded_by_budget() {
        use ninec_testdata::gen::SyntheticProfile;
        let ts = SyntheticProfile::new("pw", 20, 120, 0.8).generate(5);
        for budget in [1usize, 4] {
            let default = Encoder::new(8).unwrap().encode_set(&ts);
            let quiet = Encoder::new(8)
                .unwrap()
                .with_case_select(CaseSelect::PowerAware { max_extra_bits: budget })
                .encode_set(&ts);
            let extra = quiet.compressed_len() as i64 - default.compressed_len() as i64;
            assert!(extra >= 0);
            assert!(
                extra as u64 <= budget as u64 * default.stats().blocks,
                "budget {budget}: extra {extra}"
            );
            // Still decodes compatibly.
            let dec = crate::decode::decode(&quiet).unwrap();
            let src = ts.as_stream();
            for i in 0..src.len() {
                let s = src.get(i).unwrap();
                if s.is_care() {
                    assert_eq!(Some(s), dec.get(i));
                }
            }
        }
    }

    #[test]
    fn power_aware_reduces_decoded_transitions() {
        use ninec_testdata::fill::{fill_trits, FillStrategy};
        use ninec_testdata::gen::SyntheticProfile;
        use ninec_testdata::power::wtm;
        let ts = SyntheticProfile::new("pwr", 30, 128, 0.8).generate(8);
        let measure = |select: CaseSelect| {
            let enc = Encoder::new(8).unwrap().with_case_select(select).encode_set(&ts);
            let dec = crate::decode::decode(&enc).unwrap();
            wtm(&fill_trits(&dec, FillStrategy::MinTransition).to_bitvec().unwrap())
        };
        let default = measure(CaseSelect::MinSize);
        let quiet = measure(CaseSelect::PowerAware { max_extra_bits: 2 });
        assert!(
            quiet < default,
            "power-aware {quiet} should beat default {default}"
        );
    }
}

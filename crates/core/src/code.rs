//! The nine-codeword prefix code at the heart of the 9C technique.
//!
//! A `K`-bit block is split into two `K/2`-bit halves; each half is either
//! *uniform* (compatible with all-zeros or all-ones, don't-cares included)
//! or a *mismatch* (`U`: contains both a care-0 and a care-1 and must be
//! transmitted verbatim). The nine possible half combinations are the nine
//! [`Case`]s; a [`CodeTable`] assigns each case a prefix-free codeword.
//!
//! The paper fixes the codeword *lengths* — {1, 2, 4, 5, 5, 5, 5, 5, 5},
//! a Kraft-tight set with maximum length 5 — but not the bit patterns; this
//! module constructs them canonically.

use std::fmt;

/// What a codeword promises about one half of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HalfSpec {
    /// The half decodes to all zeros (its `X`s are bound to 0).
    Zero,
    /// The half decodes to all ones (its `X`s are bound to 1).
    One,
    /// The half is transmitted verbatim after the codeword (its `X`s
    /// survive as leftover don't-cares).
    Mismatch,
}

impl HalfSpec {
    /// `true` for [`HalfSpec::Mismatch`].
    pub fn is_mismatch(self) -> bool {
        self == HalfSpec::Mismatch
    }
}

/// One of the nine block cases of Table I of the paper.
///
/// Naming follows the halves: `Z` = all-zeros, `O` = all-ones, `M` =
/// mismatch; e.g. [`Case::ZM`] is the paper's case 5 ("left half 0, right
/// half mismatch").
///
/// # Examples
///
/// ```
/// use ninec::code::{Case, HalfSpec};
///
/// assert_eq!(Case::ZZ.index(), 0);
/// assert_eq!(Case::ZZ.label(), "C1");
/// assert_eq!(Case::ZM.halves(), (HalfSpec::Zero, HalfSpec::Mismatch));
/// assert_eq!(Case::MM.payload_bits(8), 8);
/// assert_eq!(Case::ZM.payload_bits(8), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Case {
    /// C1: both halves all-zeros.
    ZZ,
    /// C2: both halves all-ones.
    OO,
    /// C3: left all-zeros, right all-ones.
    ZO,
    /// C4: left all-ones, right all-zeros.
    OZ,
    /// C5: left all-zeros, right mismatch.
    ZM,
    /// C6: left mismatch, right all-zeros.
    MZ,
    /// C7: left all-ones, right mismatch.
    OM,
    /// C8: left mismatch, right all-ones.
    MO,
    /// C9: both halves mismatch.
    MM,
}

/// All nine cases in paper order (C1 … C9).
pub const ALL_CASES: [Case; 9] = [
    Case::ZZ,
    Case::OO,
    Case::ZO,
    Case::OZ,
    Case::ZM,
    Case::MZ,
    Case::OM,
    Case::MO,
    Case::MM,
];

impl Case {
    /// Zero-based index (`C1` → 0, …, `C9` → 8).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The paper's label, `"C1"` … `"C9"`.
    pub fn label(self) -> &'static str {
        ["C1", "C2", "C3", "C4", "C5", "C6", "C7", "C8", "C9"][self.index()]
    }

    /// Case from a zero-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 9`.
    pub fn from_index(index: usize) -> Case {
        ALL_CASES[index]
    }

    /// The (left, right) half specifications.
    pub fn halves(self) -> (HalfSpec, HalfSpec) {
        use HalfSpec::{Mismatch, One, Zero};
        match self {
            Case::ZZ => (Zero, Zero),
            Case::OO => (One, One),
            Case::ZO => (Zero, One),
            Case::OZ => (One, Zero),
            Case::ZM => (Zero, Mismatch),
            Case::MZ => (Mismatch, Zero),
            Case::OM => (One, Mismatch),
            Case::MO => (Mismatch, One),
            Case::MM => (Mismatch, Mismatch),
        }
    }

    /// Verbatim payload bits that follow the codeword, for block size `k`.
    pub fn payload_bits(self, k: usize) -> usize {
        let (l, r) = self.halves();
        (l.is_mismatch() as usize + r.is_mismatch() as usize) * (k / 2)
    }
}

impl fmt::Display for Case {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single prefix codeword: up to 16 bits, stored MSB-first in the low
/// bits of `bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Codeword {
    bits: u16,
    len: u8,
}

impl Codeword {
    /// Creates a codeword from its bit pattern (MSB-first in the low `len`
    /// bits) and length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or exceeds 16, or if `bits` has stray high bits.
    pub fn new(bits: u16, len: u8) -> Self {
        assert!(
            (1..=16).contains(&len),
            "codeword length {len} out of range"
        );
        assert!(
            len == 16 || bits < 1 << len,
            "codeword bits 0b{bits:b} do not fit in {len} bits"
        );
        Self { bits, len }
    }

    /// Length in bits.
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// Always `false`: codewords are at least one bit.
    pub fn is_empty(self) -> bool {
        false
    }

    /// Iterates the bits MSB-first.
    pub fn iter_bits(self) -> impl Iterator<Item = bool> {
        (0..self.len).rev().map(move |i| self.bits >> i & 1 == 1)
    }

    /// `true` if `self` is a prefix of `other` (or equal).
    pub fn is_prefix_of(self, other: Codeword) -> bool {
        self.len <= other.len && other.bits >> (other.len - self.len) == self.bits
    }
}

impl fmt::Display for Codeword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for bit in self.iter_bits() {
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

/// The canonical codeword lengths of the paper: C1=1, C2=2, C3..C8=5, C9=4.
pub const PAPER_LENGTHS: [u8; 9] = [1, 2, 5, 5, 5, 5, 5, 5, 4];

/// An assignment of prefix-free codewords to the nine cases.
///
/// # Examples
///
/// ```
/// use ninec::code::{Case, CodeTable};
///
/// let table = CodeTable::paper();
/// assert_eq!(table.codeword(Case::ZZ).to_string(), "0");
/// assert_eq!(table.codeword(Case::OO).to_string(), "10");
/// assert_eq!(table.codeword(Case::MM).len(), 4);
/// assert!(table.is_prefix_free());
/// // The length multiset is Kraft-tight.
/// assert!((table.kraft_sum() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeTable {
    words: [Codeword; 9],
}

impl CodeTable {
    /// The paper's code: lengths {1, 2, 5, 5, 5, 5, 5, 5, 4} assigned to
    /// C1…C9 in order, with canonical bit patterns.
    pub fn paper() -> Self {
        Self::from_lengths(&PAPER_LENGTHS).expect("paper lengths satisfy Kraft")
    }

    /// Builds a canonical prefix code with `lengths[i]` bits for case
    /// `C(i+1)`.
    ///
    /// Codewords are assigned shortest-first (ties broken by case index) as
    /// in canonical Huffman coding, which yields a prefix-free table for
    /// any length set with Kraft sum ≤ 1.
    ///
    /// # Errors
    ///
    /// Returns [`KraftViolation`] if the lengths overflow the Kraft
    /// inequality or any length is outside `1..=16`.
    pub fn from_lengths(lengths: &[u8; 9]) -> Result<Self, KraftViolation> {
        if lengths.iter().any(|&l| l == 0 || l > 16) {
            return Err(KraftViolation {
                kraft_64ths: u64::MAX,
            });
        }
        // Kraft check in units of 2^-16 to stay exact.
        let kraft: u64 = lengths.iter().map(|&l| 1u64 << (16 - l)).sum();
        if kraft > 1 << 16 {
            return Err(KraftViolation { kraft_64ths: kraft });
        }
        let mut order: Vec<usize> = (0..9).collect();
        order.sort_by_key(|&i| (lengths[i], i));
        let mut words = [Codeword::new(0, 1); 9];
        let mut code: u32 = 0;
        let mut prev_len: u8 = 0;
        for &i in &order {
            let len = lengths[i];
            code <<= len - prev_len;
            words[i] = Codeword::new(code as u16, len);
            code += 1;
            prev_len = len;
        }
        Ok(Self { words })
    }

    /// The codeword assigned to `case`.
    pub fn codeword(&self, case: Case) -> Codeword {
        self.words[case.index()]
    }

    /// The nine codeword lengths in case order.
    pub fn lengths(&self) -> [u8; 9] {
        let mut out = [0u8; 9];
        for (i, w) in self.words.iter().enumerate() {
            out[i] = w.len;
        }
        out
    }

    /// Total encoded bits for one block of `case` at block size `k`
    /// (codeword plus verbatim payload) — the paper's "Size (bits)" column.
    pub fn block_bits(&self, case: Case, k: usize) -> usize {
        self.codeword(case).len() + case.payload_bits(k)
    }

    /// `true` if no codeword is a prefix of another.
    pub fn is_prefix_free(&self) -> bool {
        for i in 0..9 {
            for j in 0..9 {
                if i != j && self.words[i].is_prefix_of(self.words[j]) {
                    return false;
                }
            }
        }
        true
    }

    /// `Σ 2^-len` over the nine codewords.
    pub fn kraft_sum(&self) -> f64 {
        self.words.iter().map(|w| 2f64.powi(-(w.len as i32))).sum()
    }

    /// Matches the longest-prefix codeword starting at `bits[start..]`,
    /// returning the case and consumed length.
    ///
    /// Returns `None` if no codeword matches (truncated or corrupt stream).
    pub fn match_at<F>(&self, mut bit_at: F) -> Option<(Case, usize)>
    where
        F: FnMut(usize) -> Option<bool>,
    {
        // Max length is 16; walk bit by bit comparing against all words.
        let mut acc: u16 = 0;
        for len in 1..=16u8 {
            let bit = bit_at(len as usize - 1)?;
            acc = acc << 1 | bit as u16;
            for (i, w) in self.words.iter().enumerate() {
                if w.len == len && w.bits == acc {
                    return Some((Case::from_index(i), len as usize));
                }
            }
        }
        None
    }
}

impl Default for CodeTable {
    fn default() -> Self {
        Self::paper()
    }
}

impl fmt::Display for CodeTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for case in ALL_CASES {
            writeln!(f, "{}: {}", case.label(), self.codeword(case))?;
        }
        Ok(())
    }
}

/// Error: a requested length set violates the Kraft inequality (or has an
/// out-of-range length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KraftViolation {
    kraft_64ths: u64,
}

impl fmt::Display for KraftViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codeword lengths violate the Kraft inequality or range")
    }
}

impl std::error::Error for KraftViolation {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_shape() {
        let t = CodeTable::paper();
        assert_eq!(t.lengths(), PAPER_LENGTHS);
        assert!(t.is_prefix_free());
        assert!((t.kraft_sum() - 1.0).abs() < 1e-12);
        // Shortest codes go to the paper's most frequent cases.
        assert_eq!(t.codeword(Case::ZZ).len(), 1);
        assert_eq!(t.codeword(Case::OO).len(), 2);
        assert_eq!(t.codeword(Case::MM).len(), 4);
    }

    #[test]
    fn paper_block_sizes_match_table_one() {
        // Table I, K = 8: sizes 1, 2, 5, 5, 9, 9, 9, 9, 12.
        let t = CodeTable::paper();
        let expected = [1, 2, 5, 5, 9, 9, 9, 9, 12];
        for (case, want) in ALL_CASES.into_iter().zip(expected) {
            assert_eq!(t.block_bits(case, 8), want, "{case}");
        }
    }

    #[test]
    fn canonical_construction_is_prefix_free_for_any_permutation() {
        // Rotate the paper lengths through all cases.
        let mut lengths = PAPER_LENGTHS;
        for _ in 0..9 {
            lengths.rotate_left(1);
            let t = CodeTable::from_lengths(&lengths).unwrap();
            assert!(t.is_prefix_free(), "lengths {lengths:?}");
            assert_eq!(t.lengths(), lengths);
        }
    }

    #[test]
    fn kraft_violation_rejected() {
        assert!(CodeTable::from_lengths(&[1, 1, 5, 5, 5, 5, 5, 5, 4]).is_err());
        assert!(CodeTable::from_lengths(&[0, 2, 5, 5, 5, 5, 5, 5, 4]).is_err());
        assert!(CodeTable::from_lengths(&[17, 2, 5, 5, 5, 5, 5, 5, 4]).is_err());
    }

    #[test]
    fn prefix_relation() {
        let a = Codeword::new(0b10, 2);
        let b = Codeword::new(0b1011, 4);
        let c = Codeword::new(0b1100, 4);
        assert!(a.is_prefix_of(b));
        assert!(!a.is_prefix_of(c));
        assert!(a.is_prefix_of(a));
        assert!(!b.is_prefix_of(a));
    }

    #[test]
    fn match_at_decodes_every_codeword() {
        let t = CodeTable::paper();
        for case in ALL_CASES {
            let w = t.codeword(case);
            let bits: Vec<bool> = w.iter_bits().collect();
            let (got, used) = t.match_at(|i| bits.get(i).copied()).unwrap();
            assert_eq!(got, case);
            assert_eq!(used, w.len());
        }
    }

    #[test]
    fn match_at_none_on_truncated_stream() {
        let t = CodeTable::paper();
        // "11" alone matches nothing (all codewords starting 11 have >= 4 bits).
        let bits = [true, true];
        assert_eq!(t.match_at(|i| bits.get(i).copied()), None);
    }

    #[test]
    fn payload_sizes() {
        assert_eq!(Case::ZZ.payload_bits(16), 0);
        assert_eq!(Case::ZM.payload_bits(16), 8);
        assert_eq!(Case::MO.payload_bits(16), 8);
        assert_eq!(Case::MM.payload_bits(16), 16);
    }

    #[test]
    fn case_indexing_roundtrip() {
        for (i, case) in ALL_CASES.into_iter().enumerate() {
            assert_eq!(case.index(), i);
            assert_eq!(Case::from_index(i), case);
            assert_eq!(case.label(), format!("C{}", i + 1));
        }
    }

    #[test]
    fn codeword_display_and_bits() {
        let w = Codeword::new(0b11010, 5);
        assert_eq!(w.to_string(), "11010");
        let bits: Vec<bool> = w.iter_bits().collect();
        assert_eq!(bits, vec![true, true, false, true, false]);
    }
}

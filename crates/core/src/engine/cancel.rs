//! Cooperative cancellation and deadlines for the decode data plane.
//!
//! A [`CancelToken`] is the engine's time-robustness primitive: an
//! `Arc`-shared atomic flag plus an optional deadline
//! [`Instant`](std::time::Instant), checked *between* jobs by the
//! [`exec`](super::exec) executor — never inside a segment decode, so
//! cancellation costs one atomic load + at most one clock read per job
//! and a segment's output is always either complete or absent.
//!
//! Tokens form a chain: [`child_with_deadline`](CancelToken::child_with_deadline)
//! derives a per-request token from a per-connection parent, so
//! cancelling the parent (the connection died) trips every outstanding
//! request token, while each request still carries its own deadline
//! (`min(client deadline, server budget)` in `ninec-serve`).
//!
//! What a trip means depends on the ladder rung that observes it:
//! strict mode surfaces a typed
//! [`DecodeError::Cancelled`]/[`DecodeError::DeadlineExceeded`], while
//! repair/salvage degrade the unfinished segments to
//! [`DamageReason::Cancelled`](super::frame::DamageReason::Cancelled)
//! erasures — a *partial* answer, consistent with salvage's contract
//! that damage becomes `X` runs, never a hang.

use crate::decode::DecodeError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// [`CancelToken::cancel`] was called (caller went away).
    Cancelled,
    /// The token's (or an ancestor's) deadline passed.
    DeadlineExceeded,
}

impl Trip {
    /// The typed strict-mode decode error for this trip cause.
    #[must_use]
    pub fn decode_error(self) -> DecodeError {
        match self {
            Trip::Cancelled => DecodeError::Cancelled,
            Trip::DeadlineExceeded => DecodeError::DeadlineExceeded,
        }
    }
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// A cloneable cancellation handle (see the module docs). Clones share
/// state: cancelling any clone trips them all.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl CancelToken {
    /// A token with no deadline; trips only via [`cancel`](Self::cancel).
    #[must_use]
    pub fn new() -> Self {
        Self::build(None, None)
    }

    /// A token that trips once `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline), None)
    }

    /// A token that trips `budget` from now.
    #[must_use]
    pub fn after(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Derives a child that trips when *either* this token trips or the
    /// child's own `deadline` (if any) passes. Cancelling the child does
    /// not affect the parent.
    #[must_use]
    pub fn child_with_deadline(&self, deadline: Option<Instant>) -> Self {
        Self::build(deadline, Some(self.clone()))
    }

    fn build(deadline: Option<Instant>, parent: Option<CancelToken>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
                parent,
            }),
        }
    }

    /// Trips this token (and every child derived from it).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` when [`cancel`](Self::cancel) was called on this token or
    /// an ancestor — deadline expiry does **not** set this.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self
                .inner
                .parent
                .as_ref()
                .is_some_and(CancelToken::is_cancelled)
    }

    /// This token's own deadline, if any (ancestors keep their own).
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Why the token is tripped right now, or `None` while it is live.
    /// Explicit cancellation wins over a passed deadline: a caller that
    /// hung up is reported as [`Trip::Cancelled`] even after its budget
    /// also ran out.
    #[must_use]
    pub fn trip(&self) -> Option<Trip> {
        if self.is_cancelled() {
            return Some(Trip::Cancelled);
        }
        let mut node = Some(self);
        while let Some(token) = node {
            if let Some(deadline) = token.inner.deadline {
                if Instant::now() >= deadline {
                    return Some(Trip::DeadlineExceeded);
                }
            }
            node = token.inner.parent.as_ref();
        }
        None
    }

    /// `true` when the token has tripped for any reason.
    #[must_use]
    pub fn is_tripped(&self) -> bool {
        self.trip().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_tripped());
        assert!(!t.is_cancelled());
        assert_eq!(t.trip(), None);
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let clone = t.clone();
        t.cancel();
        assert_eq!(clone.trip(), Some(Trip::Cancelled));
        assert!(clone.is_cancelled());
    }

    #[test]
    fn passed_deadline_trips_as_deadline_exceeded() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.trip(), Some(Trip::DeadlineExceeded));
        assert!(!t.is_cancelled(), "deadline expiry is not a cancel");
        let future = CancelToken::after(Duration::from_secs(3600));
        assert_eq!(future.trip(), None);
    }

    #[test]
    fn explicit_cancel_wins_over_a_passed_deadline() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.trip(), Some(Trip::Cancelled));
    }

    #[test]
    fn parent_trip_propagates_to_children_but_not_back() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(None);
        assert_eq!(child.trip(), None);
        parent.cancel();
        assert_eq!(child.trip(), Some(Trip::Cancelled));

        let parent = CancelToken::new();
        let child = parent.child_with_deadline(None);
        child.cancel();
        assert_eq!(parent.trip(), None, "child cancel must not trip parent");
    }

    #[test]
    fn child_deadline_is_independent_of_the_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(child.trip(), Some(Trip::DeadlineExceeded));
        assert_eq!(parent.trip(), None);
        // And an expired *parent* deadline trips the child.
        let parent = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let child = parent.child_with_deadline(None);
        assert_eq!(child.trip(), Some(Trip::DeadlineExceeded));
    }

    #[test]
    fn trip_causes_map_to_typed_decode_errors() {
        assert_eq!(Trip::Cancelled.decode_error(), DecodeError::Cancelled);
        assert_eq!(
            Trip::DeadlineExceeded.decode_error(),
            DecodeError::DeadlineExceeded
        );
    }
}

//! GF(2^8) Reed–Solomon erasure coding for `9CSF` frame-v3 parity groups.
//!
//! Frame v3 groups data segments into parity groups of `g` members
//! protected by `r` parity shards. The code is a **systematic**
//! Reed–Solomon code over GF(256), built by polynomial evaluation: the
//! `g` data shards are read as the values of a degree `< g` polynomial
//! (per byte position) at the field points `0..g`, and parity shard `j`
//! is that polynomial evaluated at point `g + j`. Any `g` of the `g + r`
//! shards therefore determine the polynomial — and with them every
//! erased shard — which is the MDS property: up to `r` erased data
//! shards per group are recoverable, provided at least `g` shards
//! survive.
//!
//! Evaluation-point construction (instead of a raw Vandermonde parity
//! block) guarantees every square submatrix used for reconstruction is a
//! product of invertible Lagrange factors, so recovery can never hit a
//! singular system. Encoding stays systematic: the data shards are
//! stored verbatim, parity rides behind them, and a `parity = 0` frame
//! is byte-compatible with v2 on the wire apart from the header.
//!
//! The field is GF(2^8) with the AES-adjacent reduction polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`) and generator `0x02`; tables
//! are built at compile time, mirroring the const-table style of the
//! frame CRC and the dense-row design of the GF(2) solver in
//! `ninec-bist` (`gf2.rs`), its base-field sibling.
//!
//! Shards passed to [`ParityCoder::encode`] / [`ParityCoder::reconstruct`]
//! may be *shorter* than the group's shard length — they are implicitly
//! zero-padded, so ragged segment lengths and short final groups need no
//! padding copies on the caller's side.

use std::fmt;

/// Ceiling on `g + r`: the evaluation points are distinct GF(256)
/// elements `0..g+r`, so a group plus its parity can span at most 255
/// shards (one point is kept in reserve).
pub const MAX_SHARDS: usize = 255;

/// `alpha^i` for `i in 0..510` (doubled so `EXP[log a + log b]` needs no
/// modular reduction), with `alpha = 0x02` and reduction by `0x11D`.
const EXP: [u8; 510] = {
    let mut exp = [0u8; 510];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 510 {
        exp[i] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    exp
};

/// `log_alpha(v)` for `v in 1..=255`; `LOG[0]` is a sentinel and never
/// read (multiplication short-circuits on zero operands).
const LOG: [u8; 256] = {
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= 0x11D;
        }
        i += 1;
    }
    log
};

/// GF(256) product. Addition in the field is plain XOR.
#[must_use]
#[inline]
pub fn gf_mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
}

/// GF(256) multiplicative inverse. `gf_inv(0)` has no mathematical
/// meaning and returns `0`; the coder only inverts differences of
/// *distinct* evaluation points, which are never zero.
#[must_use]
#[inline]
pub fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    EXP[255 - LOG[a as usize] as usize]
}

/// GF(256) quotient `a / b` (with the same zero convention as
/// [`gf_inv`]).
#[must_use]
#[inline]
pub fn gf_div(a: u8, b: u8) -> u8 {
    gf_mul(a, gf_inv(b))
}

/// The 256-entry product table of a fixed scalar — turns the per-byte
/// inner loop of encode/reconstruct into a table lookup + XOR.
fn mul_table(c: u8) -> [u8; 256] {
    let mut t = [0u8; 256];
    if c == 0 {
        return t;
    }
    for (b, slot) in t.iter_mut().enumerate() {
        *slot = gf_mul(c, b as u8);
    }
    t
}

/// Typed error for an invalid parity-group configuration or an
/// unrecoverable erasure pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EccError {
    /// `g` and `r` together exceed [`MAX_SHARDS`], or `g` is zero.
    BadGeometry {
        /// Data shards per group.
        g: usize,
        /// Parity shards per group.
        r: usize,
    },
    /// Fewer than `g` shards survive in the group: the erasures exceed
    /// the code's correction budget.
    NotEnoughShards {
        /// Surviving shards.
        have: usize,
        /// Shards required (`g`).
        need: usize,
    },
    /// The shard slice handed to [`ParityCoder::reconstruct`] does not
    /// hold exactly `g + r` slots.
    ShardCountMismatch {
        /// Slots provided.
        got: usize,
        /// Slots expected (`g + r`).
        expected: usize,
    },
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::BadGeometry { g, r } => {
                write!(
                    f,
                    "invalid parity geometry g={g} r={r} (need 1 <= g and g + r <= {MAX_SHARDS})"
                )
            }
            EccError::NotEnoughShards { have, need } => {
                write!(
                    f,
                    "unrecoverable erasures: {have} shards survive, {need} required"
                )
            }
            EccError::ShardCountMismatch { got, expected } => {
                write!(f, "shard slice holds {got} slots, group expects {expected}")
            }
        }
    }
}

impl std::error::Error for EccError {}

/// A systematic RS-over-GF(256) coder for one parity geometry `(g, r)`.
///
/// The encoder matrix (the `r × g` Lagrange evaluation rows) is computed
/// once at construction; [`encode`](ParityCoder::encode) and
/// [`reconstruct`](ParityCoder::reconstruct) are then pure table-driven
/// byte loops.
#[derive(Debug, Clone)]
pub struct ParityCoder {
    g: usize,
    r: usize,
    /// Row-major `r × g`: `rows[j * g + i]` is data shard `i`'s
    /// coefficient in parity shard `j`.
    rows: Vec<u8>,
}

/// Lagrange basis coefficient `L_s(x)` for target point `x` over the
/// basis points `points`, where `s = points[sel]`. All points must be
/// distinct (guaranteed by construction — they are distinct field
/// elements `0..g+r`).
fn lagrange_coeff(x: u8, points: &[u8], sel: usize) -> u8 {
    let xs = points[sel];
    let mut num = 1u8;
    let mut den = 1u8;
    for (m, &xm) in points.iter().enumerate() {
        if m == sel {
            continue;
        }
        num = gf_mul(num, x ^ xm);
        den = gf_mul(den, xs ^ xm);
    }
    gf_div(num, den)
}

impl ParityCoder {
    /// Builds the coder for groups of `g` data shards and `r` parity
    /// shards.
    ///
    /// # Errors
    ///
    /// [`EccError::BadGeometry`] unless `1 <= g`, `1 <= r` and
    /// `g + r <= 255`.
    pub fn new(g: usize, r: usize) -> Result<Self, EccError> {
        if g == 0 || r == 0 || g + r > MAX_SHARDS {
            return Err(EccError::BadGeometry { g, r });
        }
        let data_points: Vec<u8> = (0..g as u8).collect();
        let mut rows = Vec::with_capacity(r * g);
        for j in 0..r {
            let x = (g + j) as u8;
            for i in 0..g {
                rows.push(lagrange_coeff(x, &data_points, i));
            }
        }
        Ok(Self { g, r, rows })
    }

    /// Data shards per group.
    #[must_use]
    pub fn g(&self) -> usize {
        self.g
    }

    /// Parity shards per group.
    #[must_use]
    pub fn r(&self) -> usize {
        self.r
    }

    /// Encodes the `r` parity shards, each `shard_len` bytes, over up to
    /// `g` data shards. Shards shorter than `shard_len` (including a
    /// `data` slice shorter than `g`, the short-final-group case) are
    /// implicitly zero-padded — a zero shard contributes nothing, so no
    /// padding copies are made.
    #[must_use]
    pub fn encode(&self, data: &[&[u8]], shard_len: usize) -> Vec<Vec<u8>> {
        let mut parity = vec![vec![0u8; shard_len]; self.r];
        for (j, out) in parity.iter_mut().enumerate() {
            for (i, shard) in data.iter().enumerate().take(self.g) {
                let c = self.rows[j * self.g + i];
                if c == 0 {
                    continue;
                }
                let t = mul_table(c);
                for (o, &b) in out.iter_mut().zip(shard.iter()) {
                    *o ^= t[b as usize];
                }
            }
        }
        parity
    }

    /// Reconstructs every erased **data** shard of one group.
    ///
    /// `shards` holds the group's `g + r` slots in order — data shards
    /// `0..g`, then parity shards `g..g+r`. `Some` slots are surviving
    /// shards (shorter-than-`shard_len` shards are implicitly
    /// zero-padded); `None` slots are erasures. Returns
    /// `(data_index, bytes)` for every erased data slot, each exactly
    /// `shard_len` bytes.
    ///
    /// # Errors
    ///
    /// [`EccError::ShardCountMismatch`] when `shards.len() != g + r`;
    /// [`EccError::NotEnoughShards`] when fewer than `g` slots survive
    /// (the erasures exceed the `r`-erasure correction budget).
    pub fn reconstruct(
        &self,
        shards: &[Option<&[u8]>],
        shard_len: usize,
    ) -> Result<Vec<(usize, Vec<u8>)>, EccError> {
        if shards.len() != self.g + self.r {
            return Err(EccError::ShardCountMismatch {
                got: shards.len(),
                expected: self.g + self.r,
            });
        }
        let missing: Vec<usize> = shards[..self.g]
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.is_none().then_some(i))
            .collect();
        if missing.is_empty() {
            return Ok(Vec::new());
        }
        // Basis: the first `g` surviving shards (data or parity alike).
        let mut basis_points: Vec<u8> = Vec::with_capacity(self.g);
        let mut basis_shards: Vec<&[u8]> = Vec::with_capacity(self.g);
        for (i, slot) in shards.iter().enumerate() {
            if let Some(bytes) = slot {
                basis_points.push(i as u8);
                basis_shards.push(bytes);
                if basis_points.len() == self.g {
                    break;
                }
            }
        }
        if basis_points.len() < self.g {
            return Err(EccError::NotEnoughShards {
                have: shards.iter().filter(|s| s.is_some()).count(),
                need: self.g,
            });
        }
        let mut out = Vec::with_capacity(missing.len());
        for &t in &missing {
            let mut rebuilt = vec![0u8; shard_len];
            for (sel, shard) in basis_shards.iter().enumerate() {
                let c = lagrange_coeff(t as u8, &basis_points, sel);
                if c == 0 {
                    continue;
                }
                let table = mul_table(c);
                for (o, &b) in rebuilt.iter_mut().zip(shard.iter()) {
                    *o ^= table[b as usize];
                }
            }
            out.push((t, rebuilt));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold_on_a_sample() {
        // Exhaustive over a stride-sampled triple set: associativity,
        // commutativity, distributivity, inverses.
        let vals: Vec<u8> = (0u16..256).step_by(7).map(|v| v as u8).collect();
        for &a in &vals {
            for &b in &vals {
                assert_eq!(gf_mul(a, b), gf_mul(b, a));
                for &c in &vals {
                    assert_eq!(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
                    assert_eq!(gf_mul(a, b ^ c), gf_mul(a, b) ^ gf_mul(a, c));
                }
            }
        }
        for a in 1u16..=255 {
            let a = a as u8;
            assert_eq!(gf_mul(a, gf_inv(a)), 1, "inv({a})");
            assert_eq!(gf_div(a, a), 1);
        }
        assert_eq!(gf_mul(0, 77), 0);
        assert_eq!(gf_inv(0), 0);
    }

    #[test]
    fn exp_log_are_mutually_inverse() {
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
        // The generator has full order: EXP hits every nonzero element.
        let mut seen = [false; 256];
        for i in 0..255usize {
            seen[EXP[i] as usize] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
        assert!(!seen[0]);
    }

    #[test]
    fn bad_geometry_is_rejected() {
        assert!(matches!(
            ParityCoder::new(0, 1),
            Err(EccError::BadGeometry { .. })
        ));
        assert!(matches!(
            ParityCoder::new(4, 0),
            Err(EccError::BadGeometry { .. })
        ));
        assert!(matches!(
            ParityCoder::new(200, 56),
            Err(EccError::BadGeometry { .. })
        ));
        assert!(ParityCoder::new(200, 55).is_ok());
        assert!(ParityCoder::new(1, 1).is_ok());
    }

    #[test]
    fn g1_parity_is_replication() {
        let coder = ParityCoder::new(1, 2).expect("valid geometry");
        let data = [0xABu8, 0x00, 0xFF, 0x12];
        let parity = coder.encode(&[&data], 4);
        assert_eq!(parity.len(), 2);
        assert_eq!(parity[0], data);
        assert_eq!(parity[1], data);
        // Losing the data shard recovers it from either replica.
        let rec = coder
            .reconstruct(&[None, Some(&parity[0]), None], 4)
            .expect("recoverable");
        assert_eq!(rec, vec![(0usize, data.to_vec())]);
    }

    #[test]
    fn roundtrip_recovers_any_erasure_within_budget() {
        // Deterministic xorshift so the test needs no external RNG.
        let mut state = 0x9E37_79B9u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        for &(g, r) in &[(1usize, 1usize), (2, 1), (4, 2), (5, 3), (8, 4), (16, 2)] {
            let coder = ParityCoder::new(g, r).expect("valid geometry");
            let shard_len = 37;
            let data: Vec<Vec<u8>> = (0..g)
                .map(|_| (0..shard_len).map(|_| next() as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
            let parity = coder.encode(&refs, shard_len);
            // Erase up to r shards (data and/or parity), 50 random patterns.
            for _ in 0..50 {
                let erase_n = (next() as usize % r) + 1;
                let mut slots: Vec<Option<&[u8]>> = refs
                    .iter()
                    .map(|s| Some(*s))
                    .chain(parity.iter().map(|p| Some(p.as_slice())))
                    .collect();
                let mut erased = Vec::new();
                while erased.len() < erase_n {
                    let i = next() as usize % (g + r);
                    if slots[i].is_some() {
                        slots[i] = None;
                        erased.push(i);
                    }
                }
                let rec = coder
                    .reconstruct(&slots, shard_len)
                    .expect("within erasure budget");
                for (idx, bytes) in rec {
                    assert!(idx < g);
                    assert_eq!(bytes, data[idx], "g={g} r={r} shard {idx}");
                }
            }
        }
    }

    #[test]
    fn over_budget_erasures_are_a_typed_error() {
        let coder = ParityCoder::new(4, 2).expect("valid geometry");
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        let parity = coder.encode(&refs, 8);
        let mut slots: Vec<Option<&[u8]>> = refs
            .iter()
            .map(|s| Some(*s))
            .chain(parity.iter().map(|p| Some(p.as_slice())))
            .collect();
        slots[0] = None;
        slots[1] = None;
        slots[4] = None; // three erasures, r = 2
        assert_eq!(
            coder.reconstruct(&slots, 8),
            Err(EccError::NotEnoughShards { have: 3, need: 4 })
        );
        // Wrong slot count is typed too.
        assert!(matches!(
            coder.reconstruct(&slots[..5], 8),
            Err(EccError::ShardCountMismatch {
                got: 5,
                expected: 6
            })
        ));
    }

    #[test]
    fn short_shards_are_zero_padded() {
        let coder = ParityCoder::new(3, 1).expect("valid geometry");
        let a = [1u8, 2, 3, 4];
        let b = [9u8, 8]; // short: padded with two zero bytes
        let c = [5u8, 5, 5, 5];
        let parity = coder.encode(&[&a, &b, &c], 4);
        let b_padded = [9u8, 8, 0, 0];
        let parity_padded = coder.encode(&[&a, &b_padded, &c], 4);
        assert_eq!(parity, parity_padded);
        // Reconstruction of the short shard yields the padded form.
        let rec = coder
            .reconstruct(&[Some(&a), None, Some(&c), Some(&parity[0])], 4)
            .expect("recoverable");
        assert_eq!(rec, vec![(1usize, b_padded.to_vec())]);
    }

    #[test]
    fn short_final_group_treats_absent_members_as_zero() {
        let coder = ParityCoder::new(4, 1).expect("valid geometry");
        let a = [7u8; 6];
        let b = [3u8; 6];
        // Only 2 of 4 members exist.
        let parity_short = coder.encode(&[&a, &b], 6);
        let zero = [0u8; 6];
        let parity_full = coder.encode(&[&a, &b, &zero, &zero], 6);
        assert_eq!(parity_short, parity_full);
        // Erasing a real member still reconstructs when the virtual
        // members are declared as present empty shards.
        let rec = coder
            .reconstruct(
                &[Some(&a), None, Some(&[]), Some(&[]), Some(&parity_short[0])],
                6,
            )
            .expect("recoverable");
        assert_eq!(rec, vec![(1usize, b.to_vec())]);
    }

    #[test]
    fn errors_display() {
        for e in [
            EccError::BadGeometry { g: 0, r: 1 },
            EccError::NotEnoughShards { have: 1, need: 2 },
            EccError::ShardCountMismatch {
                got: 1,
                expected: 2,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! A reusable, std-only work-stealing executor with two job priorities.
//!
//! This is the scheduling core the segment [`pool`](super::pool) wraps:
//! all jobs are known up front, none spawns new ones, and every job
//! writes exactly one result slot, returned in job-index order. What the
//! executor adds over a plain pool is a **two-level priority**: every
//! job is seeded as [`Priority::High`] or [`Priority::Low`], and no
//! worker starts a `Low` job while any `High` job is still queued
//! anywhere. The decode pipeline uses this to keep payload decodes
//! (latency-critical, always needed) ahead of repair/salvage backfill
//! work, and it is the executor a future `ninec-serve` can multiplex
//! connections onto.
//!
//! Scheduling shape (per priority level, identical to the old pool):
//! per-worker deques seeded round-robin, LIFO pops from the owner, FIFO
//! steals from siblings. A worker drains `High` — its own deque, then
//! every sibling's — before touching any `Low` deque; since jobs are
//! only ever removed after seeding, a worker that finds every `High`
//! deque empty has proof that every `High` job has already *started*.
//!
//! Determinism: results are keyed by job index and collected in index
//! order, so the returned vector is independent of worker interleaving.
//! `threads <= 1` (or a single job) short-circuits to a serial in-caller
//! loop that runs every `High` job in index order, then every `Low` job
//! in index order.
//!
//! Panic isolation: every job runs under
//! [`std::panic::catch_unwind`], so a panicking closure poisons only its
//! own result slot — it surfaces as a [`JobPanic`] value while every
//! other job's result is delivered intact, and the index-ordered merge
//! can never deadlock on a missing slot. The serial fallback catches
//! panics the same way, so `threads = 1` isolates identically to
//! `threads = 8`.
//!
//! Cancellation: [`run_cancellable`] threads an optional
//! [`CancelToken`] through both paths. The token is checked *between*
//! jobs — at the serial loop boundary and at the pooled pop boundary —
//! so a tripped token abandons every not-yet-started job as
//! [`JobOutcome::Cancelled`] (its closure never runs) while jobs
//! already in flight finish and store real results. The deques then
//! drain at queue-op speed, which is what lets `ninec-serve` reclaim a
//! worker the moment a caller hangs up or a deadline passes.
//!
//! Telemetry (batched at job boundaries, never inside a job): each
//! worker publishes its queue depth to the
//! `ninec.engine.worker.<i>.queue_depth` gauge after every pop, and its
//! steal/completion/busy-time tallies once at exit
//! (`ninec.engine.steals`, `ninec.engine.segments`,
//! `ninec.engine.worker.<i>.busy_ns`). On top of the aggregates, every
//! job runs inside a flight-recorder `"job"` span stamped with the
//! worker id, the job's priority class and its queue-vs-steal
//! provenance — the Fig 4c load imbalance as a reconstructable
//! timeline. Workers inherit the submitting thread's trace context, and
//! a caught panic flushes the worker's ring into the global recorder
//! before the poisoned slot is reported.

use super::cancel::CancelToken;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Upper bound on worker threads — keeps the per-worker gauge family
/// bounded and guards against absurd `NINEC_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// Jobs admitted to any in-flight [`run_prioritized`] call, process-wide.
static ACTIVE_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Current executor load: the number of jobs admitted to (queued on or
/// running inside) every in-flight [`run_prioritized`] call in this
/// process. The count is batch-grained — a call contributes all of its
/// jobs from entry until *every* slot is merged — which is exactly the
/// "work still outstanding" signal an admission controller wants:
/// `ninec-serve` consults it (together with its own decode window) to
/// decide when to shed repair/salvage backfill under load.
#[must_use]
pub fn active_jobs() -> usize {
    ACTIVE_JOBS.load(Ordering::Relaxed)
}

/// RAII registration of one batch on the [`active_jobs`] tally. Drop
/// (including during an unwind out of the executor) always retires the
/// batch, so the gauge can never leak upward.
struct ActiveBatch {
    jobs: usize,
}

impl ActiveBatch {
    fn admit(jobs: usize) -> Self {
        ACTIVE_JOBS.fetch_add(jobs, Ordering::Relaxed);
        ActiveBatch { jobs }
    }
}

impl Drop for ActiveBatch {
    fn drop(&mut self) {
        ACTIVE_JOBS.fetch_sub(self.jobs, Ordering::Relaxed);
    }
}

/// Scheduling class of one job. `High` jobs are guaranteed to *start*
/// before any `Low` job whose worker could see them queued; `Low` jobs
/// are backfill that must never starve the critical path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Critical-path work (segment decodes): always scheduled first.
    High,
    /// Backfill work (repair reconstruction, salvage bookkeeping):
    /// scheduled only when no `High` job is queued.
    Low,
}

/// A caught panic from one executor job, carrying the panic message when
/// the payload was a string (the common `panic!("…")` case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload rendered as text, or a placeholder for
    /// non-string payloads.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// What became of one submitted job: its value, a caught panic, or an
/// abandonment because the batch's [`CancelToken`] tripped before the
/// job started. Jobs are never interrupted mid-run — a `Cancelled` slot
/// means the closure was **never invoked** for that index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome<T> {
    /// The job ran to completion.
    Done(T),
    /// The job panicked; the panic was caught at the slot boundary.
    Panicked(JobPanic),
    /// The batch's [`CancelToken`] tripped before this job started.
    Cancelled,
}

/// Runs `thunk` under `catch_unwind`, converting a panic payload into a
/// [`JobPanic`]. The closure owns (or safely shares) its data, so
/// observing state after a caught panic is sound: a poisoned job's
/// partial effects never escape its own result slot.
fn run_caught<T>(thunk: impl FnOnce() -> T) -> Result<T, JobPanic> {
    match catch_unwind(AssertUnwindSafe(thunk)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(JobPanic { message })
        }
    }
}

/// One worker's pair of deques, one per priority level.
#[derive(Default)]
struct Queues {
    high: VecDeque<usize>,
    low: VecDeque<usize>,
}

/// Locks a worker's queues, recovering from poisoning. Jobs run
/// *outside* the queue locks (the critical sections below are plain
/// `VecDeque` ops that cannot panic), so a poisoned mutex can only mean
/// a job panicked elsewhere — the queue data itself is still consistent.
fn lock_queues<'a>(queues: &'a [Mutex<Queues>], w: usize) -> MutexGuard<'a, Queues> {
    match queues[w].lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f(0..jobs)` across at most `threads` workers, scheduling each
/// job at `priority(job)`, and returns the results in job-index order —
/// slot `i` holds `Ok(f(i))`, or `Err(JobPanic)` when `f(i)` panicked.
///
/// Priorities affect only *when* a job starts, never the returned
/// vector. No `Low` job starts while a `High` job is still queued on any
/// worker; once a `Low` job has been popped, every `High` job has
/// already started (all jobs are seeded before the workers spawn and
/// queues only drain).
///
/// With `threads <= 1` or fewer than two jobs the closure runs serially
/// on the calling thread: every `High` job in index order, then every
/// `Low` job in index order.
pub fn run_prioritized<T, F, P>(
    threads: usize,
    jobs: usize,
    priority: P,
    f: F,
) -> Vec<Result<T, JobPanic>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize) -> Priority,
{
    run_cancellable(threads, jobs, priority, None, f)
        .into_iter()
        .map(|out| match out {
            JobOutcome::Done(v) => Ok(v),
            JobOutcome::Panicked(p) => Err(p),
            // Unreachable without a token; stay total instead of panicking.
            JobOutcome::Cancelled => Err(JobPanic {
                message: "job cancelled without a cancel token".to_string(),
            }),
        })
        .collect()
}

/// [`run_prioritized`] with cooperative cancellation: `cancel` (when
/// given) is checked **between** jobs — once the token trips, every job
/// not yet started resolves to [`JobOutcome::Cancelled`] without its
/// closure running, while jobs already in flight finish normally. The
/// serial fallback checks the token at exactly the same boundary, so
/// `threads = 1` cancels identically to `threads = 8`. A token that is
/// already tripped on entry yields an all-`Cancelled` vector with zero
/// closure invocations.
pub fn run_cancellable<T, F, P>(
    threads: usize,
    jobs: usize,
    priority: P,
    cancel: Option<&CancelToken>,
    f: F,
) -> Vec<JobOutcome<T>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
    P: Fn(usize) -> Priority,
{
    let threads = threads.clamp(1, MAX_THREADS);
    // Batch-grained load registration: all `jobs` count as outstanding
    // until the index-ordered merge below completes (RAII, unwind-safe).
    let _batch = ActiveBatch::admit(jobs);
    if threads <= 1 || jobs <= 1 {
        // The serial fallback isolates panics exactly like the pooled
        // path and honors the same High-before-Low start order. On the
        // trace timeline it is worker 0 (restored afterwards: the
        // caller's thread outlives this call).
        let prev_worker = ninec_obs::set_trace_worker(0);
        let mut busy = 0u64;
        let mut slots: Vec<Option<JobOutcome<T>>> = (0..jobs).map(|_| None).collect();
        for want in [Priority::High, Priority::Low] {
            for (i, slot) in slots.iter_mut().enumerate() {
                if priority(i) == want {
                    // The cancellation boundary: checked between jobs,
                    // never mid-decode, matching the pooled path.
                    if cancel.is_some_and(CancelToken::is_tripped) {
                        *slot = Some(JobOutcome::Cancelled);
                        continue;
                    }
                    let _job_span = ninec_obs::trace_span_scope(
                        "job",
                        ninec_obs::NO_SEGMENT,
                        ninec_obs::TracePayload::Job {
                            index: i as u32,
                            high: want == Priority::High,
                            stolen: false,
                        },
                    );
                    let start = std::time::Instant::now();
                    let out = run_caught(|| f(i));
                    busy += start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    if out.is_err() {
                        // Park the timeline so far before reporting the
                        // poisoned slot.
                        ninec_obs::flush_thread_trace();
                    }
                    *slot = Some(match out {
                        Ok(v) => JobOutcome::Done(v),
                        Err(p) => JobOutcome::Panicked(p),
                    });
                }
            }
        }
        crate::metrics::publish_worker_busy(0, busy);
        let _ = ninec_obs::set_trace_worker(prev_worker);
        return slots
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    JobOutcome::Panicked(JobPanic {
                        message: "worker exited without storing a result".to_string(),
                    })
                })
            })
            .collect();
    }
    let workers = threads.min(jobs);
    // Priorities are resolved once into a table: seeding reads it here,
    // and workers reuse it to stamp each job's class on the trace.
    let prios: Vec<Priority> = (0..jobs).map(&priority).collect();
    // Round-robin seeding per level: job i starts on worker i % workers.
    let queues: Vec<Mutex<Queues>> = {
        let mut qs: Vec<Queues> = (0..workers).map(|_| Queues::default()).collect();
        for (job, prio) in prios.iter().enumerate() {
            match prio {
                Priority::High => qs[job % workers].high.push_back(job),
                Priority::Low => qs[job % workers].low.push_back(job),
            }
        }
        qs.into_iter().map(Mutex::new).collect()
    };
    let slots: Vec<OnceLock<JobOutcome<T>>> = (0..jobs).map(|_| OnceLock::new()).collect();
    // Workers record onto the submitting thread's trace, nested under
    // its currently open span.
    let trace_ctx = ninec_obs::trace_context();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            let prios = &prios;
            scope.spawn(move || {
                ninec_obs::set_trace_context(trace_ctx.0, trace_ctx.1);
                let _ = ninec_obs::set_trace_worker(w as u32);
                let mut steals = 0u64;
                let mut done = 0u64;
                let mut busy = 0u64;
                loop {
                    let steals_before = steals;
                    let job = match pop_own(queues, w) {
                        Some(job) => Some(job),
                        None => steal(queues, w, &mut steals),
                    };
                    let Some(job) = job else { break };
                    // The cancellation boundary: a tripped token turns
                    // every not-yet-started job into a `Cancelled` slot,
                    // so the deques drain at queue-op speed and the merge
                    // below still sees every index filled.
                    if cancel.is_some_and(CancelToken::is_tripped) {
                        let _ = slots[job].set(JobOutcome::Cancelled);
                        continue;
                    }
                    // A steal tally that moved during this pop means the
                    // job came off a sibling's deque, not our own.
                    let stolen = steals > steals_before;
                    // One gauge write per job — batched at the job
                    // boundary, never inside the encode/decode hot loop.
                    crate::metrics::publish_worker_queue_depth(w, queue_len(queues, w));
                    let _job_span = ninec_obs::trace_span_scope(
                        "job",
                        ninec_obs::NO_SEGMENT,
                        ninec_obs::TracePayload::Job {
                            index: job as u32,
                            high: prios[job] == Priority::High,
                            stolen,
                        },
                    );
                    // The catch_unwind here is the panic-isolation
                    // boundary: a panicking job poisons only slot `job`.
                    let start = std::time::Instant::now();
                    let out = run_caught(|| f(job));
                    busy += start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                    if out.is_err() {
                        // Park this worker's timeline in the global ring
                        // before the poisoned slot is reported.
                        ninec_obs::flush_thread_trace();
                    }
                    // Each job index is popped exactly once, so the slot is
                    // empty; a second set is impossible by construction.
                    let _ = slots[job].set(match out {
                        Ok(v) => JobOutcome::Done(v),
                        Err(p) => JobOutcome::Panicked(p),
                    });
                    done += 1;
                }
                crate::metrics::publish_pool_worker(steals, done);
                crate::metrics::publish_worker_busy(w, busy);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            // Every index was queued exactly once and its worker either
            // stored a value, a caught JobPanic, or a Cancelled marker;
            // an empty slot would mean a worker died outside
            // catch_unwind, which the isolation boundary makes
            // unreachable — but stay total regardless.
            slot.into_inner().unwrap_or_else(|| {
                JobOutcome::Panicked(JobPanic {
                    message: "worker exited without storing a result".to_string(),
                })
            })
        })
        .collect()
}

/// LIFO pop from the worker's own deques, `High` first (hot segments
/// stay cache-warm). A worker only reads its own `Low` deque after its
/// own `High` deque *and every sibling's* are empty — see [`steal`].
fn pop_own(queues: &[Mutex<Queues>], w: usize) -> Option<usize> {
    lock_queues(queues, w).high.pop_back()
}

/// Current total depth of the worker's own deques.
fn queue_len(queues: &[Mutex<Queues>], w: usize) -> usize {
    let q = lock_queues(queues, w);
    q.high.len() + q.low.len()
}

/// Finds the next job for an own-`High`-empty worker, in strict priority
/// order: steal `High` from a sibling (FIFO, scanning from `w + 1`
/// round-robin so the load spreads instead of piling on worker 0), then
/// pop own `Low`, then steal `Low`. Because every queue only drains, a
/// scan that found all `High` deques empty proves every `High` job has
/// started — so a `Low` pop can never overtake a queued `High` job.
fn steal(queues: &[Mutex<Queues>], w: usize, steals: &mut u64) -> Option<usize> {
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        let job = lock_queues(queues, victim).high.pop_front();
        if let Some(job) = job {
            *steals += 1;
            return Some(job);
        }
    }
    if let Some(job) = lock_queues(queues, w).low.pop_back() {
        return Some(job);
    }
    for off in 1..n {
        let victim = (w + off) % n;
        let job = lock_queues(queues, victim).low.pop_front();
        if let Some(job) = job {
            *steals += 1;
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn all_high(_: usize) -> Priority {
        Priority::High
    }

    #[test]
    fn results_are_index_ordered_regardless_of_priority() {
        for threads in [1usize, 2, 8] {
            let out = run_prioritized(
                threads,
                37,
                |i| {
                    if i % 3 == 0 {
                        Priority::Low
                    } else {
                        Priority::High
                    }
                },
                |i| i * i,
            );
            let vals: Vec<usize> = out.into_iter().map(|r| r.expect("no panics")).collect();
            assert_eq!(vals, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn every_job_runs_exactly_once_across_priorities() {
        let hits: Vec<AtomicUsize> = (0..96).map(|_| AtomicUsize::new(0)).collect();
        let out = run_prioritized(
            8,
            96,
            |i| {
                if i < 48 {
                    Priority::High
                } else {
                    Priority::Low
                }
            },
            |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
                i
            },
        );
        assert_eq!(out.len(), 96);
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn serial_fallback_runs_high_then_low_in_index_order() {
        let order = Mutex::new(Vec::new());
        run_prioritized(
            1,
            10,
            |i| {
                if i % 2 == 0 {
                    Priority::Low
                } else {
                    Priority::High
                }
            },
            |i| order.lock().expect("no poisoned lock").push(i),
        );
        let order = order.into_inner().expect("no poisoned lock");
        assert_eq!(order, vec![1, 3, 5, 7, 9, 0, 2, 4, 6, 8]);
    }

    /// The starvation guarantee under an oversubscribed pool: at the
    /// moment any `Low` job starts, every `High` job has started too —
    /// up to the threads-1 that may sit between their pop and their
    /// start-log write.
    #[test]
    fn low_jobs_never_overtake_queued_high_jobs_under_stress() {
        const THREADS: usize = 8;
        const HIGH: usize = 200;
        const LOW: usize = 200;
        for round in 0..10 {
            let starts = Mutex::new(Vec::with_capacity(HIGH + LOW));
            let out = run_prioritized(
                THREADS,
                HIGH + LOW,
                |i| {
                    if i < HIGH {
                        Priority::High
                    } else {
                        Priority::Low
                    }
                },
                |i| {
                    starts.lock().expect("no poisoned lock").push(i);
                    // Skew the load so workers race each other hard.
                    if i % 13 == round {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    } else if i % 5 == 0 {
                        std::thread::yield_now();
                    }
                    i
                },
            );
            assert!(out
                .iter()
                .enumerate()
                .all(|(i, r)| r.as_ref().ok() == Some(&i)));
            let starts = starts.into_inner().expect("no poisoned lock");
            assert_eq!(starts.len(), HIGH + LOW, "round {round}");
            let mut high_started = 0usize;
            for &i in &starts {
                if i < HIGH {
                    high_started += 1;
                } else {
                    let unstarted = HIGH - high_started;
                    assert!(
                        unstarted < THREADS,
                        "round {round}: low job {i} started with {unstarted} high jobs unstarted"
                    );
                }
            }
        }
    }

    #[test]
    fn a_panicking_low_job_poisons_only_its_slot() {
        for threads in [1usize, 8] {
            let out = run_prioritized(
                threads,
                16,
                |i| {
                    if i >= 12 {
                        Priority::Low
                    } else {
                        Priority::High
                    }
                },
                |i| {
                    if i == 14 {
                        panic!("backfill boom {i}");
                    }
                    i
                },
            );
            for (i, r) in out.iter().enumerate() {
                if i == 14 {
                    let p = r.as_ref().expect_err("job 14 panicked");
                    assert!(p.message.contains("backfill boom 14"), "{p:?}");
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&i), "threads={threads} job {i}");
                }
            }
        }
    }

    #[test]
    fn active_jobs_counts_batches_in_flight_and_retires_them() {
        let floor = active_jobs();
        // While one of our 12 jobs runs, our batch contributes all 12 to
        // the tally (other tests can only add on top, never subtract our
        // share), so every job must observe at least 12.
        let seen = run_prioritized(4, 12, all_high, |_| active_jobs());
        for r in &seen {
            let inside = *r.as_ref().expect("no panics");
            assert!(inside >= 12, "a job observed only {inside} active jobs");
        }
        // The batch retires even when a job panics (RAII on unwind). The
        // tally is shared with concurrently running tests, so wait for it
        // to dip back to the starting floor instead of asserting once: a
        // leaked batch would keep it permanently above.
        let _ = run_prioritized(2, 4, all_high, |i| {
            if i == 1 {
                panic!("boom");
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while active_jobs() > floor {
            assert!(
                std::time::Instant::now() < deadline,
                "active_jobs never returned to {floor}: batches leaked"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn zero_jobs_and_single_job_edge_cases() {
        assert!(run_prioritized(8, 0, all_high, |i| i).is_empty());
        let one = run_prioritized(8, 1, |_| Priority::Low, |i| i + 7);
        assert_eq!(one[0].as_ref().ok(), Some(&7));
    }

    #[test]
    fn a_pre_tripped_token_cancels_every_job_without_running_any() {
        for threads in [1usize, 8] {
            let ran = AtomicUsize::new(0);
            let token = CancelToken::new();
            token.cancel();
            let out = run_cancellable(threads, 24, all_high, Some(&token), |_| {
                ran.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(out.len(), 24);
            assert!(
                out.iter().all(|o| matches!(o, JobOutcome::Cancelled)),
                "threads={threads}"
            );
            assert_eq!(ran.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn a_mid_batch_cancel_abandons_the_tail_and_retires_the_batch() {
        let floor = active_jobs();
        let token = CancelToken::new();
        let out = run_cancellable(4, 64, all_high, Some(&token), |i| {
            if i % 16 == 0 {
                token.cancel();
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            i
        });
        // Every slot resolved: in-flight jobs finished, the tail was
        // abandoned at the pop boundary, nothing panicked or hung.
        let done = out
            .iter()
            .filter(|o| matches!(o, JobOutcome::Done(_)))
            .count();
        let cancelled = out
            .iter()
            .filter(|o| matches!(o, JobOutcome::Cancelled))
            .count();
        assert_eq!(done + cancelled, 64);
        assert!(cancelled > 0, "cancel arrived with jobs still queued");
        // Cancellation reclaims workers: the load gauge dips back to the
        // pre-batch floor (shared with concurrent tests — poll, don't
        // assert once).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while active_jobs() > floor {
            assert!(
                std::time::Instant::now() < deadline,
                "active_jobs never returned to {floor} after a cancel"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn an_expired_deadline_cancels_the_remaining_jobs() {
        let token = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        let out = run_cancellable(2, 8, all_high, Some(&token), |i| i);
        assert!(out.iter().all(|o| matches!(o, JobOutcome::Cancelled)));
    }

    #[test]
    fn a_live_token_changes_nothing() {
        let token = CancelToken::after(std::time::Duration::from_secs(3600));
        let out = run_cancellable(4, 16, all_high, Some(&token), |i| i * 2);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o, &JobOutcome::Done(i * 2));
        }
    }
}

//! Salvage-mode frame decode: recover every intact segment from a
//! corrupted `9CSF` frame and materialise the damage as X-trit erasures.
//!
//! The strict [`Engine::decode_frame`] is fail-closed: one bad CRC
//! aborts the whole decode. That is the right default for a codec, but
//! the paper's setting — a reduced pin-count ATE link feeding an on-chip
//! FSM — is a hostile channel where a single flipped or dropped bit
//! desynchronises everything downstream. X-tolerant compaction work
//! (Fujiwara & Colbourn's combinatorial X-codes) treats corrupted values
//! as *erasures to localise and tolerate*, not as fatal; salvage mode
//! applies the same philosophy at the frame layer:
//!
//! - every segment whose header + CRC check out is decoded (in parallel,
//!   on the same panic-isolated pool as the strict path);
//! - every byte range that fails is resynchronised past (next CRC-valid
//!   segment) and its trits are materialised as `X` — an erasure run at
//!   a known, `K`-block-aligned offset, because the frame writer aligns
//!   every segment boundary to a block boundary;
//! - the [`SalvageReport`] maps each damaged byte range to its trit
//!   range and reason, so downstream tooling knows exactly which scan
//!   slices to re-transfer or distrust.
//!
//! The file header itself must be sound (magic, version, header CRC,
//! non-bomb claims): with an untrustworthy code table or total length
//! there is nothing sound to salvage against, so those remain hard
//! errors — as does a Kraft-invalid stored table.

use crate::code::CodeTable;
use crate::decode::DecodeError;
use crate::engine::frame::{self, DamageReason, ScanEntry};
use crate::engine::{pool, Engine};
use ninec_testdata::trit::{Trit, TritVec};
use std::ops::Range;

/// One damaged region of a salvaged frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamagedSegment {
    /// Position of the damaged region in the scan walk (segment index
    /// for frames whose structure survived).
    pub index: usize,
    /// The frame bytes written off.
    pub byte_range: Range<usize>,
    /// The output trits erased to `X` in [`SalvageReport::trits`].
    pub trit_range: Range<usize>,
    /// Why the region could not be recovered.
    pub reason: DamageReason,
}

/// The outcome of a salvage-mode frame decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// The decoded stream, exactly `source_len` trits long: recovered
    /// segments byte-identical to a clean decode, damaged regions as
    /// `X`-trit erasure runs at their known block-aligned offsets.
    pub trits: TritVec,
    /// Segments recovered byte-identically.
    pub recovered_segments: usize,
    /// Total scan entries (recovered + damaged).
    pub total_segments: usize,
    /// The damage map, in stream order.
    pub damaged: Vec<DamagedSegment>,
}

impl SalvageReport {
    /// `true` when nothing was damaged — the frame decoded cleanly.
    #[must_use]
    pub fn is_full_recovery(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// What one scan entry contributes to the output.
enum Plan<'a> {
    /// Decode this intact segment (scan-entry index into the pool jobs).
    Decode {
        seg: frame::ParsedSegment<'a>,
        byte_range: Range<usize>,
        trits: usize,
    },
    /// Erase `trits` trits for this damaged range.
    Erase {
        byte_range: Range<usize>,
        reason: DamageReason,
        trits: usize,
    },
}

impl Plan<'_> {
    fn trits(&self) -> usize {
        match self {
            Plan::Decode { trits, .. } | Plan::Erase { trits, .. } => *trits,
        }
    }
}

/// Resolves how many erasure trits each damaged entry stands for.
///
/// The header's `source_len` is CRC-trusted; the intact segments'
/// lengths are CRC-trusted; the gap between them must be distributed
/// over the damaged entries. Their own headers are *untrusted claims*:
/// use them when they are mutually consistent with the gap, fall back
/// to proportional-by-claim (sequential, last-takes-rest) otherwise.
fn resolve_erasures(claims: &[Option<usize>], remaining: usize) -> Vec<usize> {
    if claims.is_empty() {
        return Vec::new();
    }
    if claims.len() == 1 {
        // A single damaged region must be the whole gap, whatever its
        // corrupted header claims.
        return vec![remaining];
    }
    let claim_sum = claims
        .iter()
        .try_fold(0usize, |acc, c| acc.checked_add((*c)?));
    if claim_sum == Some(remaining) {
        // All claims present and consistent with the trusted totals.
        return claims.iter().map(|c| c.unwrap_or(0)).collect();
    }
    // Inconsistent claims: honour them best-effort in order, clamped to
    // the budget, and give the last entry whatever is left so the output
    // length always matches the trusted header total.
    let mut out = Vec::with_capacity(claims.len());
    let mut left = remaining;
    for (j, c) in claims.iter().enumerate() {
        let take = if j + 1 == claims.len() {
            left
        } else {
            c.unwrap_or(0).min(left)
        };
        out.push(take);
        left -= take;
    }
    out
}

impl Engine {
    /// Decodes a `9CSF` frame in **salvage mode**: every intact segment
    /// is recovered byte-identically (decoded in parallel on the
    /// panic-isolated pool), every damaged byte range is skipped,
    /// resynchronised past, and materialised as an `X`-trit erasure run
    /// at its block-aligned offset. The report's `trits` is always
    /// exactly the header's `source_len` trits long.
    ///
    /// Segment-level problems — bad CRCs, truncated tails, malformed or
    /// limit-busting headers, payloads that fail 9C decoding, even a
    /// worker panic — become [`DamagedSegment`] entries, never errors.
    ///
    /// # Errors
    ///
    /// Only file-level problems fail the salvage: bad magic, a header
    /// shorter than [`frame::HEADER_BYTES`], an unsupported version, a
    /// file-header CRC mismatch ([`DecodeError::Frame`]), a Kraft-invalid
    /// stored table, or file-level [`DecodeError::LimitExceeded`] bombs.
    /// Never panics on hostile input.
    pub fn decode_frame_salvage(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        let _span = ninec_obs::span("engine_decode_frame_salvage");
        let scan = frame::scan_salvage(bytes, self.limits()).map_err(DecodeError::from)?;
        let table = CodeTable::from_lengths(&scan.table_lengths)
            .map_err(|_| frame::FrameError::BadTable)?;
        let source_len = scan.source_len;

        // Trusted lengths: intact segments. Untrusted: damaged claims.
        let intact_sum: usize = scan
            .entries
            .iter()
            .filter_map(|e| match e {
                ScanEntry::Intact { seg, .. } => Some(seg.source_trits),
                ScanEntry::Damaged { .. } => None,
            })
            .fold(0usize, |a, b| a.saturating_add(b));
        let remaining = source_len.saturating_sub(intact_sum);
        let claims: Vec<Option<usize>> = scan
            .entries
            .iter()
            .filter_map(|e| match e {
                ScanEntry::Intact { .. } => None,
                ScanEntry::Damaged {
                    claimed_source_trits,
                    ..
                } => Some(*claimed_source_trits),
            })
            .collect();
        let erase_lens = resolve_erasures(&claims, remaining);

        // Build the output plan, clipping at the trusted source_len: an
        // entry that would overshoot (duplicated/spliced segments) is
        // erased and reported as a header mismatch rather than silently
        // growing the output.
        let mut plans: Vec<Plan<'_>> = Vec::with_capacity(scan.entries.len() + 1);
        let mut offset = 0usize;
        let mut erase_iter = erase_lens.into_iter();
        for entry in &scan.entries {
            match entry {
                ScanEntry::Intact { seg, byte_range } => {
                    let want = seg.source_trits;
                    if offset.saturating_add(want) <= source_len {
                        plans.push(Plan::Decode {
                            seg: *seg,
                            byte_range: byte_range.clone(),
                            trits: want,
                        });
                        offset += want;
                    } else {
                        // Doesn't fit the trusted total: header mismatch.
                        let take = source_len - offset;
                        plans.push(Plan::Erase {
                            byte_range: byte_range.clone(),
                            reason: DamageReason::HeaderMismatch(
                                "segment exceeds the header's source-length total",
                            ),
                            trits: take,
                        });
                        offset += take;
                    }
                }
                ScanEntry::Damaged {
                    byte_range, reason, ..
                } => {
                    let want = erase_iter.next().unwrap_or(0);
                    let take = want.min(source_len - offset);
                    plans.push(Plan::Erase {
                        byte_range: byte_range.clone(),
                        reason: reason.clone(),
                        trits: take,
                    });
                    offset += take;
                }
            }
        }
        if offset < source_len {
            // The body covers fewer trits than the trusted total — a
            // boundary truncation or excised segments. Erase the tail.
            let reason = if scan.entries.len() < scan.claimed_segments {
                DamageReason::Truncated
            } else {
                DamageReason::HeaderMismatch(
                    "segments cover fewer trits than the header's source-length total",
                )
            };
            plans.push(Plan::Erase {
                byte_range: bytes.len()..bytes.len(),
                reason,
                trits: source_len - offset,
            });
        }

        // Decode the intact segments in parallel, panic-isolated; a
        // panicked or mis-decoding segment degrades to an erasure.
        let results = pool::try_map_indexed(self.threads(), plans.len(), |i| match &plans[i] {
            Plan::Decode { seg, .. } => Some(self.decode_one_segment(seg, i, &table)),
            Plan::Erase { .. } => None,
        });

        let mut trits = TritVec::with_capacity(source_len);
        let mut damaged = Vec::new();
        let mut recovered = 0usize;
        let mut panics = 0u64;
        let total = plans.len();
        for (i, (plan, result)) in plans.into_iter().zip(results).enumerate() {
            let start = trits.len();
            let want = plan.trits();
            let (byte_range, reason) = match (plan, result) {
                (Plan::Decode { byte_range, .. }, Ok(Some(Ok(seg_out)))) => {
                    if seg_out.len() == want {
                        trits.extend_from_tritvec(&seg_out);
                        recovered += 1;
                        continue;
                    }
                    // A decoder returning the wrong length is a writer
                    // bug; degrade to an erasure.
                    (
                        byte_range,
                        DamageReason::Malformed("decoded length disagrees with the segment header"),
                    )
                }
                (Plan::Decode { byte_range, .. }, Ok(Some(Err(e)))) => {
                    (byte_range, DamageReason::Decode(e))
                }
                (Plan::Decode { byte_range, .. }, Err(_panic)) => {
                    panics += 1;
                    (byte_range, DamageReason::WorkerPanicked)
                }
                (
                    Plan::Erase {
                        byte_range, reason, ..
                    },
                    Err(_panic),
                ) => {
                    // An erase "job" cannot panic, but stay total.
                    panics += 1;
                    (byte_range, reason)
                }
                (
                    Plan::Erase {
                        byte_range, reason, ..
                    },
                    Ok(_),
                ) => (byte_range, reason),
                (Plan::Decode { byte_range, .. }, Ok(None)) => (
                    // Unreachable: decode plans always return Some.
                    byte_range,
                    DamageReason::Malformed("internal plan/result mismatch"),
                ),
            };
            trits.push_run(Trit::X, want);
            damaged.push(DamagedSegment {
                index: i,
                byte_range,
                trit_range: start..start + want,
                reason,
            });
        }
        crate::metrics::publish_worker_panics(panics);
        if !damaged.is_empty() {
            crate::metrics::publish_salvaged_segments(recovered as u64);
        }
        Ok(SalvageReport {
            trits,
            recovered_segments: recovered,
            total_segments: total,
            damaged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frame::HEADER_BYTES;
    use crate::engine::Engine;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    fn sample_stream() -> TritVec {
        tv(&"0X0X01X001X0101X111111110000X1111X0110XX".repeat(20))
    }

    fn engine() -> Engine {
        Engine::builder().threads(2).segment_bits(64).build()
    }

    #[test]
    fn clean_frame_salvages_to_full_recovery() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let report = e.decode_frame_salvage(&frame_bytes).expect("salvages");
        assert!(report.is_full_recovery());
        assert_eq!(report.recovered_segments, report.total_segments);
        assert_eq!(report.trits, e.decode_frame(&frame_bytes).expect("decodes"));
    }

    #[test]
    fn corrupt_segment_becomes_an_x_erasure_run() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");

        // Corrupt the first segment's first payload byte.
        let mut bad = frame_bytes.clone();
        bad[HEADER_BYTES + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        let report = e.decode_frame_salvage(&bad).expect("salvages");
        assert!(!report.is_full_recovery());
        assert_eq!(report.damaged.len(), 1);
        assert_eq!(report.trits.len(), stream.len());
        let d = &report.damaged[0];
        assert_eq!(d.index, 0);
        assert_eq!(d.reason, DamageReason::BadCrc);
        assert_eq!(d.trit_range.start, 0);
        assert_eq!(d.trit_range.end, 64, "segment covers one 64-trit shard");
        // Inside the damaged range: all X. Outside: identical to clean.
        for i in 0..report.trits.len() {
            let got = report.trits.get(i).expect("in range");
            if d.trit_range.contains(&i) {
                assert!(got.is_x(), "trit {i} inside damage must be X");
            } else {
                assert_eq!(Some(got), clean.get(i), "trit {i} outside damage");
            }
        }
        // Strict mode still fails closed on the same bytes.
        assert!(e.decode_frame(&bad).is_err());
    }

    #[test]
    fn truncated_tail_erases_the_missing_trits() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let cut = frame_bytes.len() - 3;
        let report = e
            .decode_frame_salvage(&frame_bytes[..cut])
            .expect("salvages");
        assert_eq!(report.trits.len(), stream.len());
        assert!(!report.is_full_recovery());
        let last = report.damaged.last().expect("damage recorded");
        assert_eq!(last.trit_range.end, stream.len());
        assert_eq!(last.reason, DamageReason::Truncated);
    }

    #[test]
    fn boundary_truncation_synthesizes_a_tail_entry() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        assert!(parsed.segments.len() >= 2, "test needs multiple segments");
        // Cut exactly at the last segment's boundary: the walk sees only
        // intact segments but the totals are short.
        let last_seg_bytes =
            frame::SEGMENT_HEADER_BYTES + parsed.segments.last().expect("nonempty").payload.len();
        let cut = frame_bytes.len() - last_seg_bytes;
        let report = e
            .decode_frame_salvage(&frame_bytes[..cut])
            .expect("salvages");
        assert_eq!(report.trits.len(), stream.len());
        let last = report.damaged.last().expect("tail damage recorded");
        assert_eq!(last.reason, DamageReason::Truncated);
        assert_eq!(last.byte_range, cut..cut);
        assert!(last.trit_range.end == stream.len());
    }

    #[test]
    fn all_segments_damaged_is_all_x_not_an_error() {
        let stream = tv(&"01X0".repeat(16));
        let e = Engine::builder().threads(1).segment_bits(1 << 20).build();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        // Corrupt the single segment.
        let mut bad = frame_bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let report = e.decode_frame_salvage(&bad).expect("salvages");
        assert_eq!(report.recovered_segments, 0);
        assert_eq!(report.trits.len(), stream.len());
        assert!((0..report.trits.len()).all(|i| report.trits.get(i).is_some_and(|t| t.is_x())));
    }

    #[test]
    fn header_level_damage_is_still_fatal() {
        let stream = sample_stream();
        let e = engine();
        let mut frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        frame_bytes[7] ^= 0x01; // a code-length byte, covered by header CRC
        assert!(matches!(
            e.decode_frame_salvage(&frame_bytes),
            Err(DecodeError::Frame(frame::FrameError::BadHeaderCrc))
        ));
        assert!(matches!(
            e.decode_frame_salvage(b"junk"),
            Err(DecodeError::Frame(frame::FrameError::BadMagic))
        ));
    }

    #[test]
    fn resolve_erasures_covers_the_cases() {
        assert!(resolve_erasures(&[], 0).is_empty());
        assert_eq!(resolve_erasures(&[Some(9)], 5), vec![5]);
        assert_eq!(resolve_erasures(&[None], 5), vec![5]);
        assert_eq!(resolve_erasures(&[Some(3), Some(4)], 7), vec![3, 4]);
        // Inconsistent claims: clamp in order, last takes the rest.
        assert_eq!(resolve_erasures(&[Some(100), Some(4)], 7), vec![7, 0]);
        assert_eq!(resolve_erasures(&[None, Some(4)], 7), vec![0, 7]);
        assert_eq!(
            resolve_erasures(&[Some(2), None, Some(1)], 9),
            vec![2, 0, 7]
        );
    }
}

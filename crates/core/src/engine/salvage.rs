//! Salvage- and repair-mode frame decode: the bottom two rungs of the
//! decode ladder.
//!
//! The strict [`Engine::decode_frame`] is fail-closed: one bad CRC
//! aborts the whole decode. That is the right default for a codec, but
//! the paper's setting — a reduced pin-count ATE link feeding an on-chip
//! FSM — is a hostile channel where a single flipped or dropped bit
//! desynchronises everything downstream. The decode ladder therefore
//! degrades in two steps:
//!
//! 1. **Repair** ([`Engine::decode_frame_repair`], v3 frames): the
//!    CRC-verified salvage scan pins down exactly which segments are
//!    damaged — *erasure positions*, the easy half of Reed–Solomon
//!    decoding. Each parity group rebuilds up to `r` erased member
//!    segments byte-exactly over GF(256)
//!    ([`crate::engine::ecc::ParityCoder`]), every reconstructed segment
//!    is re-verified against its own CRC before acceptance, and repaired
//!    segments decode in parallel on the same panic-isolated pool as
//!    intact ones. Their damage-map entries carry
//!    [`DamageReason::RepairedBy`] — informational, not loss.
//! 2. **Salvage** (always available): whatever repair could not
//!    reconstruct — over-budget erasures, v2 frames, groups whose parity
//!    itself died — is resynchronised past and materialised as `X`-trit
//!    erasure runs at block-aligned offsets, in the spirit of the
//!    X-tolerant compaction line (Fujiwara & Colbourn's combinatorial
//!    X-codes): corrupted values become erasures to localise, never
//!    silent wrong bits.
//!
//! The file header itself must be sound (magic, version, header CRC,
//! non-bomb claims): with an untrustworthy code table or total length
//! there is nothing sound to salvage against, so those remain hard
//! errors — as does a Kraft-invalid stored table.
//!
//! Both rungs execute against a [`FramePlan`] built in **one**
//! header/CRC scan pass ([`Engine::build_plan`]);
//! [`Engine::decode_frame_repair`] and
//! [`Engine::decode_frame_salvage`] are thin wrappers over
//! [`Engine::execute_plan`](Engine::execute_plan). Work is scheduled on
//! the two-level priority executor: intact-segment decodes run at
//! [`Priority::High`] (they are needed at every rung), parity
//! reconstruction of damaged groups backfills at [`Priority::Low`], and
//! rebuilt segments decode in a short follow-up batch.

use crate::code::CodeTable;
use crate::decode::DecodeError;
use crate::engine::ecc::ParityCoder;
use crate::engine::exec::{self, Priority};
use crate::engine::frame::{self, DamageReason, ParsedParity, ScanEntry};
use crate::engine::plan::{BuildMode, FramePlan};
use crate::engine::{pool, Engine};
use ninec_testdata::trit::{Trit, TritVec};
use std::collections::HashMap;
use std::ops::Range;

/// One damaged (or repaired) region of a salvaged frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DamagedSegment {
    /// Position of the region in the scan walk (segment index for
    /// frames whose structure survived).
    pub index: usize,
    /// The frame bytes written off (or, for a repaired segment, the
    /// bytes that were damaged on the wire).
    pub byte_range: Range<usize>,
    /// The output trits this region covers in [`SalvageReport::trits`]:
    /// erased to `X` for terminal damage, **real decoded trits** when
    /// `reason` is [`DamageReason::RepairedBy`].
    pub trit_range: Range<usize>,
    /// Why the region was damaged — or proof it was repaired.
    pub reason: DamageReason,
}

/// The outcome of a salvage- or repair-mode frame decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageReport {
    /// The decoded stream, exactly `source_len` trits long: recovered
    /// and repaired segments byte-identical to a clean decode, terminal
    /// damage as `X`-trit erasure runs at known block-aligned offsets.
    pub trits: TritVec,
    /// Segments recovered byte-identically (intact + repaired).
    pub recovered_segments: usize,
    /// Total scan entries contributing output (recovered + damaged).
    pub total_segments: usize,
    /// The damage map, in stream order. Entries whose reason is
    /// [`DamageReason::RepairedBy`] are informational — their trits are
    /// real.
    pub damaged: Vec<DamagedSegment>,
}

impl SalvageReport {
    /// `true` when every output trit is real — nothing was erased. Wire
    /// damage that was fully repaired ([`DamageReason::RepairedBy`]) or
    /// that covered no output trits (e.g. a corrupted parity segment)
    /// still counts as full recovery: the decoded stream is bit-exact.
    #[must_use]
    pub fn is_full_recovery(&self) -> bool {
        self.damaged
            .iter()
            .all(|d| d.reason.is_repaired() || d.trit_range.is_empty())
    }

    /// Segments rebuilt byte-exactly from parity
    /// ([`DamageReason::RepairedBy`] entries).
    #[must_use]
    pub fn repaired_segments(&self) -> usize {
        self.damaged
            .iter()
            .filter(|d| d.reason.is_repaired())
            .count()
    }
}

/// What one scan entry contributes to the output.
enum Plan<'a> {
    /// Decode this segment (intact on the wire, or rebuilt from parity
    /// when `repaired` is set).
    Decode {
        seg: frame::ParsedSegment<'a>,
        byte_range: Range<usize>,
        trits: usize,
        /// `Some((group, parity_used))` when the segment bytes came out
        /// of a parity reconstruction instead of the wire.
        repaired: Option<(usize, usize)>,
    },
    /// Erase `trits` trits for this damaged range.
    Erase {
        byte_range: Range<usize>,
        reason: DamageReason,
        trits: usize,
    },
}

impl Plan<'_> {
    fn trits(&self) -> usize {
        match self {
            Plan::Decode { trits, .. } | Plan::Erase { trits, .. } => *trits,
        }
    }
}

/// Resolves how many erasure trits each damaged entry stands for.
///
/// The header's `source_len` is CRC-trusted; the intact segments'
/// lengths are CRC-trusted; the gap between them must be distributed
/// over the damaged entries. Their own headers are *untrusted claims*:
/// use them when they are mutually consistent with the gap, fall back
/// to proportional-by-claim (sequential, last-takes-rest) otherwise.
fn resolve_erasures(claims: &[Option<usize>], remaining: usize) -> Vec<usize> {
    if claims.is_empty() {
        return Vec::new();
    }
    if claims.len() == 1 {
        // A single damaged region must be the whole gap, whatever its
        // corrupted header claims.
        return vec![remaining];
    }
    let claim_sum = claims
        .iter()
        .try_fold(0usize, |acc, c| acc.checked_add((*c)?));
    if claim_sum == Some(remaining) {
        // All claims present and consistent with the trusted totals.
        return claims.iter().map(|c| c.unwrap_or(0)).collect();
    }
    // Inconsistent claims: honour them best-effort in order, clamped to
    // the budget, and give the last entry whatever is left so the output
    // length always matches the trusted header total.
    let mut out = Vec::with_capacity(claims.len());
    let mut left = remaining;
    for (j, c) in claims.iter().enumerate() {
        let take = if j + 1 == claims.len() {
            left
        } else {
            c.unwrap_or(0).min(left)
        };
        out.push(take);
        left -= take;
    }
    out
}

/// One segment rebuilt from parity: the reconstructed shard bytes, the
/// CRC-verified header fields (parsed exactly once, at reconstruction
/// time) and the provenance to report.
struct Rebuilt {
    /// Scan-entry index (== data-segment index when the structure
    /// survived) the shard replaces.
    entry: usize,
    /// The reconstructed segment bytes (header + payload + zero pad).
    bytes: Vec<u8>,
    /// Block size `K`, from the rebuilt segment's CRC-verified header.
    k: usize,
    /// Source trits, from the same single parse.
    source_trits: usize,
    /// Payload trits, from the same single parse.
    payload_trits: usize,
    /// Parity group that produced it.
    group: usize,
    /// Parity shards the reconstruction consumed.
    parity_used: usize,
}

impl Rebuilt {
    /// The segment view borrowing this rebuilt buffer. The fields were
    /// validated by [`frame::segment_at`] against these very bytes when
    /// the shard was accepted, so no re-parse (and no second CRC walk)
    /// happens here.
    fn seg(&self) -> frame::ParsedSegment<'_> {
        let payload_start = frame::SEGMENT_HEADER_BYTES;
        let payload_end = payload_start + self.payload_trits.div_ceil(4);
        frame::ParsedSegment {
            k: self.k,
            source_trits: self.source_trits,
            payload_trits: self.payload_trits,
            payload: self.bytes.get(payload_start..payload_end).unwrap_or(&[]),
        }
    }
}

/// Precomputed repair-rung structure: the positional parity table and
/// the group coder. `None` when repair cannot run soundly.
///
/// Repair only runs when the scan's structure is **unambiguous**:
/// exactly `claimed_segments + claimed_parity_segments` entries, so
/// entry position maps 1:1 onto segment position and the erasure
/// positions are certain. Anything else (merged damage ranges, spliced
/// frames) falls through to plain salvage — repair must never guess.
struct RepairCtx<'s, 'a> {
    scan: &'s frame::SalvageScan<'a>,
    /// Entry `n + q*r + j` should be parity `(q, j)`. Mis-labelled or
    /// damaged parity slots are simply absent.
    parity_slots: Vec<Option<&'s ParsedParity<'a>>>,
    coder: ParityCoder,
    n: usize,
    g: usize,
    r: usize,
    groups: usize,
}

fn repair_context<'s, 'a>(scan: &'s frame::SalvageScan<'a>) -> Option<RepairCtx<'s, 'a>> {
    let n = scan.claimed_segments;
    let p = scan.claimed_parity_segments();
    let g = scan.parity_g as usize;
    let r = scan.parity_r as usize;
    let groups = scan.groups();
    if r == 0 || groups == 0 || scan.entries.len() != n + p {
        return None;
    }
    let mut parity_slots: Vec<Option<&ParsedParity<'_>>> = vec![None; p];
    for (slot, entry) in scan.entries[n..].iter().enumerate() {
        if let ScanEntry::Parity { par, .. } = entry {
            if par.group == slot / r && par.pindex == slot % r {
                parity_slots[slot] = Some(par);
            }
        }
    }
    // Header geometry was already validated; stay total anyway.
    let coder = ParityCoder::new(g, r).ok()?;
    Some(RepairCtx {
        scan,
        parity_slots,
        coder,
        n,
        g,
        r,
        groups,
    })
}

/// Attempts RS reconstruction of parity group `q`'s damaged members.
/// Returns the CRC-verified rebuilds plus the count of members that
/// stayed unrepairable (feeding `ninec.ecc.repair_failures`). Runs as a
/// [`Priority::Low`] executor job — intact decodes always go first.
fn repair_group(
    bytes: &[u8],
    ctx: &RepairCtx<'_, '_>,
    q: usize,
    limits: &frame::DecodeLimits,
) -> (Vec<Rebuilt>, u64) {
    let (n, g, r, groups) = (ctx.n, ctx.g, ctx.r, ctx.groups);
    let scan = ctx.scan;
    let mut rebuilt = Vec::new();
    let mut failures = 0u64;
    // Member entry indices of this group, in shard-slot order.
    let members: Vec<usize> = frame::group_members(q, n, groups).collect();
    let group_parity: Vec<Option<&ParsedParity<'_>>> =
        (0..r).map(|j| ctx.parity_slots[q * r + j]).collect();
    // The group's shard length comes from its (CRC-trusted) parity
    // headers; all intact parity shards must agree.
    let mut shard_len: Option<usize> = None;
    let mut consistent = true;
    for par in group_parity.iter().flatten() {
        match shard_len {
            None => shard_len = Some(par.payload.len()),
            Some(l) if l == par.payload.len() => {}
            Some(_) => consistent = false,
        }
    }
    let (Some(shard_len), true) = (shard_len, consistent) else {
        failures += members
            .iter()
            .filter(|&&m| matches!(scan.entries[m], ScanEntry::Damaged { .. }))
            .count() as u64;
        return (rebuilt, failures);
    };
    // Assemble the g + r shard slots: real members (intact = present,
    // damaged = erased), virtual zero members of a short group, then
    // parity. A surviving member longer than the shard length means
    // the parity cannot cover it — inconsistent, bail on this group.
    let mut slots: Vec<Option<&[u8]>> = Vec::with_capacity(g + r);
    let mut erased = 0usize;
    let mut sane = true;
    for slot in 0..g {
        let idx = q + slot * groups;
        if idx >= n {
            slots.push(Some(&[])); // virtual zero member
            continue;
        }
        match &scan.entries[idx] {
            ScanEntry::Intact { byte_range, .. } => {
                if byte_range.len() > shard_len {
                    sane = false;
                }
                // Scan byte ranges always index the scanned bytes;
                // `get` keeps this total regardless.
                slots.push(bytes.get(byte_range.clone()));
            }
            ScanEntry::Damaged { .. } => {
                erased += 1;
                slots.push(None);
            }
            ScanEntry::Parity { .. } => sane = false, // impossible slot
        }
    }
    for par in &group_parity {
        slots.push(par.map(|p| p.payload));
    }
    if !sane || erased == 0 {
        if erased > 0 {
            failures += erased as u64;
        }
        return (rebuilt, failures);
    }
    match ctx.coder.reconstruct(&slots, shard_len) {
        Ok(recovered) => {
            for (slot, shard) in recovered {
                let idx = q + slot * groups;
                // Accept only if the rebuilt shard parses as a CRC-valid
                // segment at offset 0 (the shard is the segment's own
                // header + payload + zero pad). This is the segment's
                // one and only parse — the decode stage reuses its
                // verified fields via `Rebuilt::seg`.
                match frame::segment_at(&shard, 0, idx, limits) {
                    Ok((seg, _)) => {
                        let (k, source_trits, payload_trits) =
                            (seg.k, seg.source_trits, seg.payload_trits);
                        rebuilt.push(Rebuilt {
                            entry: idx,
                            bytes: shard,
                            k,
                            source_trits,
                            payload_trits,
                            group: q,
                            parity_used: erased,
                        });
                    }
                    Err(_) => failures += 1,
                }
            }
        }
        Err(_) => failures += erased as u64,
    }
    (rebuilt, failures)
}

impl Engine {
    /// Decodes a `9CSF` frame in **salvage mode**: every intact segment
    /// is recovered byte-identically (decoded in parallel on the
    /// panic-isolated pool), every damaged byte range is skipped,
    /// resynchronised past, and materialised as an `X`-trit erasure run
    /// at its block-aligned offset. The report's `trits` is always
    /// exactly the header's `source_len` trits long. No parity
    /// reconstruction is attempted — see
    /// [`decode_frame_repair`](Engine::decode_frame_repair) for the full
    /// ladder.
    ///
    /// Segment-level problems — bad CRCs, truncated tails, malformed or
    /// limit-busting headers, payloads that fail 9C decoding, even a
    /// worker panic — become [`DamagedSegment`] entries, never errors.
    ///
    /// # Errors
    ///
    /// Only file-level problems fail the salvage: bad magic, a header
    /// shorter than [`frame::HEADER_BYTES`], an unsupported version, a
    /// file-header CRC mismatch ([`DecodeError::Frame`]), a Kraft-invalid
    /// stored table, or file-level [`DecodeError::LimitExceeded`] bombs
    /// (including an exhausted
    /// [`max_resync_probes`](frame::DecodeLimits::max_resync_probes)
    /// budget). Never panics on hostile input.
    pub fn decode_frame_salvage(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        let _span = ninec_obs::span("engine_decode_frame_salvage");
        let built = crate::engine::plan::build(bytes, self.limits(), BuildMode::Full)
            .map_err(DecodeError::from)?;
        execute(self, &built, false)
    }

    /// Decodes a `9CSF` frame through the **repair rung** of the ladder:
    /// like [`decode_frame_salvage`](Engine::decode_frame_salvage), but
    /// v3 parity groups first rebuild up to `r` damaged member segments
    /// per group byte-exactly (GF(256) Reed–Solomon erasure decoding at
    /// the CRC-certified erasure positions, each reconstruction
    /// re-verified against the segment's own CRC before acceptance).
    /// Repaired segments decode in parallel alongside intact ones and
    /// appear in the damage map as [`DamageReason::RepairedBy`] — only
    /// what repair could not reconstruct is erased to `X`.
    ///
    /// On v2 (or parity-free v3) frames this is exactly salvage.
    ///
    /// # Errors
    ///
    /// Same file-level failures as
    /// [`decode_frame_salvage`](Engine::decode_frame_salvage).
    pub fn decode_frame_repair(&self, bytes: &[u8]) -> Result<SalvageReport, DecodeError> {
        let _span = ninec_obs::span("engine_decode_frame_repair");
        let built = crate::engine::plan::build(bytes, self.limits(), BuildMode::Full)
            .map_err(DecodeError::from)?;
        execute(self, &built, true)
    }
}

/// The first executor run's per-job outcome: an intact segment's decode
/// (High priority) or one parity group's reconstruction (Low priority).
enum StageOut {
    Decoded(Result<TritVec, DecodeError>),
    Rebuilt(Vec<Rebuilt>, u64),
}

/// Executes the repair (`repair = true`) or salvage rung against an
/// already-built [`FramePlan`] — no byte of the frame is re-scanned or
/// re-CRC'd here. Backs [`Engine::execute_plan`] at
/// [`Policy::Repair`](crate::engine::plan::Policy::Repair) /
/// [`Policy::Salvage`](crate::engine::plan::Policy::Salvage).
pub(crate) fn execute(
    engine: &Engine,
    plan: &FramePlan<'_>,
    repair: bool,
) -> Result<SalvageReport, DecodeError> {
    let bytes = plan.bytes();
    let scan = plan.to_scan();
    let table =
        CodeTable::from_lengths(&scan.table_lengths).map_err(|_| frame::FrameError::BadTable)?;
    let source_len = scan.source_len;
    let limits = engine.limits();

    // Stage 1, one prioritized executor run: intact-segment decodes at
    // High priority (they are the critical path of every rung), parity
    // reconstruction of each damaged group backfilling at Low. Each
    // intact job is keyed by its *data ordinal* — the count of preceding
    // non-parity entries, which equals its output-plan index below — so
    // faultpoint and error attribution match the legacy single-batch
    // schedule exactly.
    let mut intact: Vec<(usize, frame::ParsedSegment<'_>)> = Vec::new();
    {
        let mut ordinal = 0usize;
        for entry in &scan.entries {
            match entry {
                ScanEntry::Intact { seg, .. } => {
                    intact.push((ordinal, *seg));
                    ordinal += 1;
                }
                ScanEntry::Damaged { .. } => ordinal += 1,
                ScanEntry::Parity { .. } => {}
            }
        }
    }
    let ctx = if repair && scan.parity_g > 0 {
        repair_context(&scan)
    } else {
        None
    };
    let damaged_groups: Vec<usize> = match &ctx {
        Some(c) => (0..c.groups)
            .filter(|&q| {
                frame::group_members(q, c.n, c.groups)
                    .any(|m| matches!(c.scan.entries[m], ScanEntry::Damaged { .. }))
            })
            .collect(),
        None => Vec::new(),
    };
    let boundary = intact.len();
    let results = exec::run_cancellable(
        engine.threads(),
        boundary + damaged_groups.len(),
        |i| {
            if i < boundary {
                Priority::High
            } else {
                Priority::Low
            }
        },
        engine.cancel(),
        |i| {
            if i < boundary {
                let (ordinal, seg) = &intact[i];
                let _seg_span = ninec_obs::trace_span_scope(
                    "segment_decode",
                    u32::try_from(*ordinal).unwrap_or(u32::MAX),
                    ninec_obs::TracePayload::None,
                );
                StageOut::Decoded(engine.decode_one_segment(seg, *ordinal, &table))
            } else {
                let group = damaged_groups[i - boundary];
                let _grp_span = ninec_obs::trace_span_scope(
                    "repair_group",
                    ninec_obs::NO_SEGMENT,
                    ninec_obs::TracePayload::Group {
                        group: u32::try_from(group).unwrap_or(u32::MAX),
                    },
                );
                match &ctx {
                    Some(c) => {
                        let (rb, failures) = repair_group(bytes, c, group, limits);
                        StageOut::Rebuilt(rb, failures)
                    }
                    None => StageOut::Rebuilt(Vec::new(), 0),
                }
            }
        },
    );
    let mut intact_results: HashMap<usize, pool::JobOutcome<Result<TritVec, DecodeError>>> =
        HashMap::with_capacity(boundary);
    let mut rebuilt: Vec<Rebuilt> = Vec::new();
    let mut repair_failures = 0u64;
    let mut panics = 0u64;
    let mut cancelled = 0u64;
    for (i, r) in results.into_iter().enumerate() {
        match r {
            pool::JobOutcome::Done(StageOut::Decoded(d)) => {
                intact_results.insert(intact[i].0, pool::JobOutcome::Done(d));
            }
            pool::JobOutcome::Done(StageOut::Rebuilt(rb, fails)) => {
                rebuilt.extend(rb);
                repair_failures += fails;
            }
            pool::JobOutcome::Panicked(p) => {
                if i < boundary {
                    intact_results.insert(intact[i].0, pool::JobOutcome::Panicked(p));
                } else {
                    // A panicking repair job degrades its whole group to
                    // plain salvage; the members stay erased.
                    panics += 1;
                }
            }
            pool::JobOutcome::Cancelled => {
                if i < boundary {
                    // An abandoned intact decode erases to X below, with
                    // the cancellation typed in the damage map.
                    intact_results.insert(intact[i].0, pool::JobOutcome::Cancelled);
                }
                // A cancelled repair job degrades its whole group to
                // plain salvage, exactly like a panicking one: the
                // members stay erased with their original reasons.
            }
        }
    }
    crate::metrics::publish_repair_failures(repair_failures);
    let repaired_at: HashMap<usize, &Rebuilt> = rebuilt.iter().map(|rb| (rb.entry, rb)).collect();
    crate::metrics::publish_repaired_segments(repaired_at.len() as u64);

    // Trusted lengths: intact + repaired segments. Untrusted:
    // unrepaired damaged claims.
    let intact_sum: usize = scan
        .entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            ScanEntry::Intact { seg, .. } => Some(seg.source_trits),
            ScanEntry::Damaged { .. } => repaired_at.get(&i).map(|rb| rb.source_trits),
            ScanEntry::Parity { .. } => None,
        })
        .fold(0usize, |a, b| a.saturating_add(b));
    let remaining = source_len.saturating_sub(intact_sum);
    let claims: Vec<Option<usize>> = scan
        .entries
        .iter()
        .enumerate()
        .filter_map(|(i, e)| match e {
            ScanEntry::Intact { .. } | ScanEntry::Parity { .. } => None,
            ScanEntry::Damaged { .. } if repaired_at.contains_key(&i) => None,
            ScanEntry::Damaged {
                claimed_source_trits,
                ..
            } => Some(*claimed_source_trits),
        })
        .collect();
    let erase_lens = resolve_erasures(&claims, remaining);

    // Build the output plan, clipping at the trusted source_len: an
    // entry that would overshoot (duplicated/spliced segments) is
    // erased and reported as a header mismatch rather than silently
    // growing the output. Intact parity segments contribute nothing.
    let mut plans: Vec<Plan<'_>> = Vec::with_capacity(scan.entries.len() + 1);
    let mut offset = 0usize;
    let mut erase_iter = erase_lens.into_iter();
    for (i, entry) in scan.entries.iter().enumerate() {
        match entry {
            ScanEntry::Intact { seg, byte_range } => {
                let want = seg.source_trits;
                if offset.saturating_add(want) <= source_len {
                    plans.push(Plan::Decode {
                        seg: *seg,
                        byte_range: byte_range.clone(),
                        trits: want,
                        repaired: None,
                    });
                    offset += want;
                } else {
                    // Doesn't fit the trusted total: header mismatch.
                    let take = source_len - offset;
                    plans.push(Plan::Erase {
                        byte_range: byte_range.clone(),
                        reason: DamageReason::HeaderMismatch(
                            "segment exceeds the header's source-length total",
                        ),
                        trits: take,
                    });
                    offset += take;
                }
            }
            ScanEntry::Parity { .. } => {}
            ScanEntry::Damaged {
                byte_range, reason, ..
            } => {
                if let Some(rb) = repaired_at.get(&i) {
                    let want = rb.source_trits;
                    if offset.saturating_add(want) <= source_len {
                        plans.push(Plan::Decode {
                            seg: rb.seg(),
                            byte_range: byte_range.clone(),
                            trits: want,
                            repaired: Some((rb.group, rb.parity_used)),
                        });
                        offset += want;
                        continue;
                    }
                    // Repaired but doesn't fit: fall through to erase.
                }
                let want = erase_iter.next().unwrap_or(0);
                let take = want.min(source_len - offset);
                plans.push(Plan::Erase {
                    byte_range: byte_range.clone(),
                    reason: reason.clone(),
                    trits: take,
                });
                offset += take;
            }
        }
    }
    if offset < source_len {
        // The body covers fewer trits than the trusted total — a
        // boundary truncation or excised segments. Erase the tail.
        let data_entries = scan
            .entries
            .iter()
            .filter(|e| !matches!(e, ScanEntry::Parity { .. }))
            .count();
        let reason = if data_entries < scan.claimed_segments {
            DamageReason::Truncated
        } else {
            DamageReason::HeaderMismatch(
                "segments cover fewer trits than the header's source-length total",
            )
        };
        plans.push(Plan::Erase {
            byte_range: bytes.len()..bytes.len(),
            reason,
            trits: source_len - offset,
        });
    }

    // Stage 2: decode the rebuilt segments (a short, all-High batch —
    // their bytes only exist now). Intact results are already in hand.
    let repaired_jobs: Vec<(usize, frame::ParsedSegment<'_>)> = plans
        .iter()
        .enumerate()
        .filter_map(|(i, p)| match p {
            Plan::Decode {
                seg,
                repaired: Some(_),
                ..
            } => Some((i, *seg)),
            _ => None,
        })
        .collect();
    let mut repaired_results: HashMap<usize, pool::JobOutcome<Result<TritVec, DecodeError>>> =
        repaired_jobs
            .iter()
            .map(|(i, _)| *i)
            .zip(pool::cancellable_map_indexed(
                engine.threads(),
                repaired_jobs.len(),
                engine.cancel(),
                |j| {
                    let (i, seg) = &repaired_jobs[j];
                    let _seg_span = ninec_obs::trace_span_scope(
                        "segment_decode",
                        u32::try_from(*i).unwrap_or(u32::MAX),
                        ninec_obs::TracePayload::None,
                    );
                    engine.decode_one_segment(seg, *i, &table)
                },
            ))
            .collect();

    // Assemble, panic-isolated: a panicked or mis-decoding segment
    // degrades to an erasure.
    let mut trits = TritVec::with_capacity(source_len);
    let mut damaged = Vec::new();
    let mut recovered = 0usize;
    let total = plans.len();
    for (i, plan) in plans.into_iter().enumerate() {
        let start = trits.len();
        let want = plan.trits();
        let result = match &plan {
            Plan::Decode { repaired: None, .. } => intact_results.remove(&i),
            Plan::Decode {
                repaired: Some(_), ..
            } => repaired_results.remove(&i),
            Plan::Erase { .. } => None,
        };
        let (byte_range, reason) = match (plan, result) {
            (
                Plan::Decode {
                    byte_range,
                    repaired,
                    ..
                },
                Some(pool::JobOutcome::Done(Ok(seg_out))),
            ) => {
                if seg_out.len() == want {
                    trits.extend_from_tritvec(&seg_out);
                    recovered += 1;
                    if let Some((group, parity_used)) = repaired {
                        ninec_obs::trace_instant(
                            "rung",
                            u32::try_from(i).unwrap_or(u32::MAX),
                            ninec_obs::RungKind::Repaired,
                            ninec_obs::TracePayload::Repair {
                                group: u32::try_from(group).unwrap_or(u32::MAX),
                                parity_used: u32::try_from(parity_used).unwrap_or(u32::MAX),
                            },
                        );
                        damaged.push(DamagedSegment {
                            index: i,
                            byte_range,
                            trit_range: start..start + want,
                            reason: DamageReason::RepairedBy { group, parity_used },
                        });
                    } else {
                        ninec_obs::trace_instant(
                            "rung",
                            u32::try_from(i).unwrap_or(u32::MAX),
                            ninec_obs::RungKind::Strict,
                            ninec_obs::TracePayload::None,
                        );
                    }
                    continue;
                }
                // A decoder returning the wrong length is a writer
                // bug; degrade to an erasure.
                (
                    byte_range,
                    DamageReason::Malformed("decoded length disagrees with the segment header"),
                )
            }
            (Plan::Decode { byte_range, .. }, Some(pool::JobOutcome::Done(Err(e)))) => {
                (byte_range, DamageReason::Decode(e))
            }
            (Plan::Decode { byte_range, .. }, Some(pool::JobOutcome::Panicked(_))) => {
                panics += 1;
                (byte_range, DamageReason::WorkerPanicked)
            }
            (Plan::Decode { byte_range, .. }, Some(pool::JobOutcome::Cancelled)) => {
                cancelled += 1;
                (byte_range, DamageReason::Cancelled)
            }
            (Plan::Decode { byte_range, .. }, None) => (
                // Unreachable: decode plans always have a stage result.
                byte_range,
                DamageReason::Malformed("internal plan/result mismatch"),
            ),
            (
                Plan::Erase {
                    byte_range, reason, ..
                },
                _,
            ) => (byte_range, reason),
        };
        ninec_obs::trace_instant(
            "rung",
            u32::try_from(i).unwrap_or(u32::MAX),
            ninec_obs::RungKind::Salvaged,
            ninec_obs::TracePayload::Erase {
                trits: u32::try_from(want).unwrap_or(u32::MAX),
            },
        );
        trits.push_run(Trit::X, want);
        damaged.push(DamagedSegment {
            index: i,
            byte_range,
            trit_range: start..start + want,
            reason,
        });
    }
    crate::metrics::publish_worker_panics(panics);
    crate::metrics::publish_cancelled_jobs(cancelled);
    if !damaged.is_empty() {
        crate::metrics::publish_salvaged_segments(recovered as u64);
        // A partial salvage is a flush trigger: make sure this thread's
        // events are visible to `take_trace` even if the thread lives on.
        ninec_obs::flush_thread_trace();
    }
    Ok(SalvageReport {
        trits,
        recovered_segments: recovered,
        total_segments: total,
        damaged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frame::{HEADER_BYTES, HEADER_BYTES_V3};
    use crate::engine::Engine;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    fn sample_stream() -> TritVec {
        tv(&"0X0X01X001X0101X111111110000X1111X0110XX".repeat(20))
    }

    fn engine() -> Engine {
        Engine::builder().threads(2).segment_bits(64).build()
    }

    /// A v3 engine: 64-trit segments, groups of `g` data segments with
    /// `r` parity shards each.
    fn v3_engine(g: u8, r: u8) -> Engine {
        Engine::builder()
            .threads(2)
            .segment_bits(64)
            .parity(g, r)
            .build()
    }

    /// Byte offset of data segment `i`'s first payload byte in a frame
    /// whose data segments all have `payload_len` payload bytes.
    fn seg_payload_at(header_bytes: usize, payload_len: usize, i: usize) -> usize {
        header_bytes + i * (frame::SEGMENT_HEADER_BYTES + payload_len) + frame::SEGMENT_HEADER_BYTES
    }

    #[test]
    fn clean_frame_salvages_to_full_recovery() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let report = e.decode_frame_salvage(&frame_bytes).expect("salvages");
        assert!(report.is_full_recovery());
        assert_eq!(report.recovered_segments, report.total_segments);
        assert_eq!(report.trits, e.decode_frame(&frame_bytes).expect("decodes"));
    }

    #[test]
    fn corrupt_segment_becomes_an_x_erasure_run() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");

        // Corrupt the first segment's first payload byte.
        let mut bad = frame_bytes.clone();
        bad[HEADER_BYTES + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        let report = e.decode_frame_salvage(&bad).expect("salvages");
        assert!(!report.is_full_recovery());
        assert_eq!(report.damaged.len(), 1);
        assert_eq!(report.trits.len(), stream.len());
        let d = &report.damaged[0];
        assert_eq!(d.index, 0);
        assert_eq!(d.reason, DamageReason::BadCrc);
        assert_eq!(d.trit_range.start, 0);
        assert_eq!(d.trit_range.end, 64, "segment covers one 64-trit shard");
        // Inside the damaged range: all X. Outside: identical to clean.
        for i in 0..report.trits.len() {
            let got = report.trits.get(i).expect("in range");
            if d.trit_range.contains(&i) {
                assert!(got.is_x(), "trit {i} inside damage must be X");
            } else {
                assert_eq!(Some(got), clean.get(i), "trit {i} outside damage");
            }
        }
        // Strict mode still fails closed on the same bytes.
        assert!(e.decode_frame(&bad).is_err());
    }

    #[test]
    fn truncated_tail_erases_the_missing_trits() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let cut = frame_bytes.len() - 3;
        let report = e
            .decode_frame_salvage(&frame_bytes[..cut])
            .expect("salvages");
        assert_eq!(report.trits.len(), stream.len());
        assert!(!report.is_full_recovery());
        let last = report.damaged.last().expect("damage recorded");
        assert_eq!(last.trit_range.end, stream.len());
        assert_eq!(last.reason, DamageReason::Truncated);
    }

    #[test]
    fn boundary_truncation_synthesizes_a_tail_entry() {
        let stream = sample_stream();
        let e = engine();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        assert!(parsed.segments.len() >= 2, "test needs multiple segments");
        // Cut exactly at the last segment's boundary: the walk sees only
        // intact segments but the totals are short.
        let last_seg_bytes =
            frame::SEGMENT_HEADER_BYTES + parsed.segments.last().expect("nonempty").payload.len();
        let cut = frame_bytes.len() - last_seg_bytes;
        let report = e
            .decode_frame_salvage(&frame_bytes[..cut])
            .expect("salvages");
        assert_eq!(report.trits.len(), stream.len());
        let last = report.damaged.last().expect("tail damage recorded");
        assert_eq!(last.reason, DamageReason::Truncated);
        assert_eq!(last.byte_range, cut..cut);
        assert!(last.trit_range.end == stream.len());
    }

    #[test]
    fn all_segments_damaged_is_all_x_not_an_error() {
        let stream = tv(&"01X0".repeat(16));
        let e = Engine::builder().threads(1).segment_bits(1 << 20).build();
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        // Corrupt the single segment.
        let mut bad = frame_bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xFF;
        let report = e.decode_frame_salvage(&bad).expect("salvages");
        assert_eq!(report.recovered_segments, 0);
        assert_eq!(report.trits.len(), stream.len());
        assert!((0..report.trits.len()).all(|i| report.trits.get(i).is_some_and(|t| t.is_x())));
    }

    #[test]
    fn header_level_damage_is_still_fatal() {
        let stream = sample_stream();
        let e = engine();
        let mut frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        frame_bytes[7] ^= 0x01; // a code-length byte, covered by header CRC
        assert!(matches!(
            e.decode_frame_salvage(&frame_bytes),
            Err(DecodeError::Frame(frame::FrameError::BadHeaderCrc))
        ));
        assert!(matches!(
            e.decode_frame_salvage(b"junk"),
            Err(DecodeError::Frame(frame::FrameError::BadMagic))
        ));
    }

    #[test]
    fn resolve_erasures_covers_the_cases() {
        assert!(resolve_erasures(&[], 0).is_empty());
        assert_eq!(resolve_erasures(&[Some(9)], 5), vec![5]);
        assert_eq!(resolve_erasures(&[None], 5), vec![5]);
        assert_eq!(resolve_erasures(&[Some(3), Some(4)], 7), vec![3, 4]);
        // Inconsistent claims: clamp in order, last takes the rest.
        assert_eq!(resolve_erasures(&[Some(100), Some(4)], 7), vec![7, 0]);
        assert_eq!(resolve_erasures(&[None, Some(4)], 7), vec![0, 7]);
        assert_eq!(
            resolve_erasures(&[Some(2), None, Some(1)], 9),
            vec![2, 0, 7]
        );
    }

    // ------------------------------------------------------------------
    // Repair rung (frame v3).
    // ------------------------------------------------------------------

    #[test]
    fn repair_rebuilds_a_corrupt_segment_bit_exact() {
        let stream = sample_stream();
        let e = v3_engine(4, 1);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        let payload_len = parsed.segments[0].payload.len();
        assert!(parsed.segments.len() >= 2, "test needs multiple segments");
        assert!(!parsed.parity.is_empty(), "v3 frame carries parity");

        // Corrupt segment 1's payload.
        let mut bad = frame_bytes.clone();
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 1)] ^= 0x55;

        // Salvage alone erases it...
        let salvage = e.decode_frame_salvage(&bad).expect("salvages");
        assert!(!salvage.is_full_recovery());
        assert_eq!(salvage.damaged[0].reason, DamageReason::BadCrc);

        // ...the repair rung rebuilds it bit-exactly.
        let report = e.decode_frame_repair(&bad).expect("repairs");
        assert!(report.is_full_recovery(), "repair must be full recovery");
        assert_eq!(report.trits, clean, "repaired output is bit-exact");
        assert_eq!(report.repaired_segments(), 1);
        let d = report
            .damaged
            .iter()
            .find(|d| d.reason.is_repaired())
            .expect("a RepairedBy entry");
        assert_eq!(d.index, 1);
        assert!(matches!(
            d.reason,
            DamageReason::RepairedBy { parity_used: 1, .. }
        ));
    }

    #[test]
    fn g1_replication_repairs_any_single_segment() {
        // g = 1, r = 1: every data segment has its own parity copy; any
        // single corrupted data segment must decode bit-exact.
        let stream = sample_stream();
        let e = v3_engine(1, 1);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        let payload_len = parsed.segments[0].payload.len();
        for i in 0..parsed.segments.len() {
            let mut bad = frame_bytes.clone();
            bad[seg_payload_at(HEADER_BYTES_V3, payload_len, i)] ^= 0xFF;
            let report = e.decode_frame_repair(&bad).expect("repairs");
            assert!(report.is_full_recovery(), "segment {i} repairs");
            assert_eq!(report.trits, clean, "segment {i} bit-exact");
            assert_eq!(report.repaired_segments(), 1, "segment {i}");
        }
    }

    #[test]
    fn over_budget_damage_falls_back_to_salvage() {
        let stream = sample_stream();
        // One big group, one parity shard: two damaged members exceed r.
        let e = v3_engine(32, 1);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        assert!(parsed.segments.len() >= 3);
        let payload_len = parsed.segments[0].payload.len();
        let mut bad = frame_bytes.clone();
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 0)] ^= 0x55;
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 2)] ^= 0x55;
        let report = e.decode_frame_repair(&bad).expect("falls back to salvage");
        assert!(!report.is_full_recovery());
        assert_eq!(report.repaired_segments(), 0);
        // Both damaged ranges are X-erased; everything else matches.
        let clean = e.decode_frame(&frame_bytes).expect("decodes");
        assert_eq!(report.trits.len(), clean.len());
        for d in &report.damaged {
            assert!(!d.trit_range.is_empty());
            for i in d.trit_range.clone() {
                assert!(report.trits.get(i).is_some_and(|t| t.is_x()));
            }
        }
    }

    #[test]
    fn corrupted_parity_segment_is_still_full_recovery() {
        let stream = sample_stream();
        let e = v3_engine(4, 2);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        assert!(!parsed.parity.is_empty());
        // Corrupt the last byte of the frame — inside the final parity
        // shard's payload.
        let mut bad = frame_bytes.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x55;
        for report in [
            e.decode_frame_repair(&bad).expect("repairs"),
            e.decode_frame_salvage(&bad).expect("salvages"),
        ] {
            // The decoded data is bit-exact; the dead parity shard covers
            // zero output trits, so this still counts as full recovery.
            assert_eq!(report.trits, clean);
            assert!(report.is_full_recovery());
            assert_eq!(report.repaired_segments(), 0);
            let d = report.damaged.last().expect("parity damage recorded");
            assert!(d.trit_range.is_empty());
        }
    }

    #[test]
    fn damaged_data_and_damaged_parity_in_different_groups_both_handled() {
        let stream = sample_stream();
        let e = v3_engine(2, 1);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        let n = parsed.segments.len();
        let groups = parsed.groups();
        assert!(groups >= 2, "test needs at least two groups (n = {n})");
        let payload_len = parsed.segments[0].payload.len();
        // Damage data segment 0 (group 0) and the *other* group's parity:
        // repair must still fix the data segment.
        let mut bad = frame_bytes.clone();
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 0)] ^= 0x55;
        let last = bad.len() - 1; // final parity shard = last group's
        bad[last] ^= 0x55;
        let report = e.decode_frame_repair(&bad).expect("repairs");
        assert_eq!(report.trits, clean);
        assert!(report.is_full_recovery());
        assert_eq!(report.repaired_segments(), 1);
    }

    #[test]
    fn repair_on_v2_frames_is_exactly_salvage() {
        let stream = sample_stream();
        let e = engine(); // v2: no parity
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let mut bad = frame_bytes.clone();
        bad[HEADER_BYTES + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        let repair = e.decode_frame_repair(&bad).expect("ladder runs");
        let salvage = e.decode_frame_salvage(&bad).expect("salvages");
        assert_eq!(repair, salvage);
        assert!(!repair.is_full_recovery());
    }

    #[test]
    fn dead_parity_for_the_damaged_group_falls_back_to_erasure() {
        let stream = sample_stream();
        let e = v3_engine(1, 1);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        let n = parsed.segments.len();
        assert!(n >= 2);
        let payload_len = parsed.segments[0].payload.len();
        // Damage data segment 0 *and* its own parity shard (group 0 is
        // the first parity segment with g = 1).
        let data_end = seg_payload_at(HEADER_BYTES_V3, payload_len, n - 1) + payload_len;
        let mut bad = frame_bytes.clone();
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 0)] ^= 0x55;
        bad[data_end + frame::SEGMENT_HEADER_BYTES] ^= 0x55;
        let report = e.decode_frame_repair(&bad).expect("ladder runs");
        assert!(!report.is_full_recovery());
        assert_eq!(report.repaired_segments(), 0);
        let d = &report.damaged[0];
        assert_eq!(d.index, 0);
        assert!(!d.reason.is_repaired());
        for i in d.trit_range.clone() {
            assert!(report.trits.get(i).is_some_and(|t| t.is_x()));
        }
    }

    #[test]
    fn multi_fault_within_budget_repairs_across_groups() {
        let stream = sample_stream();
        // g = 2, r = 1 → interleaved groups; damage one member of two
        // *different* groups: both repair.
        let e = v3_engine(2, 1);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&frame_bytes).expect("decodes");
        let parsed = frame::parse(&frame_bytes).expect("own frame parses");
        let groups = parsed.groups();
        assert!(groups >= 2);
        let payload_len = parsed.segments[0].payload.len();
        // Segments 0 and 2 land in different interleaved groups (i % G;
        // here G > 2). They are also non-adjacent in the file, so the
        // scan reports two distinct damaged entries — adjacent damage
        // merges into one resync range, which repair (correctly) refuses
        // to guess about.
        assert!(groups > 2, "need distinct groups for segments 0 and 2");
        let mut bad = frame_bytes.clone();
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 0)] ^= 0x55;
        bad[seg_payload_at(HEADER_BYTES_V3, payload_len, 2)] ^= 0x55;
        let report = e.decode_frame_repair(&bad).expect("repairs");
        assert_eq!(report.trits, clean);
        assert!(report.is_full_recovery());
        assert_eq!(report.repaired_segments(), 2);
    }

    #[test]
    fn clean_v3_frame_decodes_strict_and_reports_no_damage() {
        let stream = sample_stream();
        let e = v3_engine(4, 2);
        let frame_bytes = e.encode_frame(8, &stream).expect("valid K");
        // Strict decode ignores parity segments entirely.
        let strict = e.decode_frame(&frame_bytes).expect("strict decodes v3");
        assert_eq!(strict.len(), stream.len());
        let report = e.decode_frame_repair(&frame_bytes).expect("repairs");
        assert!(report.damaged.is_empty());
        assert!(report.is_full_recovery());
        assert_eq!(report.trits, strict);
    }
}

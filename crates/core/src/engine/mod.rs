//! Sharded multi-core codec engine.
//!
//! The paper's Fig. 4(c) parallel-decompressor splits the encoded stream
//! across independent FSMs; [`Engine`] is the software mirror of that
//! architecture. It partitions a source stream into block-aligned
//! **segments**, encodes/decodes them concurrently on a vendored, std-only
//! work-stealing pool ([`pool`]), and merges deterministically — the
//! output is byte-identical regardless of thread count, with a serial
//! in-caller fallback at `threads = 1`.
//!
//! Two output shapes:
//!
//! - [`Engine::encode`] — a plain [`Encoded`] stream, **bit-identical**
//!   to [`Encoder::encode_stream`](crate::encode::Encoder::encode_stream)
//!   on the same input (segments are aligned to `K`-block boundaries and
//!   9C's min-size case selection is block-local, so concatenation is
//!   exact);
//! - [`Engine::encode_frame`] — the self-describing [`frame`] container
//!   (`9CSF`: magic, version, per-segment `K`, trit length, encoded
//!   length, CRC), which is what makes *parallel decode* possible:
//!   variable-length codewords have no sync points, so the decoder needs
//!   out-of-band segment boundaries. Frames also unlock per-segment block
//!   size selection ([`Engine::encode_frame_best_k`]), the per-shard
//!   parameter choice that code-based schemes win on.
//!
//! Case selection is the paper's min-size greedy: it is block-local, which
//! is exactly the property that makes segment-parallel encoding exact.
//! (Power-aware selection tracks state across block seams and is therefore
//! only available on the serial [`Encoder`](crate::encode::Encoder).)
//!
//! Telemetry (default-on `obs` feature, batched at segment boundaries):
//! per-worker queue-depth gauges, steal/segment counters and
//! segment-latency histograms — see [`crate::metrics`].
//!
//! ```
//! use ninec::engine::Engine;
//! use ninec::encode::Encoder;
//! use ninec_testdata::trit::TritVec;
//!
//! let stream: TritVec = "0X0X00XX1111X11101X0".repeat(50).parse()?;
//! let engine = Engine::builder().threads(4).segment_bits(128).build();
//!
//! // Parallel encode is bit-identical to the serial encoder...
//! let parallel = engine.encode(8, &stream)?;
//! assert_eq!(parallel, Encoder::new(8)?.encode_stream(&stream));
//!
//! // ...and the framed container decodes in parallel too.
//! let frame = engine.encode_frame(8, &stream)?;
//! let back = engine.decode_frame(&frame)?;
//! assert_eq!(back.len(), stream.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
#![deny(clippy::unwrap_used)]

pub mod archive;
pub mod audit;
pub mod cancel;
pub mod ecc;
pub mod exec;
pub mod faultpoint;
pub mod frame;
pub mod plan;
pub mod pool;
pub mod reader;
pub mod salvage;
pub mod scrub;

pub use archive::{Archive, ArchiveError, ArchiveStats, FrameInfo};
pub use audit::{DecodeAudit, SegmentAudit, SegmentRung};
pub use cancel::{CancelToken, Trip};
pub use ecc::{EccError, ParityCoder};
pub use exec::active_jobs;
pub use frame::{DamageReason, DecodeLimits, FrameError};
pub use plan::{FramePlan, PlanEntry, Policy};
pub use reader::{FrameReader, ReadError, StreamItem};
pub use salvage::{DamagedSegment, SalvageReport};
pub use scrub::{ScrubFinding, ScrubMode, ScrubReport, ScrubVerdict};

/// A cheaply clonable, thread-safe handle to one [`Engine`].
///
/// The engine itself is `Send + Sync` (immutable after build), so a
/// server can hold one engine per tenant behind an `Arc` and hand clones
/// to every connection handler without re-validating configuration —
/// this is the handle `ninec-serve` multiplexes connections onto.
pub type SharedEngine = std::sync::Arc<Engine>;

use crate::code::CodeTable;
use crate::decode::{DecodeError, StreamDecoder};
use crate::encode::{EncodeStats, EncodeTotals, Encoded, Encoder, InvalidBlockSize};
use crate::stream::BitCounter;
use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// Default segment size in source trits (1 Mbit), before block alignment.
pub const DEFAULT_SEGMENT_BITS: usize = 1 << 20;

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "NINEC_THREADS";

/// The default worker-thread count: `NINEC_THREADS` if set to a positive
/// integer, else [`std::thread::available_parallelism`], clamped to
/// [`pool::MAX_THREADS`].
#[must_use]
pub fn default_threads() -> usize {
    let env = std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    let n = env.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    n.clamp(1, pool::MAX_THREADS)
}

/// Error from framing a stream: either the block size is invalid or a
/// segment overflows the `9CSF` header fields (4 Gi-trit per-segment
/// ceiling). Replaces the encode-side `expect`s older releases carried —
/// oversized segments are an error, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EncodeFrameError {
    /// The requested block size is not even and at least 4.
    InvalidBlockSize(InvalidBlockSize),
    /// A segment (or the segment count) overflows its frame header field.
    Frame(FrameError),
    /// The configured parity geometry is invalid (`g = 0` with parity
    /// shards requested, or `g + r` beyond the GF(256) shard ceiling).
    Parity(ecc::EccError),
}

impl fmt::Display for EncodeFrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeFrameError::InvalidBlockSize(e) => write!(f, "{e}"),
            EncodeFrameError::Frame(e) => write!(f, "cannot frame stream: {e}"),
            EncodeFrameError::Parity(e) => write!(f, "cannot add parity: {e}"),
        }
    }
}

impl std::error::Error for EncodeFrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EncodeFrameError::InvalidBlockSize(e) => Some(e),
            EncodeFrameError::Frame(e) => Some(e),
            EncodeFrameError::Parity(e) => Some(e),
        }
    }
}

impl From<InvalidBlockSize> for EncodeFrameError {
    fn from(e: InvalidBlockSize) -> Self {
        EncodeFrameError::InvalidBlockSize(e)
    }
}

impl From<FrameError> for EncodeFrameError {
    fn from(e: FrameError) -> Self {
        EncodeFrameError::Frame(e)
    }
}

/// Builder for [`Engine`] (see the module docs for the knobs' meaning).
#[derive(Debug, Clone, Default)]
#[must_use]
pub struct EngineBuilder {
    threads: Option<usize>,
    segment_bits: Option<usize>,
    table: Option<CodeTable>,
    limits: Option<DecodeLimits>,
    parity: Option<(u8, u8)>,
    cancel: Option<CancelToken>,
    #[cfg(feature = "failpoints")]
    failpoints: Vec<faultpoint::FailPoint>,
}

impl EngineBuilder {
    /// Worker threads. Defaults to [`default_threads`] (the
    /// `NINEC_THREADS` environment variable, else the machine's available
    /// parallelism). `1` selects the serial in-caller fallback.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.clamp(1, pool::MAX_THREADS));
        self
    }

    /// Target segment size in source trits (default
    /// [`DEFAULT_SEGMENT_BITS`]). Rounded down to a whole number of
    /// `K`-bit blocks at encode time (minimum one block), so thread count
    /// never influences where segments fall.
    pub fn segment_bits(mut self, bits: usize) -> Self {
        self.segment_bits = Some(bits.max(1));
        self
    }

    /// Code table (default: the paper's Table I code).
    pub fn table(mut self, table: CodeTable) -> Self {
        self.table = Some(table);
        self
    }

    /// Resource ceilings for frame decode (default:
    /// [`DecodeLimits::default`]). Use [`DecodeLimits::unlimited`] for
    /// trusted input.
    pub fn limits(mut self, limits: DecodeLimits) -> Self {
        self.limits = Some(limits);
        self
    }

    /// Erasure-coding geometry for encoded frames: every `g` data
    /// segments (interleaved — see [`frame::group_of`]) are protected by
    /// `r` GF(256) Reed–Solomon parity segments, and the frame is
    /// emitted as **v3**. Up to `r` damaged segments per group can be
    /// rebuilt byte-exactly by
    /// [`decode_frame_repair`](Engine::decode_frame_repair).
    ///
    /// `r = 0` disables parity (plain v2 frames, the default). Invalid
    /// geometry (`g = 0` with `r > 0`, or `g + r >`
    /// [`ecc::MAX_SHARDS`]) is reported at encode time as
    /// [`EncodeFrameError::Parity`].
    pub fn parity(mut self, g: u8, r: u8) -> Self {
        self.parity = if r == 0 { None } else { Some((g, r)) };
        self
    }

    /// Cooperative cancellation for this engine's frame decodes: workers
    /// check `token` **between** segments, so a tripped token abandons
    /// the remaining segment jobs — strict mode then fails typed
    /// ([`DecodeError::Cancelled`] / [`DecodeError::DeadlineExceeded`])
    /// while repair/salvage erase the unfinished segments as
    /// [`DamageReason::Cancelled`] in a partial report. Encode paths are
    /// unaffected. Default: no token, never cancelled.
    pub fn cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Arms a deterministic fault-injection point on the decode path
    /// (see [`faultpoint`]). Only available with the `failpoints` cargo
    /// feature; production builds cannot arm faults.
    #[cfg(feature = "failpoints")]
    pub fn failpoint(mut self, point: faultpoint::FailPoint) -> Self {
        self.failpoints.push(point);
        self
    }

    /// Finalizes the engine. With the `failpoints` feature, any
    /// [`faultpoint::ENV`] (`NINEC_FAILPOINT`) spec is parsed here and
    /// appended to the explicitly armed points; a malformed spec is
    /// ignored rather than panicking.
    pub fn build(self) -> Engine {
        #[cfg(feature = "failpoints")]
        let failpoints = {
            let mut points = self.failpoints;
            if let Ok(spec) = std::env::var(faultpoint::ENV) {
                if let Ok(mut parsed) = faultpoint::parse_spec(&spec) {
                    points.append(&mut parsed);
                }
            }
            points
        };
        #[cfg(not(feature = "failpoints"))]
        let failpoints = Vec::new();
        Engine {
            threads: self.threads.unwrap_or_else(default_threads),
            segment_bits: self.segment_bits.unwrap_or(DEFAULT_SEGMENT_BITS),
            table: self.table.unwrap_or_else(CodeTable::paper),
            limits: self.limits.unwrap_or_default(),
            parity: self.parity,
            cancel: self.cancel,
            failpoints,
        }
    }

    /// Finalizes the engine behind a [`SharedEngine`] handle, ready to
    /// be cloned across connection handlers or worker threads.
    pub fn build_shared(self) -> SharedEngine {
        std::sync::Arc::new(self.build())
    }
}

/// The sharded multi-core codec engine (see the module docs).
#[derive(Debug, Clone)]
pub struct Engine {
    threads: usize,
    segment_bits: usize,
    table: CodeTable,
    limits: DecodeLimits,
    parity: Option<(u8, u8)>,
    cancel: Option<CancelToken>,
    /// Armed fault-injection points. Always empty unless the
    /// `failpoints` feature armed some — the decode path checks an empty
    /// slice, which is free.
    failpoints: Vec<faultpoint::FailPoint>,
}

impl Default for Engine {
    /// An engine with default threads/segmenting and the paper's table.
    fn default() -> Self {
        Engine::builder().build()
    }
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Worker threads this engine schedules onto.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Target segment size in source trits (before block alignment).
    #[must_use]
    pub fn segment_bits(&self) -> usize {
        self.segment_bits
    }

    /// The engine's code table.
    #[must_use]
    pub fn table(&self) -> &CodeTable {
        &self.table
    }

    /// The resource ceilings applied to frame decodes.
    #[must_use]
    pub fn limits(&self) -> &DecodeLimits {
        &self.limits
    }

    /// The configured `(g, r)` parity geometry, if any — `Some` means
    /// encoded frames are v3 with GF(256) parity groups.
    #[must_use]
    pub fn parity(&self) -> Option<(u8, u8)> {
        self.parity
    }

    /// The engine's [`CancelToken`], if one was attached at build time —
    /// checked between segments on every frame decode.
    #[must_use]
    pub fn cancel(&self) -> Option<&CancelToken> {
        self.cancel.as_ref()
    }

    /// Segment length for block size `k`: `segment_bits` rounded down to
    /// a whole number of blocks, minimum one block.
    fn segment_len(&self, k: usize) -> usize {
        (self.segment_bits / k * k).max(k)
    }

    /// Splits `[0, len)` into `[start, end)` segment ranges of `seg_len`
    /// trits (the last segment may be ragged).
    fn segment_ranges(len: usize, seg_len: usize) -> Vec<(usize, usize)> {
        (0..len.div_ceil(seg_len))
            .map(|i| (i * seg_len, ((i + 1) * seg_len).min(len)))
            .collect()
    }

    /// Compresses `stream` at block size `k`, sharding the work across the
    /// pool. The result — stream bits, stats, everything — is bit-identical
    /// to [`Encoder::encode_stream`] and independent of the thread count.
    ///
    /// # Errors
    ///
    /// [`InvalidBlockSize`] unless `k` is even and at least 4.
    pub fn encode(&self, k: usize, stream: &TritVec) -> Result<Encoded, InvalidBlockSize> {
        let _span = ninec_obs::span("engine_encode");
        let encoder = Encoder::with_table(k, self.table.clone())?;
        let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
        let ranges = Self::segment_ranges(stream.len(), self.segment_len(k));
        let parts: Vec<(TritVec, EncodeTotals)> =
            pool::map_indexed(self.threads, ranges.len(), |i| {
                let (start, end) = ranges[i];
                encode_segment(&encoder, stream, start, end)
            });
        // Deterministic merge: segment order is source order.
        let mut out = TritVec::with_capacity(parts.iter().map(|(s, _)| s.len()).sum());
        let mut stats = EncodeStats::default();
        for (seg_stream, totals) in &parts {
            out.extend_from_tritvec(seg_stream);
            merge_stats(&mut stats, &totals.stats);
        }
        if let Some(t0) = t0 {
            crate::metrics::publish_encode_throughput(stream.len(), t0.elapsed().as_secs_f64());
        }
        Ok(Encoded::from_parts(
            k,
            self.table.clone(),
            out,
            stream.len(),
            stats,
        ))
    }

    /// Compresses `stream` into a self-describing `9CSF` [`frame`] with a
    /// uniform per-segment block size `k`. Segment payloads are encoded
    /// concurrently; the frame bytes are independent of the thread count.
    ///
    /// # Errors
    ///
    /// [`EncodeFrameError::InvalidBlockSize`] unless `k` is even and at
    /// least 4; [`EncodeFrameError::Frame`] when a segment overflows the
    /// `9CSF` header fields (the 4 Gi-trit per-segment ceiling).
    pub fn encode_frame(&self, k: usize, stream: &TritVec) -> Result<Vec<u8>, EncodeFrameError> {
        self.encode_frame_best_k(&[k], stream)
    }

    /// Compresses `stream` into a `9CSF` frame, choosing for **each
    /// segment** the candidate block size that minimizes that segment's
    /// encoded length (ties to the smaller `K`) — per-shard parameter
    /// selection in the spirit of the evolutionary code-based schemes.
    ///
    /// Segment boundaries come from the *first* candidate (so the frame
    /// geometry is deterministic); every candidate is sized with a
    /// counting pass and the winner is re-encoded for real.
    ///
    /// # Errors
    ///
    /// [`EncodeFrameError::InvalidBlockSize`] if `candidates` is empty
    /// (reported as `k = 0`) or contains an odd / undersized block size;
    /// [`EncodeFrameError::Frame`] when a segment (or the segment count)
    /// overflows the `9CSF` header fields.
    pub fn encode_frame_best_k(
        &self,
        candidates: &[usize],
        stream: &TritVec,
    ) -> Result<Vec<u8>, EncodeFrameError> {
        let _span = ninec_obs::span("engine_encode_frame");
        let Some(&first) = candidates.first() else {
            return Err(InvalidBlockSize { k: 0 }.into());
        };
        let encoders = candidates
            .iter()
            .map(|&k| Encoder::with_table(k, self.table.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        let ranges = Self::segment_ranges(stream.len(), self.segment_len(first));
        let parts: Vec<(usize, TritVec)> = pool::map_indexed(self.threads, ranges.len(), |i| {
            let (start, end) = ranges[i];
            let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
            let enc = if encoders.len() == 1 {
                &encoders[0]
            } else {
                // Counting pass per candidate; deterministic tie-break on
                // (size, K).
                encoders
                    .iter()
                    .min_by_key(|enc| {
                        let mut counter = BitCounter::default();
                        let mut se = enc.stream_encoder(&mut counter);
                        se.feed(stream.slice_view(start, end));
                        se.finish();
                        (counter.bits(), enc.k())
                    })
                    .expect("candidate list verified non-empty above")
            };
            let (seg_stream, _totals) = encode_segment(enc, stream, start, end);
            if let Some(t0) = t0 {
                crate::metrics::publish_segment_encode(t0.elapsed().as_nanos() as u64);
            }
            (enc.k(), seg_stream)
        });
        let mut out = Vec::new();
        let segment_count = u32::try_from(ranges.len()).map_err(|_| {
            EncodeFrameError::Frame(FrameError::SegmentTooLarge {
                what: "segment count",
                len: ranges.len(),
            })
        })?;
        // Validate parity geometry up front so the error surfaces even
        // for streams short enough to need no parity shards.
        let coder = match self.parity {
            Some((g, r)) => Some(
                ecc::ParityCoder::new(g as usize, r as usize).map_err(EncodeFrameError::Parity)?,
            ),
            None => None,
        };
        match self.parity {
            Some((g, r)) => frame::write_header_v3(
                &mut out,
                self.table.lengths(),
                segment_count,
                stream.len() as u64,
                g,
                r,
            ),
            None => frame::write_header(
                &mut out,
                self.table.lengths(),
                segment_count,
                stream.len() as u64,
            ),
        }
        let mut seg_spans: Vec<std::ops::Range<usize>> = Vec::with_capacity(parts.len());
        for (i, (k, seg_stream)) in parts.iter().enumerate() {
            let (start, end) = ranges[i];
            let at = out.len();
            frame::write_segment(&mut out, *k, end - start, seg_stream)?;
            seg_spans.push(at..out.len());
        }
        if let (Some(coder), Some((g, _r))) = (coder, self.parity) {
            // Parity shards cover each group's member segments — full
            // header + payload bytes, zero-padded to the group's longest
            // member — so a reconstructed shard *is* the segment,
            // re-verifiable against its own CRC.
            let n = seg_spans.len();
            let groups = frame::group_count(n, g);
            let parity_start = out.len();
            let mut shards: Vec<(usize, usize, Vec<u8>)> = Vec::new();
            for q in 0..groups {
                let members: Vec<&[u8]> = frame::group_members(q, n, groups)
                    .map(|i| &out[seg_spans[i].clone()])
                    .collect();
                let shard_len = members.iter().map(|m| m.len()).max().unwrap_or(0);
                for (j, shard) in coder.encode(&members, shard_len).into_iter().enumerate() {
                    shards.push((q, j, shard));
                }
            }
            for (q, j, shard) in &shards {
                frame::write_parity_segment(&mut out, *q, *j, shard)?;
            }
            crate::metrics::publish_parity_bits(((out.len() - parity_start) * 8) as u64);
        }
        Ok(out)
    }

    /// Decodes a `9CSF` frame, decoding segments concurrently and
    /// concatenating them in stream order. Output is independent of the
    /// thread count.
    ///
    /// # Errors
    ///
    /// - [`DecodeError::TruncatedStream`] when the byte stream ends early;
    /// - [`DecodeError::LimitExceeded`] when a header-claimed size
    ///   exceeds the engine's [`DecodeLimits`] (checked before any
    ///   allocation — the decompression-bomb guard);
    /// - [`DecodeError::Frame`] for every other structural problem (bad
    ///   magic, bad CRC, bad table, malformed segment);
    /// - [`DecodeError::WorkerPanicked`] when a segment's decode task
    ///   panicked (only reachable with an armed `failpoints` fault or a
    ///   codec bug) — the panic is caught at the task boundary, every
    ///   other segment still completes, and the merge never deadlocks;
    /// - the usual [`DecodeError`] variants when a CRC-valid segment still
    ///   fails 9C decoding.
    ///
    /// Never panics on hostile input. For decode-what-you-can recovery
    /// instead of fail-closed, see
    /// [`decode_frame_salvage`](Engine::decode_frame_salvage).
    pub fn decode_frame(&self, bytes: &[u8]) -> Result<TritVec, DecodeError> {
        let _span = ninec_obs::span("engine_decode_frame");
        // One fail-fast plan build (a single header/CRC scan pass) pins
        // the strict verdict; execution only decodes `Data` entries.
        let built = plan::build(bytes, &self.limits, plan::BuildMode::FailFast)
            .map_err(DecodeError::from)?;
        plan::execute_strict(self, &built).map(|report| report.trits)
    }

    /// Decodes one parsed segment — the shared per-task body of
    /// [`decode_frame`](Engine::decode_frame) and the salvage path.
    /// Armed [`faultpoint`]s fire here (panic/delay before the work,
    /// corrupt after), which is what makes worker panics and torn writes
    /// deterministically injectable.
    pub(crate) fn decode_one_segment(
        &self,
        seg: &frame::ParsedSegment<'_>,
        i: usize,
        table: &CodeTable,
    ) -> Result<TritVec, DecodeError> {
        let fault = faultpoint::fire(&self.failpoints, faultpoint::SITE_SEG, i);
        match fault {
            Some(faultpoint::Action::Panic) => panic!("failpoint seg:{i}:panic"),
            Some(faultpoint::Action::Delay { millis }) => {
                std::thread::sleep(std::time::Duration::from_millis(*millis));
            }
            _ => {}
        }
        let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
        let payload = frame::unpack_payload(seg, i)?;
        if payload.len() != seg.payload_trits {
            return Err(DecodeError::Frame(frame::FrameError::Malformed {
                segment: i,
                what: "payload length disagrees with the segment header",
            }));
        }
        let dec = StreamDecoder::new(
            payload.as_slice().iter(),
            seg.k,
            table.clone(),
            seg.source_trits,
        )
        .map_err(|e| DecodeError::InvalidBlockSize { k: e.k })?;
        let mut out = TritVec::with_capacity(seg.source_trits);
        dec.run_into(&mut out)?;
        if matches!(fault, Some(faultpoint::Action::Corrupt)) {
            // Torn write: flip the first decoded trit after the CRC and
            // the 9C decode both passed.
            if let Some(t) = out.get(0) {
                let flipped = match t {
                    Trit::Zero => Trit::One,
                    Trit::One | Trit::X => Trit::Zero,
                };
                out.set(0, flipped);
            }
        }
        if let Some(t0) = t0 {
            crate::metrics::publish_segment_decode(t0.elapsed().as_nanos() as u64);
        }
        Ok(out)
    }
}

/// Encodes one `[start, end)` segment of `stream` with `enc`, recording
/// the segment-latency histogram sample (batched, once per segment).
fn encode_segment(
    enc: &Encoder,
    stream: &TritVec,
    start: usize,
    end: usize,
) -> (TritVec, EncodeTotals) {
    let t0 = ninec_obs::runtime_enabled().then(std::time::Instant::now);
    let mut out = TritVec::with_capacity((end - start) / 4 + 8);
    let mut se = enc.stream_encoder(&mut out);
    se.feed(stream.slice_view(start, end));
    let totals = se.finish();
    if let Some(t0) = t0 {
        crate::metrics::publish_segment_encode(t0.elapsed().as_nanos() as u64);
    }
    (out, totals)
}

/// Accumulates `part` into `acc` (case counts, blocks, bits, leftover X).
fn merge_stats(acc: &mut EncodeStats, part: &EncodeStats) {
    for (a, p) in acc.case_counts.iter_mut().zip(part.case_counts.iter()) {
        *a += p;
    }
    acc.blocks += part.blocks;
    acc.encoded_bits += part.encoded_bits;
    acc.leftover_x += part.leftover_x;
}

impl From<frame::FrameError> for DecodeError {
    fn from(e: frame::FrameError) -> Self {
        match e {
            frame::FrameError::Truncated { offset } => DecodeError::TruncatedStream { offset },
            frame::FrameError::LimitExceeded {
                what,
                requested,
                limit,
            } => DecodeError::LimitExceeded {
                what,
                requested,
                limit,
            },
            other => DecodeError::Frame(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::Encoder;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    fn sample(repeat: usize) -> TritVec {
        tv(&"0X0X01X001X0101X111111110000X1111X0110XX".repeat(repeat))
    }

    #[test]
    fn parallel_encode_is_bit_identical_to_serial() {
        let stream = sample(40);
        for k in [4usize, 8, 16, 32] {
            let serial = Encoder::new(k).expect("valid K").encode_stream(&stream);
            for threads in [1usize, 2, 8] {
                for seg in [k, 3 * k, 4096] {
                    let engine = Engine::builder().threads(threads).segment_bits(seg).build();
                    let par = engine.encode(k, &stream).expect("valid K");
                    assert_eq!(par, serial, "K={k} threads={threads} seg={seg}");
                }
            }
        }
    }

    #[test]
    fn frame_bytes_are_thread_count_independent() {
        let stream = sample(25);
        let frames: Vec<Vec<u8>> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                Engine::builder()
                    .threads(t)
                    .segment_bits(100)
                    .build()
                    .encode_frame(8, &stream)
                    .expect("valid K")
            })
            .collect();
        assert_eq!(frames[0], frames[1]);
        assert_eq!(frames[0], frames[2]);
    }

    #[test]
    fn frame_roundtrip_matches_serial_decode() {
        let stream = sample(20);
        let engine = Engine::builder().threads(4).segment_bits(64).build();
        for k in [4usize, 8, 16] {
            let frame = engine.encode_frame(k, &stream).expect("valid K");
            let back = engine.decode_frame(&frame).expect("own frame decodes");
            assert_eq!(back.len(), stream.len());
            // Every care bit survives; X is preserved or bound uniform.
            for i in 0..stream.len() {
                let s = stream.get(i).expect("in range");
                if s.is_care() {
                    assert_eq!(Some(s), back.get(i), "K={k} bit {i}");
                }
            }
        }
    }

    #[test]
    fn empty_stream_is_an_empty_frame() {
        let engine = Engine::builder().threads(4).build();
        let empty = TritVec::new();
        let enc = engine.encode(8, &empty).expect("valid K");
        assert_eq!(enc.compressed_len(), 0);
        let frame = engine.encode_frame(8, &empty).expect("valid K");
        assert_eq!(frame.len(), frame::HEADER_BYTES);
        assert!(engine.decode_frame(&frame).expect("decodes").is_empty());
    }

    #[test]
    fn invalid_k_is_rejected_not_asserted() {
        let engine = Engine::default();
        let stream = sample(1);
        assert_eq!(engine.encode(7, &stream), Err(InvalidBlockSize { k: 7 }));
        assert_eq!(
            engine.encode_frame(2, &stream).expect_err("odd K rejected"),
            EncodeFrameError::InvalidBlockSize(InvalidBlockSize { k: 2 })
        );
        assert_eq!(
            engine
                .encode_frame_best_k(&[], &stream)
                .expect_err("empty candidates rejected"),
            EncodeFrameError::InvalidBlockSize(InvalidBlockSize { k: 0 })
        );
    }

    #[test]
    fn best_k_never_beats_worse_than_its_candidates() {
        let stream = sample(30);
        let engine = Engine::builder().threads(2).segment_bits(160).build();
        let best = engine
            .encode_frame_best_k(&[4, 8, 16], &stream)
            .expect("valid candidates");
        let parsed = frame::parse(&best).expect("own frame parses");
        let payload: usize = parsed.segments.iter().map(|s| s.payload_trits).sum();
        for k in [4usize, 8, 16] {
            let single = engine.encode_frame(k, &stream).expect("valid K");
            let single_parsed = frame::parse(&single).expect("own frame parses");
            let single_payload: usize =
                single_parsed.segments.iter().map(|s| s.payload_trits).sum();
            assert!(
                payload <= single_payload,
                "best-K payload {payload} > K={k} payload {single_payload}"
            );
        }
        // Best-K frames still roundtrip.
        let back = engine.decode_frame(&best).expect("best-K frame decodes");
        assert_eq!(back.len(), stream.len());
    }

    #[test]
    fn corrupt_frames_yield_typed_errors() {
        let stream = sample(10);
        let engine = Engine::builder().threads(2).segment_bits(80).build();
        let frame_bytes = engine.encode_frame(8, &stream).expect("valid K");

        let mut bad_magic = frame_bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            engine.decode_frame(&bad_magic),
            Err(DecodeError::Frame(frame::FrameError::BadMagic))
        ));

        let mut bad_crc = frame_bytes.clone();
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 0x01;
        assert!(matches!(
            engine.decode_frame(&bad_crc),
            Err(DecodeError::Frame(frame::FrameError::BadCrc { .. }))
        ));

        let truncated = &frame_bytes[..frame_bytes.len() - 3];
        assert!(matches!(
            engine.decode_frame(truncated),
            Err(DecodeError::TruncatedStream { .. })
        ));
    }

    #[test]
    fn shared_engine_handle_is_send_sync_and_decodes() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<SharedEngine>();
        let stream = sample(5);
        let shared = Engine::builder().threads(2).segment_bits(80).build_shared();
        let frame = shared.encode_frame(8, &stream).expect("valid K");
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let eng = std::sync::Arc::clone(&shared);
                let frame = frame.clone();
                std::thread::spawn(move || eng.decode_frame(&frame).expect("decodes").len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().expect("no panic"), stream.len());
        }
    }

    #[test]
    fn default_threads_honors_env_clamping() {
        // Not a concurrency test — just the parse/clamp logic. The env var
        // is only read here, so mutation is safe within this test binary.
        std::env::set_var(THREADS_ENV, "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var(THREADS_ENV, "0");
        assert!(default_threads() >= 1);
        std::env::set_var(THREADS_ENV, "garbage");
        assert!(default_threads() >= 1);
        std::env::set_var(THREADS_ENV, "99999");
        assert_eq!(default_threads(), pool::MAX_THREADS);
        std::env::remove_var(THREADS_ENV);
        assert!(default_threads() >= 1);
    }
}

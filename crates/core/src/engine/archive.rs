//! `9CA` — a durable, seekable, deduplicated archive of `9CSF` frames.
//!
//! A `9CA` archive is **two files**:
//!
//! - `<name>.9ca` — an append-only *store* of segment blobs. A blob is
//!   the exact wire bytes of one `9CSF` segment (16-byte header +
//!   payload, data or parity alike), so every blob carries its own
//!   CRC-32 and can be verified — and, via its frame's parity group,
//!   repaired — without any other context. The store opens with a
//!   12-byte header (`9CA1` magic, version, CRC).
//! - `<name>.9ca.idx` — the current *epoch index*: for every archived
//!   frame, its verbatim `9CSF` file header plus one 24-byte record per
//!   segment (store offset, blob length, source trits, content digest),
//!   all covered by a trailing CRC-32.
//!
//! **Crash safety** is the index's job. An append first writes new
//! blobs past the committed store length and `fsync`s them, then writes
//! the next epoch's index to a temp file, `fsync`s it, and atomically
//! renames it over `<name>.9ca.idx`. A process killed at *any* byte
//! boundary leaves either the old index (whose records never reference
//! the torn tail — the next append truncates it away) or the new one
//! (whose data was durable before the rename). The
//! [`faultpoint`](super::faultpoint) site `arc` with action `kill`
//! makes that claim testable at every single boundary.
//!
//! **Dedup** is content-addressed: blobs are keyed by an FNV-1a 64
//! digest and a hit is confirmed by byte comparison against the stored
//! blob (never by digest alone), so identical segments across frames —
//! test sets share massive all-X / all-0 runs — are stored once and
//! refcounted by the index records that point at them.
//!
//! **Random access**: each frame record carries per-segment source-trit
//! extents, so [`Archive::decode_range`] reads only the overlapping
//! blobs, reassembles them into a minimal valid v2 frame and decodes it
//! through the engine's ordinary [`FramePlan`](super::FramePlan) path —
//! O(segments-touched), not O(archive).
//!
//! Bit-rot detection and in-place repair live in the
//! [`scrub`](super::scrub) sibling module.

use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::faultpoint;
use super::frame::{self, FrameError};
use super::Engine;
use crate::decode::DecodeError;
use ninec_testdata::trit::TritVec;

/// Magic bytes opening the `9CA` data store.
pub const DATA_MAGIC: [u8; 4] = *b"9CA1";
/// Magic bytes opening the `9CA` epoch index.
pub const INDEX_MAGIC: [u8; 4] = *b"9CAI";
/// Current archive format version (store and index).
pub const ARCHIVE_VERSION: u8 = 1;
/// Data-store header size: magic, version, 3 reserved bytes, CRC-32
/// over the first 8 bytes.
pub const DATA_HEADER_BYTES: usize = 12;
/// Suffix appended to the store path to name the epoch index.
pub const INDEX_SUFFIX: &str = ".idx";
/// One per-segment index record: store offset (u64), blob length (u32),
/// source trits (u32, zero for parity), content digest (u64).
const RECORD_BYTES: usize = 24;
/// Index bytes before the per-frame records: magic, version, reserved,
/// epoch, committed length, dedup hits, frame count.
const INDEX_FIXED_BYTES: usize = 4 + 1 + 3 + 8 + 8 + 8 + 4;
/// Smallest possible per-frame index entry (header length byte, v2
/// header, two counts) — the pre-allocation bomb bound.
const MIN_FRAME_ENTRY_BYTES: usize = 1 + frame::HEADER_BYTES + 4 + 4;

/// `true` if `bytes` starts with the `9CA1` store magic (cheap format
/// sniff, the archive sibling of [`frame::is_frame`]).
#[must_use]
pub fn is_archive(bytes: &[u8]) -> bool {
    bytes.len() >= DATA_MAGIC.len() && bytes[..DATA_MAGIC.len()] == DATA_MAGIC
}

/// FNV-1a 64 content digest keying the dedup table. Collisions are
/// harmless — every digest hit is confirmed by byte comparison before a
/// blob is shared.
#[must_use]
pub fn blob_digest(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Typed error for every archive operation. Never panics; hostile
/// stores and indexes are rejected with the same bomb-checked
/// discipline as frame parsing.
#[derive(Debug)]
#[non_exhaustive]
pub enum ArchiveError {
    /// An I/O operation on the store or index failed.
    Io {
        /// What the archive was doing.
        what: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// A frame being appended (or a header held by the index) is
    /// malformed, corrupt, or over a [`super::DecodeLimits`] ceiling.
    Frame(FrameError),
    /// The store file does not start with the `9CA1` magic + valid
    /// header CRC — it is not an archive.
    NotAnArchive {
        /// The leading store bytes actually found (up to 4).
        found: Vec<u8>,
    },
    /// The epoch index is structurally invalid (bad magic/CRC, records
    /// out of bounds, counts disagreeing with the stored frame header).
    BadIndex {
        /// What was wrong.
        what: &'static str,
    },
    /// An append was killed by an armed `arc` fault point after exactly
    /// `written` bytes of new store data — the previous epoch remains
    /// committed and fully readable.
    TornAppend {
        /// Bytes of this append that reached the store before the kill.
        written: u64,
    },
    /// The requested frame index is beyond the archive.
    FrameOutOfRange {
        /// Requested frame.
        frame: usize,
        /// Frames in the current epoch.
        frames: usize,
    },
    /// A requested trit range does not fit inside the frame.
    RangeOutOfBounds {
        /// Requested start trit.
        start: usize,
        /// Requested length in trits.
        len: usize,
        /// The frame's source length.
        source_len: usize,
    },
    /// A stored blob failed its CRC re-verification — bit rot. Run the
    /// scrubber to repair it from parity.
    Rotted {
        /// Frame the rotted reference belongs to.
        frame: usize,
        /// Segment entry index within the frame (data, or `n + j` for
        /// parity shard `j`).
        segment: usize,
    },
    /// Decoding a reassembled range failed.
    Decode(DecodeError),
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Io { what, source } => write!(f, "archive i/o ({what}): {source}"),
            ArchiveError::Frame(e) => write!(f, "archive frame: {e}"),
            ArchiveError::NotAnArchive { found } => {
                write!(f, "not a 9CA archive (leading bytes {found:02x?})")
            }
            ArchiveError::BadIndex { what } => write!(f, "bad archive index: {what}"),
            ArchiveError::TornAppend { written } => {
                write!(
                    f,
                    "append killed after {written} bytes (previous epoch intact)"
                )
            }
            ArchiveError::FrameOutOfRange { frame, frames } => {
                write!(f, "frame {frame} out of range (archive holds {frames})")
            }
            ArchiveError::RangeOutOfBounds {
                start,
                len,
                source_len,
            } => write!(
                f,
                "trit range {start}+{len} outside the frame's {source_len} source trits"
            ),
            ArchiveError::Rotted { frame, segment } => write!(
                f,
                "stored segment {segment} of frame {frame} fails its CRC (bit rot; run scrub)"
            ),
            ArchiveError::Decode(e) => write!(f, "archive range decode: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArchiveError::Io { source, .. } => Some(source),
            ArchiveError::Frame(e) => Some(e),
            ArchiveError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for ArchiveError {
    fn from(e: FrameError) -> Self {
        ArchiveError::Frame(e)
    }
}

/// Curried I/O error constructor: `.map_err(io("opening store"))`.
fn io(what: &'static str) -> impl FnOnce(std::io::Error) -> ArchiveError {
    move |source| ArchiveError::Io { what, source }
}

/// One stored segment reference: where the blob lives, how big it is,
/// how many source trits it decodes to (zero for parity shards), and
/// its content digest (the dedup key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlobRecord {
    pub(crate) offset: u64,
    pub(crate) len: u32,
    pub(crate) source_trits: u32,
    pub(crate) digest: u64,
}

/// One archived frame in the epoch index: the verbatim `9CSF` file
/// header plus its data and parity blob records in wire order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FrameRecord {
    /// The original frame's file header bytes (31 or 33), reused
    /// verbatim on extract so extraction is byte-exact.
    pub(crate) header: Vec<u8>,
    /// Data segment records, in stream order.
    pub(crate) segs: Vec<BlobRecord>,
    /// Parity segment records, in `(group, pindex)` order.
    pub(crate) parity: Vec<BlobRecord>,
    /// Source-trit prefix sums: `trit_starts[i]` is the first trit of
    /// segment `i`; the last entry is the frame's source length.
    pub(crate) trit_starts: Vec<u64>,
}

impl FrameRecord {
    /// The frame's total source trits.
    pub(crate) fn source_len(&self) -> u64 {
        self.trit_starts.last().copied().unwrap_or(0)
    }
}

/// A decoded epoch index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Index {
    pub(crate) epoch: u64,
    /// Store bytes this epoch commits to; anything past it is torn
    /// tail from a crashed append and is ignored (and reclaimed by the
    /// next successful append).
    pub(crate) committed_len: u64,
    /// Cumulative dedup hits over the archive's lifetime.
    pub(crate) dedup_hits: u64,
    pub(crate) frames: Vec<FrameRecord>,
}

impl Index {
    fn empty() -> Self {
        Index {
            epoch: 0,
            committed_len: DATA_HEADER_BYTES as u64,
            dedup_hits: 0,
            frames: Vec::new(),
        }
    }

    /// Serializes the index, appending the trailing CRC-32.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&INDEX_MAGIC);
        out.push(ARCHIVE_VERSION);
        out.extend_from_slice(&[0u8; 3]);
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.committed_len.to_le_bytes());
        out.extend_from_slice(&self.dedup_hits.to_le_bytes());
        out.extend_from_slice(&(self.frames.len() as u32).to_le_bytes());
        for fr in &self.frames {
            out.push(fr.header.len() as u8);
            out.extend_from_slice(&fr.header);
            out.extend_from_slice(&(fr.segs.len() as u32).to_le_bytes());
            out.extend_from_slice(&(fr.parity.len() as u32).to_le_bytes());
            for b in fr.segs.iter().chain(fr.parity.iter()) {
                out.extend_from_slice(&b.offset.to_le_bytes());
                out.extend_from_slice(&b.len.to_le_bytes());
                out.extend_from_slice(&b.source_trits.to_le_bytes());
                out.extend_from_slice(&b.digest.to_le_bytes());
            }
        }
        let crc = frame::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and fully cross-checks an index. Every count is bounded
    /// by the bytes actually present *before* any allocation, the
    /// trailing CRC must match, and each frame's record counts and trit
    /// totals must agree with its stored (CRC-verified) `9CSF` header —
    /// a forged-but-CRC'd index still cannot reference out-of-bounds
    /// store ranges or claim bomb geometries.
    pub(crate) fn decode(
        bytes: &[u8],
        limits: &frame::DecodeLimits,
    ) -> Result<Index, ArchiveError> {
        if bytes.len() > limits.max_index_bytes {
            return Err(FrameError::LimitExceeded {
                what: "archive index bytes",
                requested: bytes.len(),
                limit: limits.max_index_bytes,
            }
            .into());
        }
        if bytes.len() < INDEX_FIXED_BYTES + 4 {
            return Err(ArchiveError::BadIndex {
                what: "index shorter than its fixed header",
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if frame::crc32(body) != stored {
            return Err(ArchiveError::BadIndex {
                what: "index CRC mismatch",
            });
        }
        if body[..4] != INDEX_MAGIC {
            return Err(ArchiveError::BadIndex {
                what: "missing 9CAI magic",
            });
        }
        if body[4] != ARCHIVE_VERSION {
            return Err(ArchiveError::BadIndex {
                what: "unsupported index version",
            });
        }
        let mut cur = Cursor { body, at: 8 };
        let epoch = cur.u64("epoch")?;
        let committed_len = cur.u64("committed length")?;
        let dedup_hits = cur.u64("dedup hits")?;
        let frame_count = cur.u32("frame count")? as usize;
        if frame_count > cur.remaining() / MIN_FRAME_ENTRY_BYTES {
            return Err(ArchiveError::BadIndex {
                what: "frame count exceeds the bytes present",
            });
        }
        if committed_len < DATA_HEADER_BYTES as u64 {
            return Err(ArchiveError::BadIndex {
                what: "committed length smaller than the store header",
            });
        }
        let mut frames = Vec::with_capacity(frame_count);
        for _ in 0..frame_count {
            let header_len = cur.u8("frame header length")? as usize;
            if header_len != frame::HEADER_BYTES && header_len != frame::HEADER_BYTES_V3 {
                return Err(ArchiveError::BadIndex {
                    what: "frame header length is neither v2 nor v3",
                });
            }
            let header = cur.take(header_len, "frame header bytes")?.to_vec();
            let head = frame::parse_file_header(&header, limits)?;
            let seg_count = cur.u32("segment count")? as usize;
            let parity_count = cur.u32("parity count")? as usize;
            if seg_count != head.claimed_segments || parity_count != head.parity_segments() {
                return Err(ArchiveError::BadIndex {
                    what: "record counts disagree with the frame header",
                });
            }
            let total = seg_count
                .checked_add(parity_count)
                .filter(|&n| n <= cur.remaining() / RECORD_BYTES)
                .ok_or(ArchiveError::BadIndex {
                    what: "record count exceeds the bytes present",
                })?;
            let mut records = Vec::with_capacity(total);
            for _ in 0..total {
                let offset = cur.u64("record offset")?;
                let len = cur.u32("record length")?;
                let source_trits = cur.u32("record source trits")?;
                let digest = cur.u64("record digest")?;
                let end = offset.checked_add(u64::from(len));
                if offset < DATA_HEADER_BYTES as u64 || end.is_none_or(|e| e > committed_len) {
                    return Err(ArchiveError::BadIndex {
                        what: "record outside the committed store",
                    });
                }
                if (len as usize) < frame::SEGMENT_HEADER_BYTES {
                    return Err(ArchiveError::BadIndex {
                        what: "record smaller than a segment header",
                    });
                }
                records.push(BlobRecord {
                    offset,
                    len,
                    source_trits,
                    digest,
                });
            }
            let parity = records.split_off(seg_count);
            let segs = records;
            let mut trit_starts = Vec::with_capacity(seg_count + 1);
            let mut acc = 0u64;
            trit_starts.push(0);
            for b in &segs {
                acc += u64::from(b.source_trits);
                trit_starts.push(acc);
            }
            if acc != head.source_len as u64 || parity.iter().any(|b| b.source_trits != 0) {
                return Err(ArchiveError::BadIndex {
                    what: "record trit totals disagree with the frame header",
                });
            }
            frames.push(FrameRecord {
                header,
                segs,
                parity,
                trit_starts,
            });
        }
        if cur.remaining() != 0 {
            return Err(ArchiveError::BadIndex {
                what: "trailing bytes after the last record",
            });
        }
        Ok(Index {
            epoch,
            committed_len,
            dedup_hits,
            frames,
        })
    }
}

/// Bounds-checked little-endian reader over the index body.
struct Cursor<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.body.len().saturating_sub(self.at)
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], ArchiveError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.body.len())
            .ok_or(ArchiveError::BadIndex { what })?;
        let s = &self.body[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, ArchiveError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, ArchiveError> {
        let s = self.take(4, what)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, ArchiveError> {
        let s = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }
}

/// Receipt for one successful [`Archive::append_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Index of the appended frame.
    pub frame: usize,
    /// Segment blobs the frame carries (data + parity).
    pub segments: usize,
    /// Blobs satisfied by dedup instead of new store bytes.
    pub dedup_hits: u64,
    /// New store bytes this append wrote.
    pub new_bytes: u64,
}

/// Shape summary for `ninec info` and the bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveStats {
    /// Frames in the current epoch.
    pub frames: usize,
    /// Data segment references across all frames.
    pub data_segments: usize,
    /// Parity segment references across all frames.
    pub parity_segments: usize,
    /// Unique blobs in the store.
    pub stored_blobs: usize,
    /// Store payload bytes the epoch commits (excluding the store header).
    pub stored_bytes: u64,
    /// Bytes the referenced blobs would occupy without dedup.
    pub logical_bytes: u64,
    /// Cumulative dedup hits.
    pub dedup_hits: u64,
    /// Current epoch number.
    pub epoch: u64,
}

impl ArchiveStats {
    /// Logical over stored bytes — 1.0 means no sharing.
    #[must_use]
    pub fn dedup_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            1.0
        } else {
            self.logical_bytes as f64 / self.stored_bytes as f64
        }
    }
}

/// Per-frame shape for `ninec info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameInfo {
    /// Data segments.
    pub segments: usize,
    /// Parity segments.
    pub parity_segments: usize,
    /// Source trits.
    pub source_len: u64,
    /// Frame version (2 or 3).
    pub version: u8,
    /// Parity geometry `(g, r)`; `(0, 0)` for v2.
    pub parity: (u8, u8),
}

/// An open `9CA` archive (see the module docs for the on-disk layout
/// and crash-safety contract).
#[derive(Debug)]
pub struct Archive {
    pub(crate) data_path: PathBuf,
    pub(crate) index_path: PathBuf,
    pub(crate) engine: Engine,
    pub(crate) index: Index,
    /// Dedup candidates: digest → stored `(offset, len)` blobs.
    dedup: HashMap<u64, Vec<(u64, u32)>>,
}

/// `<store path> + ".idx"`.
fn index_path_for(data_path: &Path) -> PathBuf {
    let mut s = data_path.as_os_str().to_os_string();
    s.push(INDEX_SUFFIX);
    PathBuf::from(s)
}

impl Archive {
    /// Creates a fresh archive at `path` (truncating any existing one)
    /// and commits epoch 0.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Io`] on any filesystem failure.
    pub fn create(path: impl AsRef<Path>, engine: &Engine) -> Result<Self, ArchiveError> {
        let data_path = path.as_ref().to_path_buf();
        let index_path = index_path_for(&data_path);
        let mut header = Vec::with_capacity(DATA_HEADER_BYTES);
        header.extend_from_slice(&DATA_MAGIC);
        header.push(ARCHIVE_VERSION);
        header.extend_from_slice(&[0u8; 3]);
        header.extend_from_slice(&frame::crc32(&header[..8]).to_le_bytes());
        let mut f = File::create(&data_path).map_err(io("creating store"))?;
        f.write_all(&header).map_err(io("writing store header"))?;
        f.sync_all().map_err(io("syncing store header"))?;
        let archive = Archive {
            data_path,
            index_path,
            engine: engine.clone(),
            index: Index::empty(),
            dedup: HashMap::new(),
        };
        archive.commit_index(&archive.index)?;
        Ok(archive)
    }

    /// Opens an existing archive at `path`, validating the store header
    /// and the epoch index (CRC, bounds, cross-checks) under the
    /// engine's [`super::DecodeLimits`].
    ///
    /// # Errors
    ///
    /// [`ArchiveError::NotAnArchive`] when the store lacks the `9CA1`
    /// header; [`ArchiveError::BadIndex`] / [`ArchiveError::Frame`] for
    /// a corrupt or bombed index; [`ArchiveError::Io`] otherwise.
    pub fn open(path: impl AsRef<Path>, engine: &Engine) -> Result<Self, ArchiveError> {
        let data_path = path.as_ref().to_path_buf();
        let index_path = index_path_for(&data_path);
        let mut f = File::open(&data_path).map_err(io("opening store"))?;
        let mut header = [0u8; DATA_HEADER_BYTES];
        let mut got = 0usize;
        while got < header.len() {
            match f
                .read(&mut header[got..])
                .map_err(io("reading store header"))?
            {
                0 => break,
                n => got += n,
            }
        }
        let stored_crc = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if got < DATA_HEADER_BYTES
            || header[..4] != DATA_MAGIC
            || header[4] != ARCHIVE_VERSION
            || frame::crc32(&header[..8]) != stored_crc
        {
            return Err(ArchiveError::NotAnArchive {
                found: header[..got.min(4)].to_vec(),
            });
        }
        let meta = std::fs::metadata(&index_path).map_err(io("reading index metadata"))?;
        let limits = engine.limits;
        if meta.len() > limits.max_index_bytes as u64 {
            return Err(FrameError::LimitExceeded {
                what: "archive index bytes",
                requested: usize::try_from(meta.len()).unwrap_or(usize::MAX),
                limit: limits.max_index_bytes,
            }
            .into());
        }
        let bytes = std::fs::read(&index_path).map_err(io("reading index"))?;
        let index = Index::decode(&bytes, &limits)?;
        let store_len = f.metadata().map_err(io("reading store metadata"))?.len();
        if store_len < index.committed_len {
            return Err(ArchiveError::BadIndex {
                what: "store shorter than its committed epoch",
            });
        }
        let mut dedup: HashMap<u64, Vec<(u64, u32)>> = HashMap::new();
        for fr in &index.frames {
            for b in fr.segs.iter().chain(fr.parity.iter()) {
                let cands = dedup.entry(b.digest).or_default();
                if !cands.contains(&(b.offset, b.len)) {
                    cands.push((b.offset, b.len));
                }
            }
        }
        Ok(Archive {
            data_path,
            index_path,
            engine: engine.clone(),
            index,
            dedup,
        })
    }

    /// [`open`](Archive::open) if the store exists, else
    /// [`create`](Archive::create).
    ///
    /// # Errors
    ///
    /// As [`open`](Archive::open) / [`create`](Archive::create).
    pub fn open_or_create(path: impl AsRef<Path>, engine: &Engine) -> Result<Self, ArchiveError> {
        if path.as_ref().exists() {
            Archive::open(path, engine)
        } else {
            Archive::create(path, engine)
        }
    }

    /// The store path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.data_path
    }

    /// The epoch-index path (`<store>.idx`).
    #[must_use]
    pub fn index_path(&self) -> &Path {
        &self.index_path
    }

    /// Frames in the current epoch.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.index.frames.len()
    }

    /// Current epoch number (bumped by every committed append/scrub).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.index.epoch
    }

    /// Shape of frame `i`, if it exists.
    #[must_use]
    pub fn frame_info(&self, i: usize) -> Option<FrameInfo> {
        let fr = self.index.frames.get(i)?;
        let head = frame::parse_file_header(&fr.header, &frame::DecodeLimits::unlimited()).ok()?;
        Some(FrameInfo {
            segments: fr.segs.len(),
            parity_segments: fr.parity.len(),
            source_len: fr.source_len(),
            version: head.version,
            parity: (head.parity_g, head.parity_r),
        })
    }

    /// Archive-wide shape and dedup stats.
    #[must_use]
    pub fn stats(&self) -> ArchiveStats {
        let mut unique: HashMap<u64, u32> = HashMap::new();
        let mut logical = 0u64;
        let mut data_segments = 0usize;
        let mut parity_segments = 0usize;
        for fr in &self.index.frames {
            data_segments += fr.segs.len();
            parity_segments += fr.parity.len();
            for b in fr.segs.iter().chain(fr.parity.iter()) {
                logical += u64::from(b.len);
                unique.insert(b.offset, b.len);
            }
        }
        ArchiveStats {
            frames: self.index.frames.len(),
            data_segments,
            parity_segments,
            stored_blobs: unique.len(),
            stored_bytes: self.index.committed_len - DATA_HEADER_BYTES as u64,
            logical_bytes: logical,
            dedup_hits: self.index.dedup_hits,
            epoch: self.index.epoch,
        }
    }

    /// The armed torn-append kill boundary, if any (`arc:<bytes>:kill`).
    fn kill_boundary(&self) -> Option<u64> {
        self.engine.failpoints.iter().find_map(|p| {
            (p.site == faultpoint::SITE_ARC && p.action == faultpoint::Action::Kill)
                .then(|| p.index.unwrap_or(0) as u64)
        })
    }

    /// Appends one `9CSF` frame (v2 or v3, fully CRC-verified first),
    /// deduplicating its segment blobs against the store, and commits
    /// the next index epoch. On any failure — including a killed append
    /// — the previous epoch stays committed and fully readable.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Frame`] when `frame_bytes` is not an intact
    /// frame within limits; [`ArchiveError::TornAppend`] when an armed
    /// `arc` fault point killed the write; [`ArchiveError::Io`]
    /// otherwise.
    pub fn append_frame(&mut self, frame_bytes: &[u8]) -> Result<AppendReceipt, ArchiveError> {
        let _span = ninec_obs::span("archive_append");
        let limits = self.engine.limits;
        let head = frame::parse_file_header(frame_bytes, &limits)?;
        let n = head.claimed_segments;
        let p = head.parity_segments();
        let mut ranges: Vec<(std::ops::Range<usize>, u32)> = Vec::with_capacity(n + p);
        let mut at = head.header_bytes;
        for i in 0..n {
            let (seg, next) = frame::segment_at(frame_bytes, at, i, &limits)?;
            let trits =
                u32::try_from(seg.source_trits).map_err(|_| FrameError::SegmentTooLarge {
                    what: "segment source trits",
                    len: seg.source_trits,
                })?;
            ranges.push((at..next, trits));
            at = next;
        }
        for j in 0..p {
            let (_par, next) = frame::parity_at(frame_bytes, at, n + j, &limits)?;
            ranges.push((at..next, 0));
            at = next;
        }
        if at != frame_bytes.len() {
            return Err(FrameError::Malformed {
                segment: n + p,
                what: "trailing bytes after the last segment",
            }
            .into());
        }

        // Plan dedup before touching the store: every blob resolves to
        // an existing stored range (confirmed by byte comparison, never
        // digest alone) or a new offset past the committed length.
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.data_path)
            .map_err(io("opening store for append"))?;
        let mut records: Vec<BlobRecord> = Vec::with_capacity(ranges.len());
        // Blobs new to this append, by byte range in `frame_bytes`.
        let mut fresh: Vec<std::ops::Range<usize>> = Vec::new();
        let mut pending: HashMap<u64, Vec<(u64, std::ops::Range<usize>)>> = HashMap::new();
        let mut next_offset = self.index.committed_len;
        let mut dedup_hits = 0u64;
        for (range, source_trits) in &ranges {
            let blob = &frame_bytes[range.clone()];
            let digest = blob_digest(blob);
            let len = blob.len() as u32;
            let mut found: Option<u64> = None;
            for &(offset, stored_len) in self.dedup.get(&digest).into_iter().flatten() {
                if stored_len == len && read_exact_at(&mut file, offset, len)? == blob {
                    found = Some(offset);
                    break;
                }
            }
            if found.is_none() {
                // Also dedup against blobs earlier in this same append.
                for (offset, prior) in pending.get(&digest).into_iter().flatten() {
                    if frame_bytes[prior.clone()] == *blob {
                        found = Some(*offset);
                        break;
                    }
                }
            }
            let offset = match found {
                Some(offset) => {
                    dedup_hits += 1;
                    offset
                }
                None => {
                    let offset = next_offset;
                    next_offset += u64::from(len);
                    fresh.push(range.clone());
                    pending
                        .entry(digest)
                        .or_default()
                        .push((offset, range.clone()));
                    offset
                }
            };
            records.push(BlobRecord {
                offset,
                len,
                source_trits: *source_trits,
                digest,
            });
        }

        // Write the fresh blobs past the committed epoch. Any torn tail
        // a previous crash left there is truncated away first — nothing
        // committed ever references it.
        file.set_len(self.index.committed_len)
            .map_err(io("truncating torn tail"))?;
        file.seek(SeekFrom::End(0))
            .map_err(io("seeking store end"))?;
        let boundary = self.kill_boundary();
        let mut written = 0u64;
        for range in &fresh {
            let blob = &frame_bytes[range.clone()];
            if let Some(b) = boundary {
                let remaining = usize::try_from(b - written).unwrap_or(usize::MAX);
                if blob.len() > remaining {
                    file.write_all(&blob[..remaining])
                        .map_err(io("writing store blob"))?;
                    let _ = file.sync_all();
                    return Err(ArchiveError::TornAppend {
                        written: written + remaining as u64,
                    });
                }
            }
            file.write_all(blob).map_err(io("writing store blob"))?;
            written += blob.len() as u64;
        }
        file.sync_all().map_err(io("syncing store"))?;
        if boundary.is_some() {
            // The armed kill boundary lies at or past the end of this
            // append's writes: the data became durable but the process
            // died before the index rename.
            return Err(ArchiveError::TornAppend { written });
        }

        // Commit the next epoch.
        let parity = records.split_off(n);
        let segs = records;
        let mut trit_starts = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        trit_starts.push(0);
        for b in &segs {
            acc += u64::from(b.source_trits);
            trit_starts.push(acc);
        }
        let mut next = self.index.clone();
        next.epoch += 1;
        next.committed_len = next_offset;
        next.dedup_hits += dedup_hits;
        next.frames.push(FrameRecord {
            header: frame_bytes[..head.header_bytes].to_vec(),
            segs: segs.clone(),
            parity: parity.clone(),
            trit_starts,
        });
        self.commit_index(&next)?;
        self.index = next;
        for b in segs.iter().chain(parity.iter()) {
            let cands = self.dedup.entry(b.digest).or_default();
            if !cands.contains(&(b.offset, b.len)) {
                cands.push((b.offset, b.len));
            }
        }
        crate::metrics::publish_archive_dedup_hits(dedup_hits);
        Ok(AppendReceipt {
            frame: self.index.frames.len() - 1,
            segments: n + p,
            dedup_hits,
            new_bytes: written,
        })
    }

    /// Writes `index` to `<index path>.tmp`, `fsync`s it, and
    /// atomically renames it over the live index — the epoch commit
    /// point shared by append and scrub.
    pub(crate) fn commit_index(&self, index: &Index) -> Result<(), ArchiveError> {
        let bytes = index.encode();
        let mut tmp = self.index_path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let mut f = File::create(&tmp).map_err(io("creating index temp"))?;
        f.write_all(&bytes).map_err(io("writing index temp"))?;
        f.sync_all().map_err(io("syncing index temp"))?;
        std::fs::rename(&tmp, &self.index_path).map_err(io("renaming index epoch"))?;
        if let Some(dir) = self.index_path.parent() {
            // Make the rename itself durable; best effort on filesystems
            // that refuse directory handles.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Reassembles frame `i` byte-exactly (verbatim header + blobs in
    /// wire order), CRC-verifying every blob on the way out.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::FrameOutOfRange`]; [`ArchiveError::Rotted`] when
    /// a blob fails its CRC (run [`Archive::scrub`](super::scrub));
    /// [`ArchiveError::Io`] on read failure.
    pub fn extract_frame(&self, i: usize) -> Result<Vec<u8>, ArchiveError> {
        let fr = self
            .index
            .frames
            .get(i)
            .ok_or(ArchiveError::FrameOutOfRange {
                frame: i,
                frames: self.index.frames.len(),
            })?;
        let mut file = File::open(&self.data_path).map_err(io("opening store"))?;
        let mut out = Vec::with_capacity(
            fr.header.len()
                + fr.segs
                    .iter()
                    .chain(fr.parity.iter())
                    .map(|b| b.len as usize)
                    .sum::<usize>(),
        );
        out.extend_from_slice(&fr.header);
        let limits = self.engine.limits;
        for (entry, b) in fr.segs.iter().chain(fr.parity.iter()).enumerate() {
            let blob = read_exact_at(&mut file, b.offset, b.len)?;
            let ok = if entry < fr.segs.len() {
                matches!(frame::segment_at(&blob, 0, entry, &limits), Ok((_, end)) if end == blob.len())
            } else {
                matches!(frame::parity_at(&blob, 0, entry, &limits), Ok((_, end)) if end == blob.len())
            };
            if !ok {
                return Err(ArchiveError::Rotted {
                    frame: i,
                    segment: entry,
                });
            }
            out.extend_from_slice(&blob);
        }
        Ok(out)
    }

    /// Decodes `len` source trits starting at trit `start` of frame
    /// `frame`, reading **only** the overlapping segment blobs: they
    /// are reassembled into a minimal valid v2 frame and decoded
    /// through the engine's ordinary plan-then-execute path, then
    /// sliced to the requested range.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::FrameOutOfRange`] /
    /// [`ArchiveError::RangeOutOfBounds`] for bad coordinates;
    /// [`ArchiveError::Rotted`] when an overlapping blob fails its CRC;
    /// [`ArchiveError::Decode`] when the reassembled frame fails to
    /// decode.
    pub fn decode_range(
        &self,
        frame_idx: usize,
        start: usize,
        len: usize,
    ) -> Result<TritVec, ArchiveError> {
        let _span = ninec_obs::span("archive_range_decode");
        let fr = self
            .index
            .frames
            .get(frame_idx)
            .ok_or(ArchiveError::FrameOutOfRange {
                frame: frame_idx,
                frames: self.index.frames.len(),
            })?;
        let source_len = fr.source_len();
        let end = start.checked_add(len);
        if end.is_none_or(|e| e as u64 > source_len) {
            return Err(ArchiveError::RangeOutOfBounds {
                start,
                len,
                source_len: usize::try_from(source_len).unwrap_or(usize::MAX),
            });
        }
        if len == 0 {
            return Ok(TritVec::new());
        }
        let end = start + len;
        // First segment whose extent contains `start`, last containing
        // `end - 1` — `trit_starts` is a strictly cumulative prefix sum.
        let lo = fr.trit_starts.partition_point(|&t| t <= start as u64) - 1;
        let hi = fr.trit_starts.partition_point(|&t| t < end as u64) - 1;
        let limits = self.engine.limits;
        let head = frame::parse_file_header(&fr.header, &limits)?;
        let sub = &fr.segs[lo..=hi];
        let sub_src: u64 = sub.iter().map(|b| u64::from(b.source_trits)).sum();
        let mut mini = Vec::new();
        frame::write_header(&mut mini, head.table_lengths, sub.len() as u32, sub_src);
        let mut file = File::open(&self.data_path).map_err(io("opening store"))?;
        for (j, b) in sub.iter().enumerate() {
            let blob = read_exact_at(&mut file, b.offset, b.len)?;
            let ok =
                matches!(frame::segment_at(&blob, 0, j, &limits), Ok((_, e)) if e == blob.len());
            if !ok {
                return Err(ArchiveError::Rotted {
                    frame: frame_idx,
                    segment: lo + j,
                });
            }
            mini.extend_from_slice(&blob);
        }
        let trits = self
            .engine
            .decode_frame(&mini)
            .map_err(ArchiveError::Decode)?;
        let off = start - usize::try_from(fr.trit_starts[lo]).unwrap_or(0);
        Ok(trits.slice(off, off + len))
    }

    /// Reads the raw blob at `(offset, len)` without verification — the
    /// scrubber's store accessor.
    pub(crate) fn read_blob(
        &self,
        file: &mut File,
        offset: u64,
        len: u32,
    ) -> Result<Vec<u8>, ArchiveError> {
        let _ = self;
        read_exact_at(file, offset, len)
    }
}

/// Seeks to `offset` and reads exactly `len` bytes.
fn read_exact_at(file: &mut File, offset: u64, len: u32) -> Result<Vec<u8>, ArchiveError> {
    file.seek(SeekFrom::Start(offset))
        .map_err(io("seeking store blob"))?;
    let mut buf = vec![0u8; len as usize];
    file.read_exact(&mut buf)
        .map_err(io("reading store blob"))?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    fn sample(repeat: usize) -> TritVec {
        tv(&"0X0X01X001X0101X111111110000X1111X0110XX".repeat(repeat))
    }

    fn engine() -> Engine {
        Engine::builder().threads(1).segment_bits(80).build()
    }

    #[test]
    fn roundtrips_frames_byte_exactly() {
        let dir = tempdir("arc_roundtrip");
        let eng = engine();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let f1 = eng.encode_frame(8, &sample(10)).expect("frame");
        let f2 = eng.encode_frame(4, &sample(7)).expect("frame");
        arc.append_frame(&f1).expect("append");
        arc.append_frame(&f2).expect("append");
        assert_eq!(arc.frame_count(), 2);
        // Reopen from disk: same index, byte-exact extraction.
        let arc = Archive::open(dir.join("t.9ca"), &eng).expect("open");
        assert_eq!(arc.extract_frame(0).expect("extract"), f1);
        assert_eq!(arc.extract_frame(1).expect("extract"), f2);
        assert!(matches!(
            arc.extract_frame(2),
            Err(ArchiveError::FrameOutOfRange {
                frame: 2,
                frames: 2
            })
        ));
    }

    #[test]
    fn dedups_identical_segments_across_frames() {
        let dir = tempdir("arc_dedup");
        let eng = engine();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let stream = sample(12);
        let frame_bytes = eng.encode_frame(8, &stream).expect("frame");
        let first = arc.append_frame(&frame_bytes).expect("append");
        // The repeating sample makes every segment byte-identical, so
        // even the first append dedups within the frame.
        assert!(first.new_bytes > 0);
        let second = arc.append_frame(&frame_bytes).expect("append");
        assert_eq!(second.dedup_hits as usize, second.segments);
        assert_eq!(second.new_bytes, 0);
        let stats = arc.stats();
        assert!(stats.dedup_ratio() > 1.9, "ratio {}", stats.dedup_ratio());
        // Both frames still extract byte-exactly.
        assert_eq!(arc.extract_frame(0).expect("extract"), frame_bytes);
        assert_eq!(arc.extract_frame(1).expect("extract"), frame_bytes);
    }

    #[test]
    fn random_access_matches_full_decode() {
        let dir = tempdir("arc_range");
        let eng = engine();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let stream = sample(20);
        let frame_bytes = eng.encode_frame(8, &stream).expect("frame");
        arc.append_frame(&frame_bytes).expect("append");
        let full = eng.decode_frame(&frame_bytes).expect("decode");
        for (start, len) in [(0usize, 5usize), (79, 3), (100, 200), (0, stream.len())] {
            let got = arc.decode_range(0, start, len).expect("range");
            assert_eq!(got.len(), len, "start {start} len {len}");
            for i in 0..len {
                assert_eq!(got.get(i), full.get(start + i), "start {start} trit {i}");
            }
        }
        assert!(arc.decode_range(0, 0, 0).expect("empty").is_empty());
        assert!(matches!(
            arc.decode_range(0, stream.len(), 1),
            Err(ArchiveError::RangeOutOfBounds { .. })
        ));
    }

    #[test]
    fn bombed_index_is_rejected_before_allocation() {
        let dir = tempdir("arc_bomb");
        let eng = engine();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        arc.append_frame(&eng.encode_frame(8, &sample(5)).expect("frame"))
            .expect("append");
        // Forge a frame count far beyond the record bytes present, with
        // a fixed-up CRC — the cross-check must reject it without
        // allocating a giant Vec.
        let mut bytes = std::fs::read(arc.index_path()).expect("read index");
        let body_len = bytes.len() - 4;
        bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc = frame::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(arc.index_path(), &bytes).expect("write index");
        assert!(matches!(
            Archive::open(dir.join("t.9ca"), &eng),
            Err(ArchiveError::BadIndex { .. })
        ));
        // An index over the byte ceiling is rejected by size alone.
        let tight = frame::DecodeLimits {
            max_index_bytes: 8,
            ..frame::DecodeLimits::default()
        };
        let tight_engine = Engine::builder().limits(tight).build();
        assert!(matches!(
            Archive::open(dir.join("t.9ca"), &tight_engine),
            Err(ArchiveError::Frame(FrameError::LimitExceeded { .. }))
        ));
    }

    #[test]
    fn non_archive_store_is_typed() {
        let dir = tempdir("arc_sniff");
        std::fs::write(dir.join("junk.9ca"), b"garbage bytes").expect("write");
        let e = Archive::open(dir.join("junk.9ca"), &engine()).expect_err("not an archive");
        assert!(matches!(e, ArchiveError::NotAnArchive { .. }));
        assert!(!is_archive(b"garbage"));
        assert!(is_archive(b"9CA1rest"));
    }

    /// Private scratch dir per test (std-only; no tempfile crate).
    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ninec_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }
}

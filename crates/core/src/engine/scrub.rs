//! Bit-rot scrubbing for `9CA` archives.
//!
//! [`Archive::scrub`] walks every stored segment reference, re-verifies
//! its CRC-32, and — where a frame carries GF(256) parity groups —
//! classifies and (in [`ScrubMode::Repair`]) heals the damage:
//!
//! - `Clean` — every CRC in the group checks out (clean groups emit no
//!   finding; a clean archive's report is empty);
//! - `Repaired` — rotted blobs were rebuilt **byte-exactly** from the
//!   group's parity budget, re-verified against both their own CRC and
//!   their recorded content digest, and rewritten in place;
//! - `Degraded { remaining_budget }` — rot is within the parity budget
//!   but was *not* rewritten ([`ScrubMode::Check`]); the budget says
//!   how many more losses the group can still absorb;
//! - `Lost` — rot exceeds the budget (or the frame has no parity);
//!   bytes are gone until a good replica is re-appended.
//!
//! In-place rewrites are safe under the archive's epoch discipline
//! because a repair writes back the blob's *original* bytes: a torn
//! rewrite leaves a prefix of correct bytes and a suffix of rotted ones
//! — either the full original (done) or a blob that still fails its
//! CRC and is repaired again by the next scrub. After any rewrite the
//! store is `fsync`ed and a fresh epoch is committed via the same
//! write-temp + atomic-rename path as appends.
//!
//! A scrub publishes the `ninec.archive.{scrubbed_segments,
//! repaired_segments,lost_segments}` counters and emits
//! `archive_scrub` / `scrub_frame` spans into the flight recorder.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};

use super::archive::{blob_digest, Archive, ArchiveError};
use super::ecc::ParityCoder;
use super::frame;

/// Whether a scrub may rewrite the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubMode {
    /// Read-only: report every finding, rewrite nothing. In-budget rot
    /// is reported as [`ScrubVerdict::Degraded`].
    Check,
    /// Rebuild every repairable blob from parity and rewrite it in
    /// place, then commit a fresh epoch.
    Repair,
}

/// The scrubber's classification of one damaged parity group (or one
/// unprotected damaged frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubVerdict {
    /// No damage (never emitted as a finding; the absence of findings
    /// *is* the clean verdict).
    Clean,
    /// Every rotted blob was rebuilt byte-exactly and rewritten.
    Repaired,
    /// Rot is within the parity budget but was not rewritten
    /// ([`ScrubMode::Check`]).
    Degraded {
        /// Further member losses this group can still absorb.
        remaining_budget: u8,
    },
    /// Rot exceeds the parity budget — unrecoverable from this archive.
    Lost,
}

/// One damaged parity group (or unprotected frame) found by a scrub.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// Frame the damage belongs to.
    pub frame: usize,
    /// Parity group within the frame (0 for unprotected frames).
    pub group: usize,
    /// The classification.
    pub verdict: ScrubVerdict,
    /// Affected segment entries (data index, or `n + j` for parity
    /// shard `j`).
    pub segments: Vec<usize>,
    /// Store byte ranges of the rotted blobs, as `(offset, len)`.
    pub store_ranges: Vec<(u64, u32)>,
}

/// Everything one scrub pass saw and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// The mode the scrub ran in.
    pub mode: ScrubMode,
    /// Segment references walked (every CRC checked).
    pub scrubbed_segments: u64,
    /// References rebuilt byte-exactly and rewritten in place.
    pub repaired_segments: u64,
    /// References beyond the parity budget.
    pub lost_segments: u64,
    /// References with in-budget rot left unrepaired (check mode).
    pub degraded_segments: u64,
    /// Every damaged group, in frame order. Empty means clean.
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// `true` when the walk found no damage at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// `true` when damage remains on disk after this scrub — anything
    /// `Degraded` or `Lost` (the CLI's exit-5 condition).
    #[must_use]
    pub fn needs_attention(&self) -> bool {
        self.findings
            .iter()
            .any(|f| !matches!(f.verdict, ScrubVerdict::Repaired))
    }

    /// `true` when some finding's rotted store range contains byte
    /// `offset` — the fault-injection trichotomy's "the scrub report
    /// covers the mutated byte".
    #[must_use]
    pub fn covers_offset(&self, offset: u64) -> bool {
        self.findings.iter().any(|f| {
            f.store_ranges
                .iter()
                .any(|&(start, len)| offset >= start && offset < start + u64::from(len))
        })
    }
}

/// Internal per-reference damage bookkeeping for one frame.
struct FrameDamage {
    rotted_data: Vec<usize>,
    rotted_parity: Vec<usize>,
}

impl Archive {
    /// Walks every stored segment reference, verifying CRCs and — in
    /// [`ScrubMode::Repair`] — rebuilding rotted blobs from their
    /// frame's parity groups and rewriting them in place. See the
    /// [module docs](self) for the verdict semantics and the in-place
    /// rewrite safety argument.
    ///
    /// # Errors
    ///
    /// [`ArchiveError::Io`] on store read/write failures; findings
    /// (including `Lost`) are *not* errors — they are the report.
    pub fn scrub(&mut self, mode: ScrubMode) -> Result<ScrubReport, ArchiveError> {
        let _span = ninec_obs::span("archive_scrub");
        let limits = self.engine.limits;
        let mut file = OpenOptions::new()
            .read(true)
            .write(matches!(mode, ScrubMode::Repair))
            .open(self.data_path.clone())
            .map_err(|source| ArchiveError::Io {
                what: "opening store for scrub",
                source,
            })?;
        // Validity cache across frames: a dedup-shared blob is checked
        // once and, when one frame's group repairs it, every other
        // referencing frame sees it healed.
        let mut valid: HashMap<(u64, bool), bool> = HashMap::new();
        let mut report = ScrubReport {
            mode,
            scrubbed_segments: 0,
            repaired_segments: 0,
            lost_segments: 0,
            degraded_segments: 0,
            findings: Vec::new(),
        };
        let mut wrote = false;
        let frames = self.index.frames.clone();
        for (fi, fr) in frames.iter().enumerate() {
            let _frame_span = ninec_obs::span("scrub_frame");
            let n = fr.segs.len();
            let Ok(head) = frame::parse_file_header(&fr.header, &limits) else {
                // Unreachable for an index that passed decode; stay total.
                continue;
            };
            let mut damage = FrameDamage {
                rotted_data: Vec::new(),
                rotted_parity: Vec::new(),
            };
            for (entry, b) in fr.segs.iter().enumerate() {
                report.scrubbed_segments += 1;
                let ok = match valid.entry((b.offset, false)) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let blob = self.read_blob(&mut file, b.offset, b.len)?;
                        let ok = matches!(
                            frame::segment_at(&blob, 0, entry, &limits),
                            Ok((_, end)) if end == blob.len()
                        );
                        *slot.insert(ok)
                    }
                };
                if !ok {
                    damage.rotted_data.push(entry);
                }
            }
            for (j, b) in fr.parity.iter().enumerate() {
                report.scrubbed_segments += 1;
                let ok = match valid.entry((b.offset, true)) {
                    std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let blob = self.read_blob(&mut file, b.offset, b.len)?;
                        let ok = matches!(
                            frame::parity_at(&blob, 0, n + j, &limits),
                            Ok((_, end)) if end == blob.len()
                        );
                        *slot.insert(ok)
                    }
                };
                if !ok {
                    damage.rotted_parity.push(j);
                }
            }
            if damage.rotted_data.is_empty() && damage.rotted_parity.is_empty() {
                continue;
            }
            let g = head.parity_g as usize;
            let r = head.parity_r as usize;
            let groups = head.groups();
            if r == 0 || groups == 0 {
                // Unprotected frame: every rotted blob is lost.
                let segments: Vec<usize> = damage.rotted_data.clone();
                report.lost_segments += segments.len() as u64;
                report.findings.push(ScrubFinding {
                    frame: fi,
                    group: 0,
                    verdict: ScrubVerdict::Lost,
                    store_ranges: segments
                        .iter()
                        .map(|&e| (fr.segs[e].offset, fr.segs[e].len))
                        .collect(),
                    segments,
                });
                continue;
            }
            for q in 0..groups {
                let rotted_members: Vec<usize> = damage
                    .rotted_data
                    .iter()
                    .copied()
                    .filter(|&e| frame::group_of(e, groups) == q)
                    .collect();
                let rotted_parity: Vec<usize> = damage
                    .rotted_parity
                    .iter()
                    .copied()
                    .filter(|&j| j / r == q)
                    .collect();
                let e_d = rotted_members.len();
                let e_p = rotted_parity.len();
                let e = e_d + e_p;
                if e == 0 {
                    continue;
                }
                let mut segments: Vec<usize> = rotted_members.clone();
                segments.extend(rotted_parity.iter().map(|&j| n + j));
                let store_ranges: Vec<(u64, u32)> = rotted_members
                    .iter()
                    .map(|&m| (fr.segs[m].offset, fr.segs[m].len))
                    .chain(
                        rotted_parity
                            .iter()
                            .map(|&j| (fr.parity[j].offset, fr.parity[j].len)),
                    )
                    .collect();
                // Repairable: total erasures within the parity budget,
                // or parity-only rot (regenerable from intact data).
                let repairable = e <= r || e_d == 0;
                let verdict = match (mode, repairable) {
                    (_, false) => ScrubVerdict::Lost,
                    (ScrubMode::Check, true) => ScrubVerdict::Degraded {
                        remaining_budget: u8::try_from(r.saturating_sub(e)).unwrap_or(0),
                    },
                    (ScrubMode::Repair, true) => {
                        match self.repair_group(
                            &mut file,
                            fr,
                            q,
                            g,
                            r,
                            groups,
                            &rotted_members,
                            &rotted_parity,
                        ) {
                            Ok(true) => {
                                wrote = true;
                                for &m in &rotted_members {
                                    valid.insert((fr.segs[m].offset, false), true);
                                }
                                for &j in &rotted_parity {
                                    valid.insert((fr.parity[j].offset, true), true);
                                }
                                ScrubVerdict::Repaired
                            }
                            Ok(false) => ScrubVerdict::Lost,
                            Err(e) => return Err(e),
                        }
                    }
                };
                match verdict {
                    ScrubVerdict::Repaired => report.repaired_segments += e as u64,
                    ScrubVerdict::Degraded { .. } => report.degraded_segments += e as u64,
                    ScrubVerdict::Lost => report.lost_segments += e as u64,
                    ScrubVerdict::Clean => {}
                }
                report.findings.push(ScrubFinding {
                    frame: fi,
                    group: q,
                    verdict,
                    segments,
                    store_ranges,
                });
            }
        }
        if wrote {
            file.sync_all().map_err(|source| ArchiveError::Io {
                what: "syncing scrubbed store",
                source,
            })?;
            let mut next = self.index.clone();
            next.epoch += 1;
            self.commit_index(&next)?;
            self.index = next;
        }
        crate::metrics::publish_archive_scrub(
            report.scrubbed_segments,
            report.repaired_segments,
            report.lost_segments,
        );
        Ok(report)
    }

    /// Rebuilds one group's rotted blobs from its parity budget and
    /// rewrites them in place. Returns `Ok(true)` when every rotted
    /// blob was rebuilt, digest-verified and written; `Ok(false)` when
    /// reconstruction is impossible (inconsistent shards, failed
    /// re-verification) — the caller records `Lost`.
    #[allow(clippy::too_many_arguments)]
    fn repair_group(
        &self,
        file: &mut File,
        fr: &super::archive::FrameRecord,
        q: usize,
        g: usize,
        r: usize,
        groups: usize,
        rotted_members: &[usize],
        rotted_parity: &[usize],
    ) -> Result<bool, ArchiveError> {
        let limits = self.engine.limits;
        let n = fr.segs.len();
        let Ok(coder) = ParityCoder::new(g, r) else {
            return Ok(false);
        };
        // Read the group's blobs once. Member slots: real members in
        // shard-slot order, virtual zero members for a ragged tail.
        let mut member_bytes: Vec<Option<Vec<u8>>> = Vec::with_capacity(g);
        for slot in 0..g {
            let idx = q + slot * groups;
            if idx >= n {
                member_bytes.push(Some(Vec::new())); // virtual zero member
            } else if rotted_members.contains(&idx) {
                member_bytes.push(None);
            } else {
                let b = &fr.segs[idx];
                member_bytes.push(Some(self.read_blob(file, b.offset, b.len)?));
            }
        }
        let mut parity_bytes: Vec<Option<Vec<u8>>> = Vec::with_capacity(r);
        for j in 0..r {
            let pj = q * r + j;
            if rotted_parity.contains(&pj) || pj >= fr.parity.len() {
                parity_bytes.push(None);
            } else {
                let b = &fr.parity[pj];
                parity_bytes.push(Some(self.read_blob(file, b.offset, b.len)?));
            }
        }
        // The shard length comes from the (CRC-trusted) intact parity
        // headers; with no intact parity left (parity-only rot) it is
        // the longest member blob.
        let mut shard_len: Option<usize> = None;
        let mut parity_payloads: Vec<Option<&[u8]>> = Vec::with_capacity(r);
        for (j, blob) in parity_bytes.iter().enumerate() {
            match blob {
                Some(bytes) => {
                    let Ok((par, _)) = frame::parity_at(bytes, 0, n + q * r + j, &limits) else {
                        return Ok(false);
                    };
                    match shard_len {
                        None => shard_len = Some(par.payload.len()),
                        Some(l) if l == par.payload.len() => {}
                        Some(_) => return Ok(false), // inconsistent shards
                    }
                    parity_payloads.push(Some(par.payload));
                }
                None => parity_payloads.push(None),
            }
        }
        let shard_len = match shard_len {
            Some(l) => l,
            None => member_bytes
                .iter()
                .flatten()
                .map(Vec::len)
                .max()
                .unwrap_or(0),
        };
        if member_bytes.iter().flatten().any(|m| m.len() > shard_len) {
            return Ok(false); // a member the parity cannot cover
        }

        let mut rebuilt_members: Vec<(usize, Vec<u8>)> = Vec::new();
        if !rotted_members.is_empty() {
            let slots: Vec<Option<&[u8]>> = member_bytes
                .iter()
                .map(|m| m.as_deref())
                .chain(parity_payloads.iter().copied())
                .collect();
            let Ok(recovered) = coder.reconstruct(&slots, shard_len) else {
                return Ok(false);
            };
            for (slot, shard) in recovered {
                let idx = q + slot * groups;
                let Some(record) = fr.segs.get(idx) else {
                    return Ok(false);
                };
                let len = record.len as usize;
                if shard.len() < len {
                    return Ok(false);
                }
                let blob = shard[..len].to_vec();
                // Accept only a blob that re-verifies against both its
                // own CRC and the index's recorded content digest —
                // byte-exact restoration or nothing.
                let crc_ok = matches!(
                    frame::segment_at(&blob, 0, idx, &limits),
                    Ok((_, end)) if end == blob.len()
                );
                if !crc_ok || blob_digest(&blob) != record.digest {
                    return Ok(false);
                }
                rebuilt_members.push((idx, blob));
            }
            if rebuilt_members.len() != rotted_members.len() {
                return Ok(false);
            }
        }
        let mut rebuilt_parity: Vec<(usize, Vec<u8>)> = Vec::new();
        if !rotted_parity.is_empty() {
            // Regenerate parity from the now-complete member set.
            let mut full_members: Vec<&[u8]> = Vec::with_capacity(g);
            for (slot, m) in member_bytes.iter().enumerate() {
                match m {
                    Some(bytes) => full_members.push(bytes),
                    None => {
                        let idx = q + slot * groups;
                        match rebuilt_members.iter().find(|(i, _)| *i == idx) {
                            Some((_, blob)) => full_members.push(blob),
                            None => return Ok(false),
                        }
                    }
                }
            }
            // Strip virtual zero members' placeholder status: encode
            // expects exactly the real members (shorter groups are
            // zero-padded internally), so pass only indices below `n`.
            let real: Vec<&[u8]> = (0..g)
                .filter(|slot| q + slot * groups < n)
                .map(|slot| full_members[slot])
                .collect();
            let shards = coder.encode(&real, shard_len);
            for &pj in rotted_parity {
                let j = pj % r;
                let Some(shard) = shards.get(j) else {
                    return Ok(false);
                };
                let mut blob = Vec::new();
                if frame::write_parity_segment(&mut blob, q, j, shard).is_err() {
                    return Ok(false);
                }
                let Some(record) = fr.parity.get(pj) else {
                    return Ok(false);
                };
                if blob.len() != record.len as usize || blob_digest(&blob) != record.digest {
                    return Ok(false);
                }
                rebuilt_parity.push((pj, blob));
            }
        }
        // Every rebuild verified — now (and only now) touch the store.
        for (idx, blob) in &rebuilt_members {
            let record = &fr.segs[*idx];
            write_at(file, record.offset, blob)?;
        }
        for (pj, blob) in &rebuilt_parity {
            let record = &fr.parity[*pj];
            write_at(file, record.offset, blob)?;
        }
        Ok(true)
    }
}

/// Seeks to `offset` and writes `bytes` in place.
fn write_at(file: &mut File, offset: u64, bytes: &[u8]) -> Result<(), ArchiveError> {
    file.seek(SeekFrom::Start(offset))
        .map_err(|source| ArchiveError::Io {
            what: "seeking rewrite offset",
            source,
        })?;
    file.write_all(bytes).map_err(|source| ArchiveError::Io {
        what: "rewriting repaired blob",
        source,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use ninec_testdata::trit::TritVec;
    use std::path::PathBuf;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    /// A deterministic non-repeating stream, so segments never dedup
    /// into one shared blob (which would change erasure counts).
    fn varied(len: usize) -> TritVec {
        let mut s = String::with_capacity(len);
        let mut x = 0x1234_5678u32;
        for _ in 0..len {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            s.push(match (x >> 24) % 3 {
                0 => '0',
                1 => '1',
                _ => 'X',
            });
        }
        tv(&s)
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ninec_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    /// Flips one byte inside the store at `offset`.
    fn rot(path: &std::path::Path, offset: u64) {
        let mut bytes = std::fs::read(path).expect("read store");
        bytes[offset as usize] ^= 0xFF;
        std::fs::write(path, bytes).expect("write store");
    }

    #[test]
    fn clean_archive_scrubs_clean() {
        let dir = tempdir("scrub_clean");
        let eng = Engine::builder()
            .threads(1)
            .segment_bits(80)
            .parity(4, 2)
            .build();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        arc.append_frame(&eng.encode_frame(8, &varied(400)).expect("frame"))
            .expect("append");
        let report = arc.scrub(ScrubMode::Check).expect("scrub");
        assert!(report.is_clean());
        assert!(!report.needs_attention());
        assert!(report.scrubbed_segments > 0);
    }

    #[test]
    fn rot_within_budget_is_degraded_then_repaired() {
        let dir = tempdir("scrub_repair");
        let eng = Engine::builder()
            .threads(1)
            .segment_bits(80)
            .parity(4, 2)
            .build();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let frame_bytes = eng.encode_frame(8, &varied(400)).expect("frame");
        arc.append_frame(&frame_bytes).expect("append");
        // Rot one byte inside the first data blob's payload.
        let offset = crate::engine::archive::DATA_HEADER_BYTES as u64
            + frame::SEGMENT_HEADER_BYTES as u64
            + 1;
        rot(arc.path(), offset);

        let check = arc.scrub(ScrubMode::Check).expect("check");
        assert!(check.needs_attention());
        assert!(check.covers_offset(offset));
        assert!(matches!(
            check.findings[0].verdict,
            ScrubVerdict::Degraded {
                remaining_budget: 1
            }
        ));
        assert_eq!(check.degraded_segments, 1);

        let epoch_before = arc.epoch();
        let repair = arc.scrub(ScrubMode::Repair).expect("repair");
        assert!(!repair.needs_attention());
        assert_eq!(repair.repaired_segments, 1);
        assert!(matches!(repair.findings[0].verdict, ScrubVerdict::Repaired));
        assert_eq!(arc.epoch(), epoch_before + 1);

        // The store is byte-exactly healed: extraction matches the
        // original frame and a fresh scrub is clean.
        assert_eq!(arc.extract_frame(0).expect("extract"), frame_bytes);
        assert!(arc.scrub(ScrubMode::Check).expect("rescrub").is_clean());
    }

    #[test]
    fn rot_beyond_budget_is_lost() {
        let dir = tempdir("scrub_lost");
        let eng = Engine::builder()
            .threads(1)
            .segment_bits(40)
            .parity(8, 1)
            .build();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let frame_bytes = eng.encode_frame(8, &varied(400)).expect("frame");
        let receipt = arc.append_frame(&frame_bytes).expect("append");
        assert!(receipt.segments >= 4, "need several segments in one group");
        // Rot two data blobs in the same (single) parity group: r = 1
        // cannot cover two erasures.
        let arc_read = Archive::open(dir.join("t.9ca"), &eng).expect("open");
        let f0 = arc_read.index.frames[0].clone();
        drop(arc_read);
        // Interleaved grouping: segments 0 and 2 share group 0 when
        // there are two groups, so two erasures exceed r = 1.
        rot(
            arc.path(),
            f0.segs[0].offset + frame::SEGMENT_HEADER_BYTES as u64,
        );
        rot(
            arc.path(),
            f0.segs[2].offset + frame::SEGMENT_HEADER_BYTES as u64,
        );
        let report = arc.scrub(ScrubMode::Repair).expect("scrub");
        assert!(report.needs_attention());
        assert!(report.lost_segments >= 2);
        assert!(report
            .findings
            .iter()
            .any(|f| matches!(f.verdict, ScrubVerdict::Lost)));
        // Extraction of the damaged frame reports rot, typed.
        assert!(matches!(
            arc.extract_frame(0),
            Err(ArchiveError::Rotted { .. })
        ));
    }

    #[test]
    fn unprotected_frame_rot_is_lost() {
        let dir = tempdir("scrub_v2");
        let eng = Engine::builder().threads(1).segment_bits(80).build();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        arc.append_frame(&eng.encode_frame(8, &varied(400)).expect("frame"))
            .expect("append");
        rot(
            arc.path(),
            crate::engine::archive::DATA_HEADER_BYTES as u64 + frame::SEGMENT_HEADER_BYTES as u64,
        );
        let report = arc.scrub(ScrubMode::Repair).expect("scrub");
        assert!(report.needs_attention());
        assert!(report.lost_segments >= 1);
    }

    #[test]
    fn rotted_parity_is_regenerated_from_data() {
        let dir = tempdir("scrub_parity");
        let eng = Engine::builder()
            .threads(1)
            .segment_bits(80)
            .parity(4, 2)
            .build();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let frame_bytes = eng.encode_frame(8, &varied(400)).expect("frame");
        arc.append_frame(&frame_bytes).expect("append");
        let arc_read = Archive::open(dir.join("t.9ca"), &eng).expect("open");
        let parity0 = arc_read.index.frames[0].parity[0];
        drop(arc_read);
        rot(
            arc.path(),
            parity0.offset + frame::SEGMENT_HEADER_BYTES as u64,
        );
        let report = arc.scrub(ScrubMode::Repair).expect("scrub");
        assert_eq!(report.repaired_segments, 1);
        assert!(!report.needs_attention());
        assert_eq!(arc.extract_frame(0).expect("extract"), frame_bytes);
    }

    #[test]
    fn shared_rotted_blob_heals_every_referencing_frame() {
        let dir = tempdir("scrub_shared");
        let eng = Engine::builder()
            .threads(1)
            .segment_bits(80)
            .parity(4, 2)
            .build();
        let mut arc = Archive::create(dir.join("t.9ca"), &eng).expect("create");
        let frame_bytes = eng.encode_frame(8, &varied(400)).expect("frame");
        arc.append_frame(&frame_bytes).expect("append");
        let receipt = arc.append_frame(&frame_bytes).expect("append");
        assert!(receipt.dedup_hits > 0);
        let arc_read = Archive::open(dir.join("t.9ca"), &eng).expect("open");
        let shared = arc_read.index.frames[0].segs[0];
        assert_eq!(shared, arc_read.index.frames[1].segs[0]);
        drop(arc_read);
        rot(
            arc.path(),
            shared.offset + frame::SEGMENT_HEADER_BYTES as u64,
        );
        let report = arc.scrub(ScrubMode::Repair).expect("scrub");
        assert!(!report.needs_attention());
        // Both frames extract byte-exactly after one repair.
        assert_eq!(arc.extract_frame(0).expect("extract"), frame_bytes);
        assert_eq!(arc.extract_frame(1).expect("extract"), frame_bytes);
    }
}

//! A vendored, std-only work-stealing thread pool for segment jobs.
//!
//! The engine's unit of work is a *segment index*: all jobs are known up
//! front, none spawns new ones, and every job writes exactly one result
//! slot. That lets the pool stay tiny — per-worker deques seeded
//! round-robin, LIFO pops from the owner, FIFO steals from siblings, and
//! scoped threads so borrows of the source stream flow straight into the
//! workers without `Arc`.
//!
//! Determinism: results are keyed by job index and collected in index
//! order, so the output of [`map_indexed`] is independent of how the jobs
//! were interleaved across workers. `threads <= 1` (or a single job)
//! short-circuits to a serial in-caller loop — the engine's serial
//! fallback path.
//!
//! Panic isolation: every job runs under
//! [`std::panic::catch_unwind`], so a panicking closure poisons only its
//! own result slot — [`try_map_indexed`] returns it as a
//! [`JobPanic`] while every other job's result is delivered intact, and
//! the index-ordered merge can never deadlock on a missing slot. The
//! serial fallback catches panics the same way, so `threads = 1`
//! isolates identically to `threads = 8`. ([`map_indexed`] keeps the old
//! propagate-the-panic contract for callers that treat a panic as a bug.)
//!
//! Telemetry (batched at segment boundaries, never inside a job): each
//! worker publishes its queue depth to the
//! `ninec.engine.worker.<i>.queue_depth` gauge after every pop, and its
//! steal/completion tallies once at exit (`ninec.engine.steals`,
//! `ninec.engine.segments`).

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Upper bound on worker threads — keeps the per-worker gauge family
/// bounded and guards against absurd `NINEC_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// A caught panic from one pool job, carrying the panic message when the
/// payload was a string (the common `panic!("…")` case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload rendered as text, or a placeholder for
    /// non-string payloads.
    pub message: String,
}

impl fmt::Display for JobPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Runs `thunk` under `catch_unwind`, converting a panic payload into a
/// [`JobPanic`]. The closure owns (or safely shares) its data, so
/// observing state after a caught panic is sound: a poisoned job's
/// partial effects never escape its own result slot.
fn run_caught<T>(thunk: impl FnOnce() -> T) -> Result<T, JobPanic> {
    match catch_unwind(AssertUnwindSafe(thunk)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(JobPanic { message })
        }
    }
}

/// Locks a queue, recovering from poisoning. Jobs run *outside* the
/// queue locks (the critical sections below are plain `VecDeque` ops
/// that cannot panic), so a poisoned mutex can only mean a job panicked
/// elsewhere — the queue data itself is still consistent.
fn lock_queue<'a>(
    queues: &'a [Mutex<VecDeque<usize>>],
    w: usize,
) -> MutexGuard<'a, VecDeque<usize>> {
    match queues[w].lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Runs `f(0..jobs)` across at most `threads` workers and returns the
/// results in job-index order.
///
/// Jobs are distributed round-robin across per-worker deques; an idle
/// worker steals from the front of a sibling's deque. The mapping of jobs
/// to workers affects only scheduling, never the returned vector: slot `i`
/// always holds `f(i)`.
///
/// With `threads <= 1` or fewer than two jobs the closure runs serially on
/// the calling thread (no pool, no atomics) — this is the engine's
/// `threads = 1` fallback and keeps single-threaded latency identical to a
/// plain loop.
///
/// # Panics
///
/// Propagates a panic from `f` (re-raised on the calling thread after
/// every worker has drained; no other job's result is lost first). Use
/// [`try_map_indexed`] to receive panics as values instead.
pub fn map_indexed<T, F>(threads: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(jobs);
    for (i, r) in try_map_indexed(threads, jobs, f).into_iter().enumerate() {
        match r {
            Ok(v) => out.push(v),
            Err(p) => panic!("pool job {i} panicked: {}", p.message),
        }
    }
    out
}

/// [`map_indexed`] with per-job panic isolation: slot `i` holds
/// `Ok(f(i))`, or `Err(JobPanic)` when `f(i)` panicked.
///
/// A panicking job never takes the pool down — its worker catches the
/// unwind, records the poisoned slot and moves on to the next job, so
/// every other index still completes and the result vector is always
/// fully populated in index order (no deadlock, no missing slots).
pub fn try_map_indexed<T, F>(threads: usize, jobs: usize, f: F) -> Vec<Result<T, JobPanic>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS);
    if threads <= 1 || jobs <= 1 {
        // The serial fallback isolates panics exactly like the pooled
        // path, so `threads = 1` and `threads = 8` behave identically.
        return (0..jobs).map(|i| run_caught(|| f(i))).collect();
    }
    let workers = threads.min(jobs);
    // Round-robin seeding: job i starts on worker i % workers.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs)
                    .filter(|job| job % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<OnceLock<Result<T, JobPanic>>> = (0..jobs).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let mut steals = 0u64;
                let mut done = 0u64;
                loop {
                    let job = match pop_own(queues, w) {
                        Some(job) => Some(job),
                        None => steal(queues, w, &mut steals),
                    };
                    let Some(job) = job else { break };
                    // One gauge write per segment — batched at the segment
                    // boundary, never inside the encode/decode hot loop.
                    crate::metrics::publish_worker_queue_depth(w, queue_len(queues, w));
                    // The catch_unwind here is the panic-isolation
                    // boundary: a panicking job poisons only slot `job`.
                    let out = run_caught(|| f(job));
                    // Each job index is popped exactly once, so the slot is
                    // empty; a second set is impossible by construction.
                    let _ = slots[job].set(out);
                    done += 1;
                }
                crate::metrics::publish_pool_worker(steals, done);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            // Every index was queued exactly once and its worker either
            // stored Ok or a caught JobPanic; an empty slot would mean a
            // worker died outside catch_unwind, which the isolation
            // boundary makes unreachable — but stay total regardless.
            slot.into_inner().unwrap_or_else(|| {
                Err(JobPanic {
                    message: "worker exited without storing a result".to_string(),
                })
            })
        })
        .collect()
}

/// LIFO pop from the worker's own deque (hot segments stay cache-warm).
fn pop_own(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    lock_queue(queues, w).pop_back()
}

/// Current depth of the worker's own deque.
fn queue_len(queues: &[Mutex<VecDeque<usize>>], w: usize) -> usize {
    lock_queue(queues, w).len()
}

/// FIFO steal from the first non-empty sibling, scanning from `w + 1`
/// round-robin so the load spreads instead of piling on worker 0.
fn steal(queues: &[Mutex<VecDeque<usize>>], w: usize, steals: &mut u64) -> Option<usize> {
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        let job = lock_queue(queues, victim).pop_front();
        if let Some(job) = job {
            *steals += 1;
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_fallback_matches_parallel() {
        let serial = map_indexed(1, 17, |i| i * i);
        let parallel = map_indexed(4, 17, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = map_indexed(8, 64, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn results_stay_in_index_order_under_skewed_load() {
        // Make early jobs slow so late jobs finish first; order must hold.
        let out = map_indexed(4, 12, |i| {
            if i < 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..12).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(map_indexed(32, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn one_panicking_job_poisons_only_its_slot() {
        for threads in [1, 2, 8] {
            let out = try_map_indexed(threads, 16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 16, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let p = r.as_ref().expect_err("job 5 panicked");
                    assert!(p.message.contains("boom at 5"), "{p:?}");
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i * 2)), "threads={threads} job {i}");
                }
            }
        }
    }

    #[test]
    fn all_jobs_panicking_still_terminates() {
        let out = try_map_indexed::<usize, _>(4, 8, |i| panic!("all down {i}"));
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let out = try_map_indexed::<usize, _>(1, 1, |_| std::panic::panic_any(42usize));
        assert_eq!(
            out[0].as_ref().expect_err("panicked").message,
            "non-string panic payload"
        );
    }

    #[test]
    fn map_indexed_propagates_a_job_panic() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(2, 4, |i| {
                if i == 2 {
                    panic!("expected propagation");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}

//! The engine's segment pool: a thin, single-priority facade over the
//! reusable priority executor in [`exec`](super::exec).
//!
//! The engine's unit of work is a *segment index*: all jobs are known up
//! front, none spawns new ones, and every job writes exactly one result
//! slot. Historically this module carried the whole work-stealing pool;
//! the scheduling core (per-worker deques seeded round-robin, LIFO owner
//! pops, FIFO steals, scoped threads, `catch_unwind` isolation, serial
//! in-caller fallback) now lives in [`exec`](super::exec) so that
//! repair/salvage backfill — and, later, `ninec-serve` connections — can
//! share it with two-level job priorities. Everything here schedules at
//! [`Priority::High`](super::exec::Priority::High).
//!
//! Determinism: results are keyed by job index and collected in index
//! order, so the output of [`map_indexed`] is independent of how the jobs
//! were interleaved across workers. `threads <= 1` (or a single job)
//! short-circuits to a serial in-caller loop — the engine's serial
//! fallback path.
//!
//! Panic isolation: every job runs under
//! [`std::panic::catch_unwind`], so a panicking closure poisons only its
//! own result slot — [`try_map_indexed`] returns it as a
//! [`JobPanic`] while every other job's result is delivered intact, and
//! the index-ordered merge can never deadlock on a missing slot. The
//! serial fallback catches panics the same way, so `threads = 1`
//! isolates identically to `threads = 8`. ([`map_indexed`] keeps the old
//! propagate-the-panic contract for callers that treat a panic as a bug.)

use super::cancel::CancelToken;
use super::exec::{self, Priority};

pub use super::exec::{JobOutcome, JobPanic, MAX_THREADS};

/// Runs `f(0..jobs)` across at most `threads` workers and returns the
/// results in job-index order.
///
/// Jobs are distributed round-robin across per-worker deques; an idle
/// worker steals from the front of a sibling's deque. The mapping of jobs
/// to workers affects only scheduling, never the returned vector: slot `i`
/// always holds `f(i)`.
///
/// With `threads <= 1` or fewer than two jobs the closure runs serially on
/// the calling thread (no pool, no atomics) — this is the engine's
/// `threads = 1` fallback and keeps single-threaded latency identical to a
/// plain loop.
///
/// # Panics
///
/// Propagates a panic from `f` (re-raised on the calling thread after
/// every worker has drained; no other job's result is lost first). Use
/// [`try_map_indexed`] to receive panics as values instead.
pub fn map_indexed<T, F>(threads: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let mut out = Vec::with_capacity(jobs);
    for (i, r) in try_map_indexed(threads, jobs, f).into_iter().enumerate() {
        match r {
            Ok(v) => out.push(v),
            Err(p) => panic!("pool job {i} panicked: {}", p.message),
        }
    }
    out
}

/// [`map_indexed`] with per-job panic isolation: slot `i` holds
/// `Ok(f(i))`, or `Err(JobPanic)` when `f(i)` panicked.
///
/// A panicking job never takes the pool down — its worker catches the
/// unwind, records the poisoned slot and moves on to the next job, so
/// every other index still completes and the result vector is always
/// fully populated in index order (no deadlock, no missing slots).
pub fn try_map_indexed<T, F>(threads: usize, jobs: usize, f: F) -> Vec<Result<T, JobPanic>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    exec::run_prioritized(threads, jobs, |_| Priority::High, f)
}

/// [`try_map_indexed`] with cooperative cancellation: when `cancel` is
/// given and trips, every job not yet started resolves to
/// [`JobOutcome::Cancelled`] without its closure running (jobs already
/// in flight finish normally). The vector is always fully populated in
/// index order — cancellation abandons work, never results.
pub fn cancellable_map_indexed<T, F>(
    threads: usize,
    jobs: usize,
    cancel: Option<&CancelToken>,
    f: F,
) -> Vec<JobOutcome<T>>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    exec::run_cancellable(threads, jobs, |_| Priority::High, cancel, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_fallback_matches_parallel() {
        let serial = map_indexed(1, 17, |i| i * i);
        let parallel = map_indexed(4, 17, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = map_indexed(8, 64, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn results_stay_in_index_order_under_skewed_load() {
        // Make early jobs slow so late jobs finish first; order must hold.
        let out = map_indexed(4, 12, |i| {
            if i < 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..12).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(map_indexed(32, 3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn one_panicking_job_poisons_only_its_slot() {
        for threads in [1, 2, 8] {
            let out = try_map_indexed(threads, 16, |i| {
                if i == 5 {
                    panic!("boom at {i}");
                }
                i * 2
            });
            assert_eq!(out.len(), 16, "threads={threads}");
            for (i, r) in out.iter().enumerate() {
                if i == 5 {
                    let p = r.as_ref().expect_err("job 5 panicked");
                    assert!(p.message.contains("boom at 5"), "{p:?}");
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i * 2)), "threads={threads} job {i}");
                }
            }
        }
    }

    #[test]
    fn all_jobs_panicking_still_terminates() {
        let out = try_map_indexed::<usize, _>(4, 8, |i| panic!("all down {i}"));
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(|r| r.is_err()));
    }

    #[test]
    fn non_string_panic_payload_is_reported() {
        let out = try_map_indexed::<usize, _>(1, 1, |_| std::panic::panic_any(42usize));
        assert_eq!(
            out[0].as_ref().expect_err("panicked").message,
            "non-string panic payload"
        );
    }

    #[test]
    fn cancellable_facade_without_a_token_matches_map_indexed() {
        let out = cancellable_map_indexed(4, 9, None, |i| i + 1);
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o, &JobOutcome::Done(i + 1));
        }
    }

    #[test]
    fn cancellable_facade_honors_a_tripped_token() {
        let token = CancelToken::new();
        token.cancel();
        let ran = AtomicUsize::new(0);
        let out = cancellable_map_indexed(4, 9, Some(&token), |_| {
            ran.fetch_add(1, Ordering::SeqCst);
        });
        assert!(out.iter().all(|o| matches!(o, JobOutcome::Cancelled)));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn map_indexed_propagates_a_job_panic() {
        let caught = std::panic::catch_unwind(|| {
            map_indexed(2, 4, |i| {
                if i == 2 {
                    panic!("expected propagation");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}

//! A vendored, std-only work-stealing thread pool for segment jobs.
//!
//! The engine's unit of work is a *segment index*: all jobs are known up
//! front, none spawns new ones, and every job writes exactly one result
//! slot. That lets the pool stay tiny — per-worker deques seeded
//! round-robin, LIFO pops from the owner, FIFO steals from siblings, and
//! scoped threads so borrows of the source stream flow straight into the
//! workers without `Arc`.
//!
//! Determinism: results are keyed by job index and collected in index
//! order, so the output of [`map_indexed`] is independent of how the jobs
//! were interleaved across workers. `threads <= 1` (or a single job)
//! short-circuits to a serial in-caller loop — the engine's serial
//! fallback path.
//!
//! Telemetry (batched at segment boundaries, never inside a job): each
//! worker publishes its queue depth to the
//! `ninec.engine.worker.<i>.queue_depth` gauge after every pop, and its
//! steal/completion tallies once at exit (`ninec.engine.steals`,
//! `ninec.engine.segments`).

use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Upper bound on worker threads — keeps the per-worker gauge family
/// bounded and guards against absurd `NINEC_THREADS` values.
pub const MAX_THREADS: usize = 256;

/// Runs `f(0..jobs)` across at most `threads` workers and returns the
/// results in job-index order.
///
/// Jobs are distributed round-robin across per-worker deques; an idle
/// worker steals from the front of a sibling's deque. The mapping of jobs
/// to workers affects only scheduling, never the returned vector: slot `i`
/// always holds `f(i)`.
///
/// With `threads <= 1` or fewer than two jobs the closure runs serially on
/// the calling thread (no pool, no atomics) — this is the engine's
/// `threads = 1` fallback and keeps single-threaded latency identical to a
/// plain loop.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope joins all workers first).
pub fn map_indexed<T, F>(threads: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send + Sync,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS);
    if threads <= 1 || jobs <= 1 {
        return (0..jobs).map(f).collect();
    }
    let workers = threads.min(jobs);
    // Round-robin seeding: job i starts on worker i % workers.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| {
            Mutex::new(
                (0..jobs)
                    .filter(|job| job % workers == w)
                    .collect::<VecDeque<usize>>(),
            )
        })
        .collect();
    let slots: Vec<OnceLock<T>> = (0..jobs).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || {
                let mut steals = 0u64;
                let mut done = 0u64;
                loop {
                    let job = match pop_own(queues, w) {
                        Some(job) => Some(job),
                        None => steal(queues, w, &mut steals),
                    };
                    let Some(job) = job else { break };
                    // One gauge write per segment — batched at the segment
                    // boundary, never inside the encode/decode hot loop.
                    crate::metrics::publish_worker_queue_depth(w, queue_len(queues, w));
                    let out = f(job);
                    // Each job index is popped exactly once, so the slot is
                    // empty; a second set is impossible by construction.
                    let _ = slots[job].set(out);
                    done += 1;
                }
                crate::metrics::publish_pool_worker(steals, done);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("every job index was queued exactly once and ran to completion")
        })
        .collect()
}

/// LIFO pop from the worker's own deque (hot segments stay cache-warm).
fn pop_own(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    queues[w]
        .lock()
        .expect("pool worker panicked while holding its queue lock")
        .pop_back()
}

/// Current depth of the worker's own deque.
fn queue_len(queues: &[Mutex<VecDeque<usize>>], w: usize) -> usize {
    queues[w]
        .lock()
        .expect("pool worker panicked while holding its queue lock")
        .len()
}

/// FIFO steal from the first non-empty sibling, scanning from `w + 1`
/// round-robin so the load spreads instead of piling on worker 0.
fn steal(queues: &[Mutex<VecDeque<usize>>], w: usize, steals: &mut u64) -> Option<usize> {
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        let job = queues[victim]
            .lock()
            .expect("pool worker panicked while holding its queue lock")
            .pop_front();
        if let Some(job) = job {
            *steals += 1;
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_fallback_matches_parallel() {
        let serial = map_indexed(1, 17, |i| i * i);
        let parallel = map_indexed(4, 17, |i| i * i);
        assert_eq!(serial, parallel);
        assert_eq!(serial, (0..17).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let out = map_indexed(8, 64, |i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn results_stay_in_index_order_under_skewed_load() {
        // Make early jobs slow so late jobs finish first; order must hold.
        let out = map_indexed(4, 12, |i| {
            if i < 3 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i * 10
        });
        assert_eq!(out, (0..12).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job_edge_cases() {
        assert_eq!(map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        assert_eq!(map_indexed(32, 3, |i| i), vec![0, 1, 2]);
    }
}

//! Bounded-memory streaming `9CSF` frame ingestion.
//!
//! [`FrameReader`] pulls a frame incrementally from any [`io::Read`] —
//! a pipe, a socket, a file too large to map — and yields one
//! [`StreamItem`] per segment without ever materializing the whole
//! frame. Memory is bounded by the [`DecodeLimits`]: the internal
//! window never holds more than one maximal segment
//! ([`DecodeLimits::max_shard_bytes`]) plus one read chunk.
//!
//! The reader is *scan-shaped*, not parse-shaped: segment-level damage
//! (a bad CRC, a torn write, a truncated tail) never fails the stream.
//! Instead the reader resynchronises — probing forward inside its
//! window for the next CRC-valid segment or parity marker, the
//! streaming twin of the in-memory salvage scan, with the same
//! [`DecodeLimits::max_resync_probes`] budget — and reports the skipped
//! bytes as a [`StreamItem::Damaged`] entry. Strict consumers (the
//! engine's [`Engine::decode_stream`]) turn damage into typed errors;
//! salvage consumers may keep going.
//!
//! Two ceilings guard against hostile or wedged sources:
//!
//! - every header-claimed size is checked against the `DecodeLimits`
//!   *before* the bytes are buffered (the same allocation-bomb guards
//!   as the in-memory parser);
//! - an optional per-read timeout ([`FrameReader::timeout`]) bounds how
//!   long any single underlying `read` may stall before the stream is
//!   abandoned with [`ReadError::TimedOut`].
//!
//! Repair needs random access to a whole parity group, whose members
//! are interleaved across the entire frame — so the streaming path
//! offers strict decode only. For the repair/salvage rungs, buffer the
//! frame and use [`Engine::decode_frame_repair`].

use crate::code::CodeTable;
use crate::decode::DecodeError;
use crate::engine::frame::{
    self, DamageReason, DecodeLimits, FrameError, HEADER_BYTES, HEADER_BYTES_V3, MAGIC,
    PARITY_MARKER, SEGMENT_HEADER_BYTES, VERSION_V3,
};
use crate::engine::{pool, Engine};
use ninec_testdata::trit::TritVec;
use std::fmt;
use std::io::Read;
use std::ops::Range;
use std::time::{Duration, Instant};

/// Bytes requested from the underlying reader per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Error from streaming frame ingestion or streaming decode.
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The frame structure is invalid (file-level damage, an exceeded
    /// limit, or — in strict decode — segment-level damage).
    Frame(FrameError),
    /// A CRC-valid segment still failed 9C decoding.
    Decode(DecodeError),
    /// A single underlying `read` stalled longer than the configured
    /// [`FrameReader::timeout`] budget.
    TimedOut {
        /// The configured per-read budget that was exceeded.
        limit: Duration,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "stream read failed: {e}"),
            ReadError::Frame(e) => write!(f, "{e}"),
            ReadError::Decode(e) => write!(f, "{e}"),
            ReadError::TimedOut { limit } => {
                write!(f, "stream read stalled past {limit:?}")
            }
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Frame(e) => Some(e),
            ReadError::Decode(e) => Some(e),
            ReadError::TimedOut { .. } => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<FrameError> for ReadError {
    fn from(e: FrameError) -> Self {
        ReadError::Frame(e)
    }
}

impl From<DecodeError> for ReadError {
    fn from(e: DecodeError) -> Self {
        ReadError::Decode(e)
    }
}

/// The frame's file header, as seen by a [`FrameReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamHeader {
    /// Codeword lengths of the stored 9C table.
    pub table_lengths: [u8; 9],
    /// Claimed data segment count.
    pub segments: usize,
    /// Claimed parity segment count (0 for v2 frames).
    pub parity_segments: usize,
    /// Total source trits the frame decodes to.
    pub source_len: usize,
    /// Frame version (2 or 3).
    pub version: u8,
    /// Data segments per parity group (0 = no parity).
    pub parity_g: u8,
    /// Parity shards per group.
    pub parity_r: u8,
}

/// One data segment pulled off the stream, owning its bytes
/// (header + payload — re-parseable and CRC-verifiable in isolation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSegment {
    /// Walk position (segment index for undamaged streams).
    pub index: usize,
    /// Block size `K` the segment was encoded with.
    pub k: usize,
    /// Source trits the segment decodes to.
    pub source_trits: usize,
    /// Encoded payload trits.
    pub payload_trits: usize,
    /// The segment's full wire bytes.
    pub bytes: Vec<u8>,
}

/// One parity segment pulled off the stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedParity {
    /// Parity group this shard protects.
    pub group: usize,
    /// Parity index within the group.
    pub pindex: usize,
    /// The GF(256) shard bytes (payload only).
    pub shard: Vec<u8>,
}

/// One classified region of the streamed frame body.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StreamItem {
    /// A CRC-valid data segment.
    Data(OwnedSegment),
    /// A CRC-valid v3 parity segment.
    Parity(OwnedParity),
    /// A byte range that failed to parse and was resynchronised past.
    Damaged {
        /// Absolute byte range of the damage in the stream.
        byte_range: Range<usize>,
        /// What failed.
        reason: DamageReason,
        /// The damaged segment header's claimed source trits, when the
        /// header was readable (untrusted).
        claimed_source_trits: Option<usize>,
    },
}

/// Reader state: before, inside and after the frame body.
enum State {
    Header,
    Body,
    Done,
}

/// Incremental, bounded-memory `9CSF` frame reader (see module docs).
pub struct FrameReader<R> {
    inner: R,
    limits: DecodeLimits,
    timeout: Option<Duration>,
    /// Window of not-yet-consumed stream bytes.
    buf: Vec<u8>,
    /// Absolute stream offset of `buf[0]`.
    pos: usize,
    /// The underlying reader reported end-of-input.
    eof: bool,
    /// High-water mark of `buf.len()`, for bounded-memory assertions.
    peak: usize,
    /// Items yielded so far (also the next walk index).
    items: usize,
    /// Parsed file header, cached so [`FrameReader::header`] stays
    /// answerable after the stream has been fully consumed.
    head: Option<StreamHeader>,
    state: State,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner` with [`DecodeLimits::default`] and no timeout.
    pub fn new(inner: R) -> Self {
        Self::with_limits(inner, DecodeLimits::default())
    }

    /// Wraps `inner` with caller-chosen limits.
    pub fn with_limits(inner: R, limits: DecodeLimits) -> Self {
        FrameReader {
            inner,
            limits,
            timeout: None,
            buf: Vec::new(),
            pos: 0,
            eof: false,
            peak: 0,
            items: 0,
            head: None,
            state: State::Header,
        }
    }

    /// Bounds how long any single underlying `read` may take. When a
    /// read's wall-clock exceeds the budget (including retry loops on
    /// [`std::io::ErrorKind::WouldBlock`]), the stream fails with
    /// [`ReadError::TimedOut`]. Best-effort: a blocking `read` that
    /// never returns cannot be interrupted from safe code — the check
    /// fires as soon as it does return.
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }

    /// The limits bounding this reader's buffering.
    #[must_use]
    pub fn limits(&self) -> &DecodeLimits {
        &self.limits
    }

    /// Absolute stream offset of the next unconsumed byte.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// High-water mark of the internal window, in bytes — never exceeds
    /// [`DecodeLimits::max_shard_bytes`] + one segment header + one read
    /// chunk.
    #[must_use]
    pub fn peak_buffered(&self) -> usize {
        self.peak
    }

    /// Ceiling the internal window is allowed to reach.
    fn window_cap(&self) -> usize {
        self.limits
            .max_shard_bytes()
            .saturating_add(SEGMENT_HEADER_BYTES)
            .saturating_add(READ_CHUNK)
            .max(HEADER_BYTES_V3)
    }

    /// Reads until the window holds at least `target` bytes or the
    /// input ends. `target` callers keep within [`window_cap`](Self::window_cap).
    fn fill(&mut self, target: usize) -> Result<(), ReadError> {
        let mut chunk = [0u8; READ_CHUNK];
        while self.buf.len() < target && !self.eof {
            let want = READ_CHUNK.min(target.saturating_sub(self.buf.len()).max(512));
            let started = Instant::now();
            loop {
                match self.inner.read(&mut chunk[..want]) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.buf.extend_from_slice(&chunk[..n]);
                        self.peak = self.peak.max(self.buf.len());
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if let Some(limit) = self.timeout {
                            if started.elapsed() > limit {
                                return Err(ReadError::TimedOut { limit });
                            }
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(e) => return Err(ReadError::Io(e)),
                }
                if let Some(limit) = self.timeout {
                    if started.elapsed() > limit {
                        return Err(ReadError::TimedOut { limit });
                    }
                }
            }
            if let Some(limit) = self.timeout {
                if started.elapsed() > limit {
                    return Err(ReadError::TimedOut { limit });
                }
            }
        }
        Ok(())
    }

    /// Drops `n` consumed bytes off the front of the window.
    fn consume(&mut self, n: usize) {
        self.buf.drain(..n.min(self.buf.len()));
        self.pos += n;
    }

    /// Reads and validates the file header, if not done yet.
    ///
    /// # Errors
    ///
    /// File-level problems are fatal: I/O errors, a stalled read, bad
    /// magic/version/header-CRC, or header claims beyond the limits.
    pub fn header(&mut self) -> Result<StreamHeader, ReadError> {
        if let Some(head) = self.head {
            return Ok(head);
        }
        if matches!(self.state, State::Done) {
            return Err(ReadError::Frame(FrameError::Truncated { offset: self.pos }));
        }
        self.fill(HEADER_BYTES)?;
        // v3 headers are two bytes longer; sniff the version byte.
        if self.buf.get(4) == Some(&VERSION_V3) {
            self.fill(HEADER_BYTES_V3)?;
        }
        if self.eof && self.buf.len() < HEADER_BYTES {
            // Short input: a magic prefix (or nothing at all) is a torn
            // header; anything else simply is not a frame.
            let n = self.buf.len().min(MAGIC.len());
            let err = if self.buf[..n] == MAGIC[..n] {
                FrameError::Truncated {
                    offset: self.pos + self.buf.len(),
                }
            } else {
                FrameError::BadMagic
            };
            return Err(ReadError::Frame(err));
        }
        let head = frame::parse_file_header(&self.buf, &self.limits)?;
        let info = StreamHeader {
            table_lengths: head.table_lengths,
            segments: head.claimed_segments,
            parity_segments: head.parity_segments(),
            source_len: head.source_len,
            version: head.version,
            parity_g: head.parity_g,
            parity_r: head.parity_r,
        };
        self.consume(head.header_bytes);
        self.head = Some(info);
        self.state = State::Body;
        Ok(info)
    }

    /// Pulls the next classified item off the stream, or `None` at a
    /// clean end of input.
    ///
    /// # Errors
    ///
    /// I/O failures, a stalled read, file-level header problems, an
    /// exhausted [`DecodeLimits::max_resync_probes`] budget, or more
    /// scanned items than [`DecodeLimits::max_segments`] allows.
    /// Segment-level damage is yielded as [`StreamItem::Damaged`], not
    /// an error.
    pub fn next_item(&mut self) -> Result<Option<StreamItem>, ReadError> {
        let head = match self.state {
            State::Done => return Ok(None),
            _ => self.header()?,
        };
        // Need at least one segment header to go on; a shorter non-empty
        // tail is damage.
        self.fill(SEGMENT_HEADER_BYTES)?;
        if self.buf.is_empty() && self.eof {
            self.state = State::Done;
            return Ok(None);
        }
        // Adversarial streams must not yield unboundedly many items.
        let scan_cap = self
            .limits
            .max_segments
            .saturating_add(head.parity_segments.min(self.limits.max_segments))
            .saturating_add(1);
        if self.items >= scan_cap {
            return Err(ReadError::Frame(FrameError::LimitExceeded {
                what: "scanned segment count",
                requested: self.items + 1,
                limit: scan_cap,
            }));
        }
        let index = self.items;
        let item = self.classify(&head, index)?;
        if let StreamItem::Damaged {
            byte_range,
            claimed_source_trits,
            ..
        } = &item
        {
            // Flight-recorder breadcrumbs: the damaged byte range (as a
            // resync hop) and the untrusted header claim, keyed by the
            // walk index of the damaged item.
            let seg = u32::try_from(index).unwrap_or(u32::MAX);
            ninec_obs::trace_instant(
                "crc_verdict",
                seg,
                ninec_obs::RungKind::None,
                ninec_obs::TracePayload::Crc {
                    ok: false,
                    claimed_trits: u32::try_from(claimed_source_trits.unwrap_or(0))
                        .unwrap_or(u32::MAX),
                },
            );
            ninec_obs::trace_instant(
                "resync",
                seg,
                ninec_obs::RungKind::None,
                ninec_obs::TracePayload::Resync {
                    from: u32::try_from(byte_range.start).unwrap_or(u32::MAX),
                    to: u32::try_from(byte_range.end).unwrap_or(u32::MAX),
                },
            );
        }
        self.items += 1;
        Ok(Some(item))
    }

    /// Classifies the bytes at the window start as one item, consuming
    /// them (resynchronising first if they are damaged).
    fn classify(&mut self, head: &StreamHeader, index: usize) -> Result<StreamItem, ReadError> {
        let v3 = head.version == VERSION_V3;
        if self.buf.len() < SEGMENT_HEADER_BYTES {
            // EOF inside a header: everything left is torn tail.
            let range = self.pos..self.pos + self.buf.len();
            let n = self.buf.len();
            self.consume(n);
            self.state = State::Done;
            return Ok(StreamItem::Damaged {
                byte_range: range,
                reason: DamageReason::Truncated,
                claimed_source_trits: None,
            });
        }
        let is_parity = v3 && self.buf.get(..2) == Some(&PARITY_MARKER.to_le_bytes());
        // Both header layouts carry their payload size claim at +8.
        let claimed =
            u32::from_le_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]) as usize;
        let claimed_bytes = if is_parity {
            claimed
        } else {
            frame::trit_alloc_bytes(claimed)
        };
        let claimed_trits = (!is_parity).then(|| {
            u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]) as usize
        });
        if claimed_bytes > self.limits.max_shard_bytes() {
            // A bomb claim never buffers: resynchronise instead.
            return self.resync(DamageReason::LimitExceeded("segment size claim"), None, v3);
        }
        let total = SEGMENT_HEADER_BYTES + claimed_bytes;
        self.fill(total)?;
        if self.buf.len() < total && self.eof {
            // Torn tail: could still be a valid *shorter* segment whose
            // size claim is itself corrupt — probe within what we have.
            return self.resync(DamageReason::Truncated, claimed_trits, v3);
        }
        if is_parity {
            match frame::parity_at(&self.buf, 0, index, &self.limits) {
                Ok((par, next)) => {
                    let item = StreamItem::Parity(OwnedParity {
                        group: par.group,
                        pindex: par.pindex,
                        shard: par.payload.to_vec(),
                    });
                    self.consume(next);
                    Ok(item)
                }
                Err(e) => self.resync(damage_reason(&e), Some(0), v3),
            }
        } else {
            match frame::segment_at(&self.buf, 0, index, &self.limits) {
                Ok((seg, next)) => {
                    let item = StreamItem::Data(OwnedSegment {
                        index,
                        k: seg.k,
                        source_trits: seg.source_trits,
                        payload_trits: seg.payload_trits,
                        bytes: self.buf[..next].to_vec(),
                    });
                    self.consume(next);
                    Ok(item)
                }
                Err(e) => self.resync(damage_reason(&e), claimed_trits, v3),
            }
        }
    }

    /// Scans forward for the next parseable segment, consuming the
    /// damaged range and returning its [`StreamItem::Damaged`] entry.
    /// The window slides as needed, so memory stays bounded; probe count
    /// is capped by [`DecodeLimits::max_resync_probes`].
    fn resync(
        &mut self,
        reason: DamageReason,
        claimed_source_trits: Option<usize>,
        v3: bool,
    ) -> Result<StreamItem, ReadError> {
        let damage_start = self.pos;
        let mut probes = 0usize;
        // Relative probe position within the current window.
        let mut p = 1usize;
        loop {
            // Ensure a candidate header at `p` is in the window (or EOF).
            self.fill(p + SEGMENT_HEADER_BYTES)?;
            if p + SEGMENT_HEADER_BYTES > self.buf.len() {
                // No positions left: the rest of the input is the damage.
                let n = self.buf.len();
                self.consume(n);
                self.state = State::Done;
                return Ok(StreamItem::Damaged {
                    byte_range: damage_start..self.pos,
                    reason,
                    claimed_source_trits,
                });
            }
            if probes >= self.limits.max_resync_probes {
                return Err(ReadError::Frame(FrameError::LimitExceeded {
                    what: "resync probes",
                    requested: probes + 1,
                    limit: self.limits.max_resync_probes,
                }));
            }
            probes += 1;
            // Candidate size claim (offset +8 in both header layouts).
            let is_parity = v3 && self.buf.get(p..p + 2) == Some(&PARITY_MARKER.to_le_bytes());
            let claim = u32::from_le_bytes([
                self.buf[p + 8],
                self.buf[p + 9],
                self.buf[p + 10],
                self.buf[p + 11],
            ]) as usize;
            let claim_bytes = if is_parity {
                claim
            } else {
                frame::trit_alloc_bytes(claim)
            };
            if claim_bytes > self.limits.max_shard_bytes() {
                p += 1; // bomb claim: failed probe, nothing buffered
                continue;
            }
            let total = SEGMENT_HEADER_BYTES + claim_bytes;
            if p + total > self.window_cap() {
                // Slide the window so the candidate fits: the probed
                // prefix is definitively damage.
                self.consume(p);
                p = 0;
                // The slide freed room; re-run this position (the probe
                // was already counted).
                probes -= 1;
                continue;
            }
            self.fill(p + total)?;
            let parses = if is_parity {
                frame::parity_at(&self.buf, p, 0, &self.limits).is_ok()
            } else {
                frame::segment_at(&self.buf, p, 0, &self.limits).is_ok()
            };
            if parses {
                self.consume(p);
                return Ok(StreamItem::Damaged {
                    byte_range: damage_start..self.pos,
                    reason,
                    claimed_source_trits,
                });
            }
            p += 1;
        }
    }
}

/// Maps a segment-level parse error onto the damage taxonomy.
fn damage_reason(e: &FrameError) -> DamageReason {
    match e {
        FrameError::BadCrc { .. } => DamageReason::BadCrc,
        FrameError::Truncated { .. } => DamageReason::Truncated,
        FrameError::Malformed { what, .. } => DamageReason::Malformed(what),
        FrameError::LimitExceeded { what, .. } => DamageReason::LimitExceeded(what),
        _ => DamageReason::Malformed("unparseable segment"),
    }
}

impl Engine {
    /// Decodes a `9CSF` frame **strictly** from any [`io::Read`] source
    /// without materializing the frame: segments stream through a
    /// bounded window ([`DecodeLimits::max_shard_bytes`] + one chunk)
    /// and decode in thread-count batches on the pool. The output is
    /// byte-identical to [`decode_frame`](Engine::decode_frame) on the
    /// same bytes, at every thread count.
    ///
    /// Parity segments of v3 frames are validated for order and skipped
    /// — streaming cannot repair (parity groups interleave across the
    /// whole frame); buffer the bytes and use
    /// [`decode_frame_repair`](Engine::decode_frame_repair) for the
    /// ladder.
    ///
    /// # Errors
    ///
    /// [`ReadError::Io`] / [`ReadError::TimedOut`] from the source;
    /// [`ReadError::Frame`] for structural damage (this entry is
    /// fail-closed, like the in-memory strict decode);
    /// [`ReadError::Decode`] when a CRC-valid segment fails 9C decoding
    /// or a worker panics.
    pub fn decode_stream<R: Read>(&self, inner: R) -> Result<TritVec, ReadError> {
        let mut fr = FrameReader::with_limits(inner, *self.limits());
        self.decode_stream_reader(&mut fr)
    }

    /// [`decode_stream`](Engine::decode_stream) over a caller-configured
    /// [`FrameReader`] (custom limits or a read timeout).
    pub fn decode_stream_reader<R: Read>(
        &self,
        fr: &mut FrameReader<R>,
    ) -> Result<TritVec, ReadError> {
        let _span = ninec_obs::span("engine_decode_stream");
        let head = fr.header()?;
        let table = CodeTable::from_lengths(&head.table_lengths)
            .map_err(|_| FrameError::BadTable)
            .map_err(ReadError::Frame)?;
        let limits = *fr.limits();
        let mut out = TritVec::with_capacity(head.source_len.min(1 << 24));
        // Budget bookkeeping shared with the plan builder: the same
        // charge order and the same typed error as the in-memory ladder.
        let mut budget = crate::engine::plan::StrictState::new(head.source_len, &limits);
        let mut covered = 0usize;
        let mut data_seen = 0usize;
        let mut parity_seen = 0usize;
        let mut batch: Vec<OwnedSegment> = Vec::new();
        let batch_cap = self.threads().max(1);
        loop {
            let item = fr.next_item()?;
            match item {
                Some(StreamItem::Data(seg)) => {
                    if data_seen >= head.segments {
                        return Err(ReadError::Frame(FrameError::Malformed {
                            segment: seg.index,
                            what: "trailing bytes after the last segment",
                        }));
                    }
                    if parity_seen > 0 {
                        return Err(ReadError::Frame(FrameError::Malformed {
                            segment: seg.index,
                            what: "data segment after a parity segment",
                        }));
                    }
                    budget
                        .charge_data(seg.source_trits, seg.payload_trits)
                        .map_err(ReadError::Frame)?;
                    covered = covered.saturating_add(seg.source_trits);
                    data_seen += 1;
                    batch.push(seg);
                    if batch.len() >= batch_cap {
                        self.drain_batch(&mut batch, &table, &mut out)?;
                    }
                }
                Some(StreamItem::Parity(par)) => {
                    let r = head.parity_r as usize;
                    let groups = frame::group_count(head.segments, head.parity_g);
                    let expect = (parity_seen / r.max(1), parity_seen % r.max(1));
                    if parity_seen >= head.parity_segments
                        || r == 0
                        || (par.group, par.pindex) != expect
                        || par.group >= groups
                    {
                        return Err(ReadError::Frame(FrameError::Malformed {
                            segment: head.segments + parity_seen,
                            what: "parity segment out of (group, pindex) order",
                        }));
                    }
                    parity_seen += 1;
                }
                Some(StreamItem::Damaged {
                    byte_range, reason, ..
                }) => {
                    // Strict mode: damage is fatal, with a typed error
                    // mirroring the in-memory parse.
                    return Err(ReadError::Frame(match reason {
                        DamageReason::Truncated => FrameError::Truncated {
                            offset: byte_range.end,
                        },
                        DamageReason::BadCrc => FrameError::BadCrc {
                            segment: data_seen + parity_seen,
                        },
                        DamageReason::Malformed(what) => FrameError::Malformed {
                            segment: data_seen + parity_seen,
                            what,
                        },
                        DamageReason::LimitExceeded(what) => FrameError::LimitExceeded {
                            what,
                            requested: 0,
                            limit: 0,
                        },
                        _ => FrameError::Malformed {
                            segment: data_seen + parity_seen,
                            what: "damaged segment in strict streaming decode",
                        },
                    }));
                }
                None => break,
            }
        }
        self.drain_batch(&mut batch, &table, &mut out)?;
        if data_seen != head.segments || parity_seen != head.parity_segments {
            return Err(ReadError::Frame(FrameError::Truncated {
                offset: fr.position(),
            }));
        }
        if covered != head.source_len {
            return Err(ReadError::Frame(FrameError::Malformed {
                segment: head.segments,
                what: "segment source lengths do not sum to the header total",
            }));
        }
        Ok(out)
    }

    /// Decodes one batch of streamed segments on the pool (panic
    /// isolation included) and appends them, in order, to `out`.
    fn drain_batch(
        &self,
        batch: &mut Vec<OwnedSegment>,
        table: &CodeTable,
        out: &mut TritVec,
    ) -> Result<(), ReadError> {
        if batch.is_empty() {
            return Ok(());
        }
        let results = pool::try_map_indexed(self.threads(), batch.len(), |i| {
            let owned = &batch[i];
            // The segment was CRC-verified once, when `classify` pulled
            // it off the stream — rebuild the borrowed view from the
            // owned fields instead of re-parsing (and re-CRC'ing) it.
            let payload_end = SEGMENT_HEADER_BYTES + owned.payload_trits.div_ceil(4);
            let seg = frame::ParsedSegment {
                k: owned.k,
                source_trits: owned.source_trits,
                payload_trits: owned.payload_trits,
                payload: owned
                    .bytes
                    .get(SEGMENT_HEADER_BYTES..payload_end)
                    .unwrap_or(&[]),
            };
            self.decode_one_segment(&seg, owned.index, table)
        });
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(Ok(trits)) => out.extend_from_tritvec(&trits),
                Ok(Err(e)) => return Err(ReadError::Decode(e)),
                Err(_panic) => {
                    return Err(ReadError::Decode(DecodeError::WorkerPanicked {
                        segment: batch[i].index,
                    }))
                }
            }
        }
        batch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    fn sample_stream() -> TritVec {
        tv(&"0X0X01X001X0101X111111110000X1111X0110XX".repeat(30))
    }

    /// A reader that hands out at most `chunk` bytes per `read` call —
    /// exercising every partial-header/partial-payload path.
    struct Dribble<R> {
        inner: R,
        chunk: usize,
    }

    impl<R: Read> Read for Dribble<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).max(1);
            self.inner.read(&mut buf[..n])
        }
    }

    #[test]
    fn streamed_decode_is_byte_identical_to_in_memory() {
        let stream = sample_stream();
        for (g, r) in [(0u8, 0u8), (4, 1)] {
            let engine = Engine::builder()
                .threads(2)
                .segment_bits(64)
                .parity(g, r)
                .build();
            let frame_bytes = engine.encode_frame(8, &stream).expect("valid K");
            let in_memory = engine.decode_frame(&frame_bytes).expect("decodes");
            for threads in [1usize, 8] {
                let e = Engine::builder().threads(threads).segment_bits(64).build();
                for chunk in [1usize, 7, 64, 4096] {
                    let src = Dribble {
                        inner: Cursor::new(frame_bytes.clone()),
                        chunk,
                    };
                    let out = e.decode_stream(src).expect("streams");
                    assert_eq!(
                        out, in_memory,
                        "g={g} r={r} threads={threads} chunk={chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn reader_yields_classified_items_in_order() {
        let stream = sample_stream();
        let engine = Engine::builder()
            .threads(1)
            .segment_bits(64)
            .parity(2, 1)
            .build();
        let frame_bytes = engine.encode_frame(8, &stream).expect("valid K");
        let parsed = frame::parse(&frame_bytes).expect("parses");
        let mut fr = FrameReader::new(Cursor::new(frame_bytes.clone()));
        let head = fr.header().expect("header reads");
        assert_eq!(head.segments, parsed.segments.len());
        assert_eq!(head.parity_segments, parsed.parity.len());
        assert_eq!((head.parity_g, head.parity_r), (2, 1));
        let mut data = 0;
        let mut parity = 0;
        while let Some(item) = fr.next_item().expect("clean stream") {
            match item {
                StreamItem::Data(seg) => {
                    assert_eq!(seg.index, data);
                    // Owned bytes re-parse and re-CRC in isolation.
                    assert!(frame::segment_at(&seg.bytes, 0, seg.index, fr.limits()).is_ok());
                    data += 1;
                }
                StreamItem::Parity(par) => {
                    assert_eq!(par.group, parity); // r = 1: one shard per group
                    assert_eq!(par.pindex, 0);
                    assert_eq!(par.shard, parsed.parity[parity].payload);
                    parity += 1;
                }
                StreamItem::Damaged { .. } => panic!("clean frame has no damage"),
            }
        }
        assert_eq!(data, head.segments);
        assert_eq!(parity, head.parity_segments);
        assert_eq!(fr.position(), frame_bytes.len());
    }

    #[test]
    fn window_stays_bounded_by_the_limits() {
        let stream = sample_stream();
        let engine = Engine::builder().threads(1).segment_bits(64).build();
        let frame_bytes = engine.encode_frame(8, &stream).expect("valid K");
        // Tight-but-sufficient limits: segments are 64 source trits, and
        // 9C payloads can expand past the source length (case codes), so
        // leave expansion headroom while staying far below the default.
        let limits = DecodeLimits {
            max_segment_trits: 512,
            ..DecodeLimits::default()
        };
        let mut fr = FrameReader::with_limits(Cursor::new(frame_bytes.clone()), limits);
        let out = Engine::builder()
            .threads(1)
            .limits(limits)
            .build()
            .decode_stream_reader(&mut fr)
            .expect("streams under tight limits");
        assert_eq!(out, engine.decode_frame(&frame_bytes).expect("decodes"));
        assert!(
            fr.peak_buffered() <= limits.max_shard_bytes() + SEGMENT_HEADER_BYTES + READ_CHUNK,
            "peak {} exceeds the window cap",
            fr.peak_buffered()
        );
    }

    #[test]
    fn corrupt_segment_streams_as_damage_and_fails_strict() {
        let stream = sample_stream();
        let engine = Engine::builder().threads(1).segment_bits(64).build();
        let mut bad = engine.encode_frame(8, &stream).expect("valid K");
        bad[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0x55;

        // Strict streaming decode fails closed, like the in-memory one.
        let err = engine
            .decode_stream(Cursor::new(bad.clone()))
            .expect_err("strict fails");
        assert!(matches!(err, ReadError::Frame(_)), "{err:?}");

        // The raw reader classifies: damage, then intact segments.
        let mut fr = FrameReader::new(Cursor::new(bad.clone()));
        let first = fr.next_item().expect("reads").expect("has items");
        match first {
            StreamItem::Damaged {
                byte_range,
                reason,
                claimed_source_trits,
            } => {
                assert_eq!(byte_range.start, HEADER_BYTES);
                assert_eq!(reason, DamageReason::BadCrc);
                assert_eq!(claimed_source_trits, Some(64));
            }
            other => panic!("expected damage first, got {other:?}"),
        }
        let mut rest = 0usize;
        while let Some(item) = fr.next_item().expect("reads") {
            assert!(matches!(item, StreamItem::Data(_)));
            rest += 1;
        }
        assert_eq!(rest, fr.header().expect("header").segments - 1);
    }

    #[test]
    fn truncated_stream_ends_in_a_torn_tail_item() {
        let stream = sample_stream();
        let engine = Engine::builder().threads(1).segment_bits(64).build();
        let frame_bytes = engine.encode_frame(8, &stream).expect("valid K");
        let cut = frame_bytes.len() - 3;
        let mut fr = FrameReader::new(Cursor::new(frame_bytes[..cut].to_vec()));
        let mut last = None;
        while let Some(item) = fr.next_item().expect("reads") {
            last = Some(item);
        }
        match last.expect("items were yielded") {
            StreamItem::Damaged {
                reason, byte_range, ..
            } => {
                assert_eq!(reason, DamageReason::Truncated);
                assert_eq!(byte_range.end, cut);
            }
            other => panic!("expected torn tail, got {other:?}"),
        }
        // Strict decode: typed truncation error.
        assert!(matches!(
            engine.decode_stream(Cursor::new(frame_bytes[..cut].to_vec())),
            Err(ReadError::Frame(FrameError::Truncated { .. }))
        ));
    }

    #[test]
    fn resync_probe_cap_applies_to_streams() {
        let stream = sample_stream();
        let engine = Engine::builder().threads(1).segment_bits(64).build();
        let mut bad = engine.encode_frame(8, &stream).expect("valid K");
        bad[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0x55;
        let tight = DecodeLimits {
            max_resync_probes: 1,
            ..DecodeLimits::default()
        };
        let mut fr = FrameReader::with_limits(Cursor::new(bad), tight);
        let err = fr.next_item().expect_err("probe cap fires");
        assert!(matches!(
            err,
            ReadError::Frame(FrameError::LimitExceeded {
                what: "resync probes",
                ..
            })
        ));
    }

    #[test]
    fn not_a_frame_is_a_typed_header_error() {
        let mut fr = FrameReader::new(Cursor::new(b"this is not a frame at all".to_vec()));
        assert!(matches!(
            fr.header(),
            Err(ReadError::Frame(FrameError::BadMagic))
        ));
        let empty: &[u8] = &[];
        let mut fr = FrameReader::new(empty);
        assert!(matches!(
            fr.header(),
            Err(ReadError::Frame(FrameError::Truncated { .. }))
        ));
    }

    #[test]
    fn stalled_read_times_out() {
        /// Never yields data, never ends: a wedged pipe.
        struct Stalled;
        impl Read for Stalled {
            fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
                std::thread::sleep(Duration::from_millis(5));
                Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let mut fr = FrameReader::new(Stalled).timeout(Duration::from_millis(20));
        let err = fr.header().expect_err("stall must time out");
        assert!(matches!(err, ReadError::TimedOut { .. }), "{err:?}");
    }

    #[test]
    fn trailing_garbage_fails_strict_streaming() {
        let stream = sample_stream();
        let engine = Engine::builder().threads(1).segment_bits(64).build();
        let mut bytes = engine.encode_frame(8, &stream).expect("valid K");
        // Append a whole duplicate of the last segment: parseable, but
        // beyond the claimed count.
        let parsed = frame::parse(&bytes).expect("parses");
        let last_len =
            SEGMENT_HEADER_BYTES + parsed.segments.last().expect("nonempty").payload.len();
        let tail = bytes[bytes.len() - last_len..].to_vec();
        bytes.extend_from_slice(&tail);
        let err = engine
            .decode_stream(Cursor::new(bytes))
            .expect_err("trailing data fails strict");
        assert!(
            matches!(
                err,
                ReadError::Frame(FrameError::Malformed {
                    what: "trailing bytes after the last segment",
                    ..
                })
            ),
            "{err:?}"
        );
    }

    #[test]
    fn errors_display_and_chain() {
        let io = ReadError::Io(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "x"));
        let frame = ReadError::Frame(FrameError::BadMagic);
        let decode = ReadError::Decode(DecodeError::MissingParameter { what: "k" });
        let timeout = ReadError::TimedOut {
            limit: Duration::from_secs(1),
        };
        for e in [&io, &frame, &decode, &timeout] {
            assert!(!e.to_string().is_empty());
        }
        use std::error::Error as _;
        assert!(io.source().is_some());
        assert!(timeout.source().is_none());
    }
}

//! The `9CSF` segment-frame container format.
//!
//! A frame makes a 9C stream *splittable*: variable-length codewords have
//! no internal sync points, so parallel decode needs out-of-band segment
//! boundaries. The frame records them self-describingly — each segment
//! carries its own block size `K`, source trit count, encoded payload
//! length and a CRC — mirroring the paper's Fig. 4(c) parallel-decoder
//! architecture, where the encoded stream is pre-split across independent
//! FSMs.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! file header (31 bytes):
//!   magic        4  b"9CSF"
//!   version      1  = 2
//!   flags        1  = 0 (reserved)
//!   code lengths 9  codeword length of C1..C9 (rebuilds the CodeTable)
//!   segments     4  u32 segment count
//!   source_len   8  u64 total source trits across all segments
//!   header_crc   4  CRC-32 (IEEE) over the 27 bytes above
//! per segment (16-byte header + payload):
//!   k            2  u16 block size for this segment
//!   reserved     2  = 0
//!   source_trits 4  u32 source trits this segment covers
//!   payload_trits4  u32 encoded trits in the payload
//!   crc32        4  CRC-32 (IEEE) over the 12 header bytes above + payload
//!   payload      ceil(payload_trits / 4) bytes, 2 bits per trit LSB-first
//!                (00 = 0, 01 = 1, 10 = X, 11 = invalid)
//! ```
//!
//! The `u32` length fields give every segment a hard ceiling of
//! `u32::MAX` (≈4 Gi) source trits and payload trits; the writer reports
//! oversized segments as [`FrameError::SegmentTooLarge`] rather than
//! panicking, so callers that shard their own streams must keep each
//! segment under 4 Gi trits.
//!
//! Version history: v1 had no `header_crc` field (27-byte header). A
//! corrupted code-length byte could rebuild a *different* Kraft-valid
//! table and decode to silently wrong bits, so v2 covers the file header
//! with its own CRC and v1 is no longer accepted.
//!
//! Every parse error is a typed [`FrameError`] — a corrupt or truncated
//! frame can never panic the decoder. Parsing is also *allocation-safe*:
//! all header-claimed sizes are validated against the remaining input
//! bytes and the caller's [`DecodeLimits`] **before** any allocation, so
//! a decompression-bomb header (e.g. a 40-byte file claiming `u32::MAX`
//! segments) is rejected with [`FrameError::Truncated`] /
//! [`FrameError::LimitExceeded`] instead of triggering a huge
//! `with_capacity`.
//!
//! For fault *tolerance* (not just detection), [`scan_salvage`] walks a
//! frame segment-by-segment, resynchronising after damage, and classifies
//! every byte range as intact or damaged — the engine's salvage decode
//! builds on it to recover every intact segment from a corrupted frame.

use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;
use std::ops::Range;

/// The four magic bytes opening every segment frame.
pub const MAGIC: [u8; 4] = *b"9CSF";
/// Current frame format version.
pub const VERSION: u8 = 2;
/// File header size in bytes (v2: includes the trailing header CRC).
pub const HEADER_BYTES: usize = 31;
/// Per-segment header size in bytes.
pub const SEGMENT_HEADER_BYTES: usize = 16;
/// Byte count of the file header covered by `header_crc`.
const HEADER_CRC_COVERS: usize = 27;

/// Resource ceilings enforced while parsing or salvaging a frame.
///
/// Every limit is checked *before* the corresponding allocation, so a
/// hostile frame whose headers claim absurd sizes is rejected with
/// [`FrameError::LimitExceeded`] instead of exhausting memory. The
/// [`Default`] limits are generous for test-data workloads (a million
/// segments, 256 Mi trits per segment, 1 GiB of total decode
/// allocation); [`DecodeLimits::unlimited`] switches every ceiling off
/// for trusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum number of segments a frame may claim.
    pub max_segments: usize,
    /// Maximum source or payload trits any single segment may claim.
    pub max_segment_trits: usize,
    /// Approximate ceiling, in bytes, on the total memory a decode may
    /// allocate for trit buffers (output + per-segment scratch).
    pub max_total_alloc: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        Self {
            max_segments: 1 << 20,
            max_segment_trits: 1 << 28,
            max_total_alloc: 1 << 30,
        }
    }
}

impl DecodeLimits {
    /// No ceilings at all — for trusted frames (e.g. ones this process
    /// just encoded). Structural bomb checks (claimed sizes vs. the
    /// bytes actually present) still apply; they are free.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            max_segments: usize::MAX,
            max_segment_trits: usize::MAX,
            max_total_alloc: usize::MAX,
        }
    }
}

/// Bytes a [`TritVec`] of `trits` trits allocates (2 bits per trit).
fn trit_alloc_bytes(trits: usize) -> usize {
    trits.div_ceil(4)
}

/// Typed error for a malformed, corrupt or truncated segment frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The stream does not start with the `9CSF` magic.
    BadMagic,
    /// The frame version is newer than this decoder understands.
    UnsupportedVersion {
        /// The version byte found in the header.
        found: u8,
    },
    /// The byte stream ended before the promised structure was complete.
    Truncated {
        /// Byte offset at which more data was required.
        offset: usize,
    },
    /// The file header's own CRC-32 does not match its bytes — the code
    /// table and segment count are untrustworthy, so even salvage mode
    /// treats this as fatal.
    BadHeaderCrc,
    /// A segment's CRC-32 does not match its header + payload bytes.
    BadCrc {
        /// Zero-based segment index.
        segment: usize,
    },
    /// The stored code lengths violate the Kraft inequality and cannot
    /// rebuild a prefix-free table.
    BadTable,
    /// A structurally invalid segment (bad `K`, reserved bits set, an
    /// invalid `11` trit code, or lengths that disagree with the header).
    Malformed {
        /// Zero-based segment index (or the segment count for file-level
        /// inconsistencies discovered after the last segment).
        segment: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// A header-claimed size exceeds the caller's [`DecodeLimits`].
    LimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The size the frame claimed.
        requested: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// Encode-side: a segment is too large for its `u16`/`u32` header
    /// fields (4 Gi-trit per-segment ceiling; see the module docs).
    SegmentTooLarge {
        /// Which field overflowed.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a 9CSF segment frame (bad magic)"),
            FrameError::UnsupportedVersion { found } => {
                write!(f, "unsupported 9CSF frame version {found}")
            }
            FrameError::Truncated { offset } => {
                write!(f, "frame truncated at byte offset {offset}")
            }
            FrameError::BadHeaderCrc => {
                write!(f, "file header CRC mismatch (header corrupt)")
            }
            FrameError::BadCrc { segment } => {
                write!(f, "CRC mismatch in segment {segment}")
            }
            FrameError::BadTable => {
                write!(f, "stored code lengths violate the Kraft inequality")
            }
            FrameError::Malformed { segment, what } => {
                write!(f, "malformed segment {segment}: {what}")
            }
            FrameError::LimitExceeded {
                what,
                requested,
                limit,
            } => {
                write!(
                    f,
                    "decode limit exceeded: {what} {requested} > limit {limit}"
                )
            }
            FrameError::SegmentTooLarge { what, len } => {
                write!(
                    f,
                    "segment too large to frame: {what} {len} overflows its header field"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a byte range of a frame was classified as damaged during a
/// salvage scan or salvage decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DamageReason {
    /// The segment's CRC-32 did not match its bytes.
    BadCrc,
    /// The frame ended before the segment's promised bytes.
    Truncated,
    /// The segment header was structurally invalid.
    Malformed(&'static str),
    /// A header-claimed size exceeded the [`DecodeLimits`].
    LimitExceeded(&'static str),
    /// The segment passed its CRC but its payload failed 9C decoding
    /// (an adversarial or buggy writer).
    Decode(crate::decode::DecodeError),
    /// The worker decoding this segment panicked (only reachable with a
    /// fault injected via the `failpoints` feature, or a codec bug).
    WorkerPanicked,
    /// The file header's claims (segment count / source-length total)
    /// disagree with the segments actually present — e.g. spliced or
    /// duplicated segments.
    HeaderMismatch(&'static str),
}

impl fmt::Display for DamageReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DamageReason::BadCrc => write!(f, "CRC mismatch"),
            DamageReason::Truncated => write!(f, "truncated"),
            DamageReason::Malformed(what) => write!(f, "malformed: {what}"),
            DamageReason::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            DamageReason::Decode(e) => write!(f, "payload decode failed: {e}"),
            DamageReason::WorkerPanicked => write!(f, "decode worker panicked"),
            DamageReason::HeaderMismatch(what) => write!(f, "header mismatch: {what}"),
        }
    }
}

impl DamageReason {
    fn from_frame_error(e: FrameError) -> Self {
        match e {
            FrameError::BadCrc { .. } => DamageReason::BadCrc,
            FrameError::Truncated { .. } => DamageReason::Truncated,
            FrameError::Malformed { what, .. } => DamageReason::Malformed(what),
            FrameError::LimitExceeded { what, .. } => DamageReason::LimitExceeded(what),
            // Unreachable from `segment_at`, but total anyway.
            _ => DamageReason::Malformed("unparseable segment"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One parsed (CRC-verified) segment, borrowing its payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedSegment<'a> {
    /// Block size `K` for this segment.
    pub k: usize,
    /// Source trits this segment covers.
    pub source_trits: usize,
    /// Encoded trits in the payload.
    pub payload_trits: usize,
    /// The packed payload bytes (2 bits per trit).
    pub payload: &'a [u8],
}

impl ParsedSegment<'_> {
    /// Unpacks the payload into a [`TritVec`].
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if a reserved `11` trit code appears
    /// (`segment` is filled in by the caller as `usize::MAX` here; use
    /// [`unpack_payload`] for a properly attributed error).
    pub fn unpack(&self) -> Result<TritVec, FrameError> {
        unpack_payload(self, usize::MAX)
    }
}

/// A parsed (fully CRC-verified) segment frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame<'a> {
    /// Codeword lengths of C1..C9, as stored in the header.
    pub table_lengths: [u8; 9],
    /// Total source trits across all segments, as stored in the header.
    pub source_len: usize,
    /// The segments, in stream order.
    pub segments: Vec<ParsedSegment<'a>>,
}

/// Appends the file header for `segments` segments totalling `source_len`
/// source trits, encoded with a table of codeword `lengths`. The trailing
/// header CRC-32 is computed and appended automatically.
pub fn write_header(out: &mut Vec<u8>, lengths: [u8; 9], segments: u32, source_len: u64) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(0); // flags
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&segments.to_le_bytes());
    out.extend_from_slice(&source_len.to_le_bytes());
    let crc = crc32(&out[start..start + HEADER_CRC_COVERS]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Packs `payload` at 2 bits per trit, LSB-first within each byte.
#[must_use]
pub fn pack_payload(payload: &TritVec) -> Vec<u8> {
    let mut bytes = vec![0u8; payload.len().div_ceil(4)];
    for (i, t) in payload.iter().enumerate() {
        let code: u8 = match t {
            Trit::Zero => 0b00,
            Trit::One => 0b01,
            Trit::X => 0b10,
        };
        bytes[i / 4] |= code << ((i % 4) * 2);
    }
    bytes
}

/// Appends one segment (header + packed payload) to `out`.
///
/// # Errors
///
/// [`FrameError::SegmentTooLarge`] when `k` exceeds `u16::MAX` or either
/// length exceeds the `u32` header fields (the 4 Gi-trit per-segment
/// ceiling; see the module docs). On error nothing is appended.
pub fn write_segment(
    out: &mut Vec<u8>,
    k: usize,
    source_trits: usize,
    payload: &TritVec,
) -> Result<(), FrameError> {
    let k16 = match u16::try_from(k) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "block size K",
                len: k,
            })
        }
    };
    let src32 = match u32::try_from(source_trits) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "segment source trits",
                len: source_trits,
            })
        }
    };
    let pay32 = match u32::try_from(payload.len()) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "segment payload trits",
                len: payload.len(),
            })
        }
    };
    let mut header = [0u8; 12];
    header[0..2].copy_from_slice(&k16.to_le_bytes());
    // bytes 2..4 reserved, zero
    header[4..8].copy_from_slice(&src32.to_le_bytes());
    header[8..12].copy_from_slice(&pay32.to_le_bytes());
    let bytes = pack_payload(payload);
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(bytes.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    out.extend_from_slice(&header);
    out.extend_from_slice(&(!crc).to_le_bytes());
    out.extend_from_slice(&bytes);
    Ok(())
}

/// `true` if `bytes` starts with the `9CSF` magic (cheap format sniff).
#[must_use]
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Reads a little-endian `u32` at `at`, or `None` past the end.
fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads a little-endian `u64` at `at`, or `None` past the end.
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let s = bytes.get(at..at.checked_add(8)?)?;
    Some(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

/// The validated file header of a frame.
struct FileHeader {
    table_lengths: [u8; 9],
    claimed_segments: usize,
    source_len: usize,
}

/// Parses and validates the 31-byte file header (magic, version, header
/// CRC, count/source-length limits). Shared by strict parse and salvage.
fn parse_file_header(bytes: &[u8], limits: &DecodeLimits) -> Result<FileHeader, FrameError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    let version = bytes[4];
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let stored = le_u32(bytes, HEADER_CRC_COVERS).ok_or(FrameError::Truncated {
        offset: bytes.len(),
    })?;
    if crc32(&bytes[..HEADER_CRC_COVERS]) != stored {
        return Err(FrameError::BadHeaderCrc);
    }
    let mut table_lengths = [0u8; 9];
    table_lengths.copy_from_slice(&bytes[6..15]);
    let claimed_segments = le_u32(bytes, 15).ok_or(FrameError::Truncated {
        offset: bytes.len(),
    })? as usize;
    let source_len_u64 = le_u64(bytes, 19).ok_or(FrameError::Truncated {
        offset: bytes.len(),
    })?;
    let source_len = usize::try_from(source_len_u64).map_err(|_| FrameError::Malformed {
        segment: 0,
        what: "source length exceeds the address space",
    })?;
    if claimed_segments > limits.max_segments {
        return Err(FrameError::LimitExceeded {
            what: "segment count",
            requested: claimed_segments,
            limit: limits.max_segments,
        });
    }
    if trit_alloc_bytes(source_len) > limits.max_total_alloc {
        return Err(FrameError::LimitExceeded {
            what: "source-length allocation",
            requested: trit_alloc_bytes(source_len),
            limit: limits.max_total_alloc,
        });
    }
    Ok(FileHeader {
        table_lengths,
        claimed_segments,
        source_len,
    })
}

/// Parses and CRC-verifies one segment starting at byte `at`, returning
/// the segment and the offset just past its payload. Performs *no*
/// allocation: every claimed size is checked against the bytes actually
/// present and against `limits` first.
fn segment_at<'a>(
    bytes: &'a [u8],
    at: usize,
    segment: usize,
    limits: &DecodeLimits,
) -> Result<(ParsedSegment<'a>, usize), FrameError> {
    let header_end = at
        .checked_add(SEGMENT_HEADER_BYTES)
        .ok_or(FrameError::Truncated { offset: at })?;
    let header = bytes
        .get(at..header_end)
        .ok_or(FrameError::Truncated { offset: at })?;
    let k = u16::from_le_bytes([header[0], header[1]]) as usize;
    if header[2] != 0 || header[3] != 0 {
        return Err(FrameError::Malformed {
            segment,
            what: "reserved segment-header bytes are nonzero",
        });
    }
    let source_trits = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    let payload_trits = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let crc_stored = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    if k < 4 || !k.is_multiple_of(2) {
        return Err(FrameError::Malformed {
            segment,
            what: "segment block size must be even and at least 4",
        });
    }
    // Bomb check: the payload must physically fit in the remaining input
    // before anything trusts `payload_trits`. Slicing allocates nothing.
    let payload_bytes = payload_trits.div_ceil(4);
    let payload_end = header_end
        .checked_add(payload_bytes)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    let payload = bytes
        .get(header_end..payload_end)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header[..12].iter().chain(payload.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    if !crc != crc_stored {
        return Err(FrameError::BadCrc { segment });
    }
    // CRC is good, so the claims are what the writer wrote — now hold
    // them to the caller's limits and to 9C structure (each K-trit block
    // consumes at least one payload trit, so a CRC-valid header claiming
    // more output than `payload_trits * k` is an expansion bomb).
    if source_trits > limits.max_segment_trits {
        return Err(FrameError::LimitExceeded {
            what: "segment source trits",
            requested: source_trits,
            limit: limits.max_segment_trits,
        });
    }
    if payload_trits > limits.max_segment_trits {
        return Err(FrameError::LimitExceeded {
            what: "segment payload trits",
            requested: payload_trits,
            limit: limits.max_segment_trits,
        });
    }
    if source_trits > payload_trits.saturating_mul(k) {
        return Err(FrameError::Malformed {
            segment,
            what: "segment claims more source trits than its payload can encode",
        });
    }
    Ok((
        ParsedSegment {
            k,
            source_trits,
            payload_trits,
            payload,
        },
        payload_end,
    ))
}

/// Publishes frame-health counters for a failed parse/scan step.
fn publish_failure_metrics(e: &FrameError) {
    match e {
        FrameError::BadCrc { .. } | FrameError::BadHeaderCrc => {
            crate::metrics::publish_crc_failures(1);
        }
        FrameError::LimitExceeded { .. } => {
            crate::metrics::publish_limit_rejections(1);
        }
        _ => {}
    }
}

/// Parses and CRC-verifies a whole frame without unpacking any payload,
/// using the [`Default`] [`DecodeLimits`].
///
/// # Errors
///
/// Any structural problem is a typed [`FrameError`]; this function never
/// panics and never allocates more than the limits allow on hostile
/// input.
pub fn parse(bytes: &[u8]) -> Result<ParsedFrame<'_>, FrameError> {
    parse_limited(bytes, &DecodeLimits::default())
}

/// [`parse`] with caller-chosen [`DecodeLimits`].
///
/// # Errors
///
/// See [`parse`]; additionally [`FrameError::LimitExceeded`] when a
/// header-claimed size exceeds `limits`.
pub fn parse_limited<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
) -> Result<ParsedFrame<'a>, FrameError> {
    let out = parse_limited_inner(bytes, limits);
    if let Err(e) = &out {
        publish_failure_metrics(e);
    }
    out
}

fn parse_limited_inner<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
) -> Result<ParsedFrame<'a>, FrameError> {
    let head = parse_file_header(bytes, limits)?;
    let segments = head.claimed_segments;
    // Bomb check: each claimed segment needs at least a 16-byte header,
    // so `segments * 16` must fit in the remaining bytes *before* the
    // `Vec::with_capacity` below — a tiny file claiming `u32::MAX`
    // segments is rejected here without allocating.
    let body = bytes.len() - HEADER_BYTES;
    match segments.checked_mul(SEGMENT_HEADER_BYTES) {
        Some(need) if need <= body => {}
        _ => {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
            })
        }
    }
    let mut alloc_budget = trit_alloc_bytes(head.source_len);
    let mut parsed = Vec::with_capacity(segments);
    let mut at = HEADER_BYTES;
    let mut covered = 0usize;
    for segment in 0..segments {
        let (seg, next) = segment_at(bytes, at, segment, limits)?;
        alloc_budget = alloc_budget
            .saturating_add(trit_alloc_bytes(seg.source_trits))
            .saturating_add(trit_alloc_bytes(seg.payload_trits));
        if alloc_budget > limits.max_total_alloc {
            return Err(FrameError::LimitExceeded {
                what: "total decode allocation",
                requested: alloc_budget,
                limit: limits.max_total_alloc,
            });
        }
        covered = covered
            .checked_add(seg.source_trits)
            .ok_or(FrameError::Malformed {
                segment,
                what: "segment source lengths overflow",
            })?;
        parsed.push(seg);
        at = next;
    }
    if covered != head.source_len {
        return Err(FrameError::Malformed {
            segment: segments,
            what: "segment source lengths do not sum to the header total",
        });
    }
    if at != bytes.len() {
        return Err(FrameError::Malformed {
            segment: segments,
            what: "trailing bytes after the last segment",
        });
    }
    Ok(ParsedFrame {
        table_lengths: head.table_lengths,
        source_len: head.source_len,
        segments: parsed,
    })
}

/// One classified byte range from a [`scan_salvage`] walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanEntry<'a> {
    /// A CRC-valid, structurally sound segment.
    Intact {
        /// The parsed segment.
        seg: ParsedSegment<'a>,
        /// The bytes it occupies (header + payload).
        byte_range: Range<usize>,
    },
    /// A byte range that could not be parsed as a valid segment.
    Damaged {
        /// The bytes written off, up to the resynchronisation point.
        byte_range: Range<usize>,
        /// The `source_trits` field the (untrusted) header claimed, if
        /// the 16 header bytes were at least present.
        claimed_source_trits: Option<usize>,
        /// Why the range failed.
        reason: DamageReason,
    },
}

impl ScanEntry<'_> {
    /// The byte range this entry covers.
    #[must_use]
    pub fn byte_range(&self) -> Range<usize> {
        match self {
            ScanEntry::Intact { byte_range, .. } | ScanEntry::Damaged { byte_range, .. } => {
                byte_range.clone()
            }
        }
    }
}

/// The result of a fault-tolerant frame walk: every byte of the body
/// classified as part of an intact segment or a damaged range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageScan<'a> {
    /// Codeword lengths of C1..C9, as stored in the (CRC-valid) header.
    pub table_lengths: [u8; 9],
    /// Total source trits the header claims.
    pub source_len: usize,
    /// Segment count the header claims (may disagree with `entries`
    /// when segments were spliced in or out).
    pub claimed_segments: usize,
    /// The classified byte ranges, in stream order.
    pub entries: Vec<ScanEntry<'a>>,
}

impl SalvageScan<'_> {
    /// Number of intact segments found.
    #[must_use]
    pub fn intact_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, ScanEntry::Intact { .. }))
            .count()
    }
}

/// Cap on resynchronisation probe positions per damaged range, bounding
/// the scan's worst case on adversarial input.
const RESYNC_MAX_PROBES: usize = 1 << 20;

/// Finds the next offset in `(at, len)` where a CRC-valid segment parses,
/// or `len` when the rest of the frame is unrecoverable. Probing never
/// allocates (it reuses [`segment_at`]'s bomb checks) and never publishes
/// metrics — probes are expected to fail.
fn find_resync(bytes: &[u8], at: usize, limits: &DecodeLimits) -> usize {
    let len = bytes.len();
    let mut probes = 0usize;
    let mut p = at + 1;
    // A valid segment needs a 16-byte header, so stop early.
    while p + SEGMENT_HEADER_BYTES <= len && probes < RESYNC_MAX_PROBES {
        probes += 1;
        if segment_at(bytes, p, 0, limits).is_ok() {
            return p;
        }
        p += 1;
    }
    len
}

/// Walks a frame fault-tolerantly, classifying every body byte range as
/// an intact segment or damage, resynchronising on the next CRC-valid
/// segment after each damaged range.
///
/// The walk is driven by the input length, not the header's claimed
/// segment count, so corrupted counts and spliced/truncated bodies still
/// scan. The per-entry `reason` records what failed; the engine's
/// salvage decode turns damaged ranges into X-trit erasures.
///
/// # Errors
///
/// Only file-level problems are fatal: [`FrameError::BadMagic`], a
/// header shorter than [`HEADER_BYTES`],
/// [`FrameError::UnsupportedVersion`], [`FrameError::BadHeaderCrc`] (the
/// code table and totals are untrustworthy, so there is nothing sound to
/// salvage against) and [`FrameError::LimitExceeded`] for file-level
/// bomb claims. Segment-level damage is never an error — it becomes a
/// [`ScanEntry::Damaged`].
pub fn scan_salvage<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
) -> Result<SalvageScan<'a>, FrameError> {
    let head = match parse_file_header(bytes, limits) {
        Ok(h) => h,
        Err(e) => {
            publish_failure_metrics(&e);
            return Err(e);
        }
    };
    let mut entries: Vec<ScanEntry<'a>> = Vec::new();
    let mut alloc_budget = trit_alloc_bytes(head.source_len);
    let mut at = HEADER_BYTES;
    let mut index = 0usize;
    while at < bytes.len() {
        if entries.len() >= limits.max_segments {
            let e = FrameError::LimitExceeded {
                what: "scanned segment count",
                requested: entries.len() + 1,
                limit: limits.max_segments,
            };
            publish_failure_metrics(&e);
            return Err(e);
        }
        match segment_at(bytes, at, index, limits) {
            Ok((seg, next)) => {
                let add = trit_alloc_bytes(seg.source_trits)
                    .saturating_add(trit_alloc_bytes(seg.payload_trits));
                if alloc_budget.saturating_add(add) > limits.max_total_alloc {
                    // Too expensive to decode — skip it, keep scanning.
                    crate::metrics::publish_limit_rejections(1);
                    entries.push(ScanEntry::Damaged {
                        byte_range: at..next,
                        claimed_source_trits: Some(seg.source_trits),
                        reason: DamageReason::LimitExceeded("total decode allocation"),
                    });
                } else {
                    alloc_budget = alloc_budget.saturating_add(add);
                    entries.push(ScanEntry::Intact {
                        seg,
                        byte_range: at..next,
                    });
                }
                at = next;
            }
            Err(e) => {
                publish_failure_metrics(&e);
                // The header fields are untrusted but still useful as a
                // *claim* for sizing the erasure run.
                let claimed = le_u32(bytes, at + 4).map(|v| v as usize);
                let resync = find_resync(bytes, at, limits);
                entries.push(ScanEntry::Damaged {
                    byte_range: at..resync,
                    claimed_source_trits: claimed,
                    reason: DamageReason::from_frame_error(e),
                });
                at = resync;
            }
        }
        index += 1;
    }
    Ok(SalvageScan {
        table_lengths: head.table_lengths,
        source_len: head.source_len,
        claimed_segments: head.claimed_segments,
        entries,
    })
}

/// Unpacks a segment's payload, attributing errors to `segment`.
///
/// # Errors
///
/// [`FrameError::Malformed`] if a reserved `11` trit code appears. (The
/// CRC already caught random corruption; this guards against a buggy or
/// adversarial *writer*.)
pub fn unpack_payload(seg: &ParsedSegment<'_>, segment: usize) -> Result<TritVec, FrameError> {
    // `parse`/`scan_salvage` guarantee `payload` physically holds
    // `payload_trits` packed trits, so this capacity is input-bounded.
    let mut out = TritVec::with_capacity(seg.payload_trits);
    for i in 0..seg.payload_trits {
        let byte = match seg.payload.get(i / 4) {
            Some(&b) => b,
            None => {
                return Err(FrameError::Truncated {
                    offset: seg.payload.len(),
                })
            }
        };
        let code = (byte >> ((i % 4) * 2)) & 0b11;
        out.push(match code {
            0b00 => Trit::Zero,
            0b01 => Trit::One,
            0b10 => Trit::X,
            _ => {
                return Err(FrameError::Malformed {
                    segment,
                    what: "invalid trit code 11 in payload",
                })
            }
        });
    }
    // Pad bits past payload_trits in the last byte must be zero (the
    // writer zero-fills); tolerated if not — they are outside the data.
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical "123456789" check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_frame() -> Vec<u8> {
        let mut out = Vec::new();
        let payload_a = tv("0110X01");
        let payload_b = tv("111000X");
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 2, 32);
        write_segment(&mut out, 8, 16, &payload_a).expect("segment fits");
        write_segment(&mut out, 8, 16, &payload_b).expect("segment fits");
        out
    }

    #[test]
    fn roundtrip_parse() {
        let bytes = sample_frame();
        assert!(is_frame(&bytes));
        let frame = parse(&bytes).expect("well-formed frame parses");
        assert_eq!(frame.source_len, 32);
        assert_eq!(frame.segments.len(), 2);
        assert_eq!(frame.segments[0].k, 8);
        assert_eq!(frame.segments[0].source_trits, 16);
        assert_eq!(frame.segments[0].payload_trits, 7);
        let a = unpack_payload(&frame.segments[0], 0).expect("payload unpacks");
        assert_eq!(a.to_string(), "0110X01");
        let b = frame.segments[1].unpack().expect("payload unpacks");
        assert_eq!(b.to_string(), "111000X");
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_frame();
        bytes[0] ^= 0xFF;
        assert!(!is_frame(&bytes));
        assert_eq!(parse(&bytes), Err(FrameError::BadMagic));
    }

    #[test]
    fn unsupported_version_detected() {
        let mut bytes = sample_frame();
        bytes[4] = 99;
        assert_eq!(
            parse(&bytes),
            Err(FrameError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn header_corruption_fails_header_crc() {
        let mut bytes = sample_frame();
        // Flip a code-length byte: without the v2 header CRC this could
        // rebuild a different Kraft-valid table and decode silently wrong.
        bytes[6] ^= 0x01;
        assert_eq!(parse(&bytes), Err(FrameError::BadHeaderCrc));
        // Salvage treats an untrustworthy header as fatal too.
        assert_eq!(
            scan_salvage(&bytes, &DecodeLimits::default()),
            Err(FrameError::BadHeaderCrc)
        );
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut bytes = sample_frame();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(parse(&bytes), Err(FrameError::BadCrc { segment: 1 }));
    }

    #[test]
    fn header_corruption_fails_crc_or_shape() {
        let mut bytes = sample_frame();
        // Flip the first segment's K field: CRC covers it.
        bytes[HEADER_BYTES] ^= 0x02;
        let err = parse(&bytes).expect_err("corrupt K must not parse");
        assert!(
            matches!(
                err,
                FrameError::BadCrc { .. }
                    | FrameError::Malformed { .. }
                    | FrameError::Truncated { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = sample_frame();
        for cut in 0..bytes.len() {
            let err = parse(&bytes[..cut]).expect_err("truncated frame must not parse");
            if cut >= HEADER_BYTES {
                assert!(
                    matches!(err, FrameError::Truncated { .. }),
                    "cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_frame();
        bytes.push(0xAB);
        assert!(matches!(
            parse(&bytes),
            Err(FrameError::Malformed {
                what: "trailing bytes after the last segment",
                ..
            })
        ));
    }

    #[test]
    fn segment_sum_must_match_header() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 1, 99);
        write_segment(&mut out, 8, 16, &tv("01")).expect("segment fits");
        assert!(matches!(
            parse(&out),
            Err(FrameError::Malformed {
                what: "segment source lengths do not sum to the header total",
                ..
            })
        ));
    }

    #[test]
    fn oversized_segment_is_a_typed_error_not_a_panic() {
        let mut out = Vec::new();
        let before = out.len();
        let err = write_segment(&mut out, 1 << 20, 8, &tv("01")).expect_err("K overflows u16");
        assert!(matches!(
            err,
            FrameError::SegmentTooLarge {
                what: "block size K",
                ..
            }
        ));
        // Nothing was appended on the error path.
        assert_eq!(out.len(), before);
        let err =
            write_segment(&mut out, 8, usize::MAX, &tv("01")).expect_err("source overflows u32");
        assert!(matches!(
            err,
            FrameError::SegmentTooLarge {
                what: "segment source trits",
                ..
            }
        ));
        assert_eq!(out.len(), before);
    }

    /// Regression: a tiny file whose header claims `u32::MAX` segments
    /// must be rejected *before* `Vec::with_capacity(u32::MAX)`.
    #[test]
    fn segment_count_bomb_is_rejected_before_allocation() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], u32::MAX, 0);
        assert_eq!(out.len(), HEADER_BYTES);
        // Default limits: the claimed count exceeds max_segments.
        assert!(matches!(
            parse(&out),
            Err(FrameError::LimitExceeded {
                what: "segment count",
                ..
            })
        ));
        // Even unlimited: the count can't fit in the remaining bytes.
        assert!(matches!(
            parse_limited(&out, &DecodeLimits::unlimited()),
            Err(FrameError::Truncated { .. })
        ));
        // Salvage refuses the bomb claim under default limits too.
        assert!(matches!(
            scan_salvage(&out, &DecodeLimits::default()),
            Err(FrameError::LimitExceeded { .. })
        ));
    }

    /// Regression: a CRC-valid segment claiming vastly more source trits
    /// than its payload could encode must be rejected before the decoder
    /// allocates the claimed output.
    #[test]
    fn expansion_bomb_segment_is_rejected() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 1, 1 << 20);
        // Hand-build a segment header claiming 2^20 source trits from a
        // 2-trit payload at K = 8 (2 * 8 = 16 < 2^20), with a valid CRC.
        let mut header = [0u8; 12];
        header[0..2].copy_from_slice(&8u16.to_le_bytes());
        header[4..8].copy_from_slice(&(1u32 << 20).to_le_bytes());
        header[8..12].copy_from_slice(&2u32.to_le_bytes());
        let payload = [0b0001u8]; // two trits: 1, 0
        let mut seg = Vec::new();
        seg.extend_from_slice(&header);
        let crc = {
            let mut all = header.to_vec();
            all.extend_from_slice(&payload);
            crc32(&all)
        };
        seg.extend_from_slice(&crc.to_le_bytes());
        seg.extend_from_slice(&payload);
        out.extend_from_slice(&seg);
        assert!(matches!(
            parse(&out),
            Err(FrameError::Malformed {
                what: "segment claims more source trits than its payload can encode",
                ..
            })
        ));
    }

    #[test]
    fn per_segment_trit_limit_is_enforced() {
        let bytes = sample_frame();
        let tight = DecodeLimits {
            max_segment_trits: 4,
            ..DecodeLimits::default()
        };
        assert!(matches!(
            parse_limited(&bytes, &tight),
            Err(FrameError::LimitExceeded {
                what: "segment source trits",
                ..
            })
        ));
    }

    #[test]
    fn total_alloc_limit_is_enforced() {
        let bytes = sample_frame();
        let tight = DecodeLimits {
            max_total_alloc: 8, // 32 source trits need at least 8 bytes out + scratch
            ..DecodeLimits::default()
        };
        assert!(matches!(
            parse_limited(&bytes, &tight),
            Err(FrameError::LimitExceeded { .. })
        ));
        assert!(parse_limited(&bytes, &DecodeLimits::unlimited()).is_ok());
    }

    #[test]
    fn salvage_scan_on_clean_frame_is_all_intact() {
        let bytes = sample_frame();
        let scan = scan_salvage(&bytes, &DecodeLimits::default()).expect("clean frame scans");
        assert_eq!(scan.source_len, 32);
        assert_eq!(scan.claimed_segments, 2);
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.intact_count(), 2);
        // Entries tile the body exactly.
        assert_eq!(scan.entries[0].byte_range().start, HEADER_BYTES);
        assert_eq!(
            scan.entries[0].byte_range().end,
            scan.entries[1].byte_range().start
        );
        assert_eq!(scan.entries[1].byte_range().end, bytes.len());
    }

    #[test]
    fn salvage_scan_resyncs_past_a_corrupt_payload() {
        let mut bytes = sample_frame();
        // Corrupt the first segment's payload (just past its header).
        bytes[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0xFF;
        let scan = scan_salvage(&bytes, &DecodeLimits::default()).expect("scan survives");
        assert_eq!(scan.entries.len(), 2);
        assert!(matches!(
            &scan.entries[0],
            ScanEntry::Damaged {
                reason: DamageReason::BadCrc,
                claimed_source_trits: Some(16),
                ..
            }
        ));
        assert!(
            matches!(&scan.entries[1], ScanEntry::Intact { seg, .. } if seg.source_trits == 16)
        );
        // The damaged range covers exactly the first segment's bytes.
        let clean = sample_frame();
        let clean_scan = scan_salvage(&clean, &DecodeLimits::default()).expect("clean");
        assert_eq!(
            scan.entries[0].byte_range(),
            clean_scan.entries[0].byte_range()
        );
    }

    #[test]
    fn salvage_scan_handles_truncated_tail() {
        let bytes = sample_frame();
        let cut = bytes.len() - 2;
        let scan = scan_salvage(&bytes[..cut], &DecodeLimits::default()).expect("scan survives");
        assert_eq!(scan.intact_count(), 1);
        let last = scan.entries.last().expect("has entries");
        assert!(matches!(
            last,
            ScanEntry::Damaged {
                reason: DamageReason::Truncated,
                ..
            }
        ));
        assert_eq!(last.byte_range().end, cut);
    }

    #[test]
    fn errors_display() {
        for e in [
            FrameError::BadMagic,
            FrameError::UnsupportedVersion { found: 9 },
            FrameError::Truncated { offset: 3 },
            FrameError::BadHeaderCrc,
            FrameError::BadCrc { segment: 1 },
            FrameError::BadTable,
            FrameError::Malformed {
                segment: 0,
                what: "x",
            },
            FrameError::LimitExceeded {
                what: "x",
                requested: 2,
                limit: 1,
            },
            FrameError::SegmentTooLarge { what: "x", len: 5 },
        ] {
            assert!(!e.to_string().is_empty());
        }
        for r in [
            DamageReason::BadCrc,
            DamageReason::Truncated,
            DamageReason::Malformed("x"),
            DamageReason::LimitExceeded("x"),
            DamageReason::WorkerPanicked,
            DamageReason::HeaderMismatch("x"),
        ] {
            assert!(!r.to_string().is_empty());
        }
    }
}

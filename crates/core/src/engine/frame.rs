//! The `9CSF` segment-frame container format.
//!
//! A frame makes a 9C stream *splittable*: variable-length codewords have
//! no internal sync points, so parallel decode needs out-of-band segment
//! boundaries. The frame records them self-describingly — each segment
//! carries its own block size `K`, source trit count, encoded payload
//! length and a CRC — mirroring the paper's Fig. 4(c) parallel-decoder
//! architecture, where the encoded stream is pre-split across independent
//! FSMs.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! file header (27 bytes):
//!   magic        4  b"9CSF"
//!   version      1  = 1
//!   flags        1  = 0 (reserved)
//!   code lengths 9  codeword length of C1..C9 (rebuilds the CodeTable)
//!   segments     4  u32 segment count
//!   source_len   8  u64 total source trits across all segments
//! per segment (16-byte header + payload):
//!   k            2  u16 block size for this segment
//!   reserved     2  = 0
//!   source_trits 4  u32 source trits this segment covers
//!   payload_trits4  u32 encoded trits in the payload
//!   crc32        4  CRC-32 (IEEE) over the 12 header bytes above + payload
//!   payload      ceil(payload_trits / 4) bytes, 2 bits per trit LSB-first
//!                (00 = 0, 01 = 1, 10 = X, 11 = invalid)
//! ```
//!
//! Every parse error is a typed [`FrameError`] — a corrupt or truncated
//! frame can never panic the decoder.

use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;

/// The four magic bytes opening every segment frame.
pub const MAGIC: [u8; 4] = *b"9CSF";
/// Current frame format version.
pub const VERSION: u8 = 1;
/// File header size in bytes.
pub const HEADER_BYTES: usize = 27;
/// Per-segment header size in bytes.
pub const SEGMENT_HEADER_BYTES: usize = 16;

/// Typed error for a malformed, corrupt or truncated segment frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The stream does not start with the `9CSF` magic.
    BadMagic,
    /// The frame version is newer than this decoder understands.
    UnsupportedVersion {
        /// The version byte found in the header.
        found: u8,
    },
    /// The byte stream ended before the promised structure was complete.
    Truncated {
        /// Byte offset at which more data was required.
        offset: usize,
    },
    /// A segment's CRC-32 does not match its header + payload bytes.
    BadCrc {
        /// Zero-based segment index.
        segment: usize,
    },
    /// The stored code lengths violate the Kraft inequality and cannot
    /// rebuild a prefix-free table.
    BadTable,
    /// A structurally invalid segment (bad `K`, reserved bits set, an
    /// invalid `11` trit code, or lengths that disagree with the header).
    Malformed {
        /// Zero-based segment index (or the segment count for file-level
        /// inconsistencies discovered after the last segment).
        segment: usize,
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a 9CSF segment frame (bad magic)"),
            FrameError::UnsupportedVersion { found } => {
                write!(f, "unsupported 9CSF frame version {found}")
            }
            FrameError::Truncated { offset } => {
                write!(f, "frame truncated at byte offset {offset}")
            }
            FrameError::BadCrc { segment } => {
                write!(f, "CRC mismatch in segment {segment}")
            }
            FrameError::BadTable => {
                write!(f, "stored code lengths violate the Kraft inequality")
            }
            FrameError::Malformed { segment, what } => {
                write!(f, "malformed segment {segment}: {what}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One parsed (CRC-verified) segment, borrowing its payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedSegment<'a> {
    /// Block size `K` for this segment.
    pub k: usize,
    /// Source trits this segment covers.
    pub source_trits: usize,
    /// Encoded trits in the payload.
    pub payload_trits: usize,
    /// The packed payload bytes (2 bits per trit).
    pub payload: &'a [u8],
}

impl ParsedSegment<'_> {
    /// Unpacks the payload into a [`TritVec`].
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if a reserved `11` trit code appears
    /// (`segment` is filled in by the caller as `usize::MAX` here; use
    /// [`unpack_payload`] for a properly attributed error).
    pub fn unpack(&self) -> Result<TritVec, FrameError> {
        unpack_payload(self, usize::MAX)
    }
}

/// A parsed (fully CRC-verified) segment frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame<'a> {
    /// Codeword lengths of C1..C9, as stored in the header.
    pub table_lengths: [u8; 9],
    /// Total source trits across all segments, as stored in the header.
    pub source_len: usize,
    /// The segments, in stream order.
    pub segments: Vec<ParsedSegment<'a>>,
}

/// Appends the file header for `segments` segments totalling `source_len`
/// source trits, encoded with a table of codeword `lengths`.
pub fn write_header(out: &mut Vec<u8>, lengths: [u8; 9], segments: u32, source_len: u64) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(0); // flags
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&segments.to_le_bytes());
    out.extend_from_slice(&source_len.to_le_bytes());
}

/// Packs `payload` at 2 bits per trit, LSB-first within each byte.
#[must_use]
pub fn pack_payload(payload: &TritVec) -> Vec<u8> {
    let mut bytes = vec![0u8; payload.len().div_ceil(4)];
    for (i, t) in payload.iter().enumerate() {
        let code: u8 = match t {
            Trit::Zero => 0b00,
            Trit::One => 0b01,
            Trit::X => 0b10,
        };
        bytes[i / 4] |= code << ((i % 4) * 2);
    }
    bytes
}

/// Appends one segment (header + packed payload) to `out`.
///
/// # Panics
///
/// Panics if `k`, `source_trits` or the payload length overflow their
/// header fields — the engine's segmentation keeps all three in range.
pub fn write_segment(out: &mut Vec<u8>, k: usize, source_trits: usize, payload: &TritVec) {
    let k16 = u16::try_from(k).expect("segment K fits in u16");
    let src32 = u32::try_from(source_trits).expect("segment source length fits in u32");
    let pay32 = u32::try_from(payload.len()).expect("segment payload length fits in u32");
    let mut header = [0u8; 12];
    header[0..2].copy_from_slice(&k16.to_le_bytes());
    // bytes 2..4 reserved, zero
    header[4..8].copy_from_slice(&src32.to_le_bytes());
    header[8..12].copy_from_slice(&pay32.to_le_bytes());
    let bytes = pack_payload(payload);
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(bytes.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    out.extend_from_slice(&header);
    out.extend_from_slice(&(!crc).to_le_bytes());
    out.extend_from_slice(&bytes);
}

/// `true` if `bytes` starts with the `9CSF` magic (cheap format sniff).
#[must_use]
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

fn read_u32(bytes: &[u8], at: usize) -> Result<u32, FrameError> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or(FrameError::Truncated { offset: at })?;
    let arr: [u8; 4] = slice.try_into().expect("4-byte slice converts to [u8; 4]");
    Ok(u32::from_le_bytes(arr))
}

/// Parses and CRC-verifies a whole frame without unpacking any payload.
///
/// # Errors
///
/// Any structural problem is a typed [`FrameError`]; this function never
/// panics on hostile input.
pub fn parse(bytes: &[u8]) -> Result<ParsedFrame<'_>, FrameError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    let version = bytes[4];
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion { found: version });
    }
    let mut table_lengths = [0u8; 9];
    table_lengths.copy_from_slice(&bytes[6..15]);
    let segments = read_u32(bytes, 15)? as usize;
    let source_len_arr: [u8; 8] = bytes[19..27]
        .try_into()
        .expect("8-byte slice converts to [u8; 8]");
    let source_len_u64 = u64::from_le_bytes(source_len_arr);
    let source_len = usize::try_from(source_len_u64).map_err(|_| FrameError::Malformed {
        segment: 0,
        what: "source length exceeds the address space",
    })?;

    let mut parsed = Vec::with_capacity(segments);
    let mut at = HEADER_BYTES;
    let mut covered = 0usize;
    for segment in 0..segments {
        let header = bytes
            .get(at..at + SEGMENT_HEADER_BYTES)
            .ok_or(FrameError::Truncated { offset: at })?;
        let k = u16::from_le_bytes(header[0..2].try_into().expect("2-byte slice")) as usize;
        if header[2] != 0 || header[3] != 0 {
            return Err(FrameError::Malformed {
                segment,
                what: "reserved segment-header bytes are nonzero",
            });
        }
        let source_trits =
            u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice")) as usize;
        let payload_trits =
            u32::from_le_bytes(header[8..12].try_into().expect("4-byte slice")) as usize;
        let crc_stored = u32::from_le_bytes(header[12..16].try_into().expect("4-byte slice"));
        if k < 4 || !k.is_multiple_of(2) {
            return Err(FrameError::Malformed {
                segment,
                what: "segment block size must be even and at least 4",
            });
        }
        let payload_bytes = payload_trits.div_ceil(4);
        let payload_at = at + SEGMENT_HEADER_BYTES;
        let payload =
            bytes
                .get(payload_at..payload_at + payload_bytes)
                .ok_or(FrameError::Truncated {
                    offset: bytes.len(),
                })?;
        let mut crc = 0xFFFF_FFFFu32;
        for &b in header[..12].iter().chain(payload.iter()) {
            crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        if !crc != crc_stored {
            return Err(FrameError::BadCrc { segment });
        }
        covered = covered
            .checked_add(source_trits)
            .ok_or(FrameError::Malformed {
                segment,
                what: "segment source lengths overflow",
            })?;
        parsed.push(ParsedSegment {
            k,
            source_trits,
            payload_trits,
            payload,
        });
        at = payload_at + payload_bytes;
    }
    if covered != source_len {
        return Err(FrameError::Malformed {
            segment: segments,
            what: "segment source lengths do not sum to the header total",
        });
    }
    if at != bytes.len() {
        return Err(FrameError::Malformed {
            segment: segments,
            what: "trailing bytes after the last segment",
        });
    }
    Ok(ParsedFrame {
        table_lengths,
        source_len,
        segments: parsed,
    })
}

/// Unpacks a segment's payload, attributing errors to `segment`.
///
/// # Errors
///
/// [`FrameError::Malformed`] if a reserved `11` trit code appears. (The
/// CRC already caught random corruption; this guards against a buggy or
/// adversarial *writer*.)
pub fn unpack_payload(seg: &ParsedSegment<'_>, segment: usize) -> Result<TritVec, FrameError> {
    let mut out = TritVec::with_capacity(seg.payload_trits);
    for i in 0..seg.payload_trits {
        let byte = seg.payload[i / 4];
        let code = (byte >> ((i % 4) * 2)) & 0b11;
        out.push(match code {
            0b00 => Trit::Zero,
            0b01 => Trit::One,
            0b10 => Trit::X,
            _ => {
                return Err(FrameError::Malformed {
                    segment,
                    what: "invalid trit code 11 in payload",
                })
            }
        });
    }
    // Pad bits past payload_trits in the last byte must be zero (the
    // writer zero-fills); tolerated if not — they are outside the data.
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical "123456789" check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_frame() -> Vec<u8> {
        let mut out = Vec::new();
        let payload_a = tv("0110X01");
        let payload_b = tv("111000X");
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 2, 32);
        write_segment(&mut out, 8, 16, &payload_a);
        write_segment(&mut out, 8, 16, &payload_b);
        out
    }

    #[test]
    fn roundtrip_parse() {
        let bytes = sample_frame();
        assert!(is_frame(&bytes));
        let frame = parse(&bytes).expect("well-formed frame parses");
        assert_eq!(frame.source_len, 32);
        assert_eq!(frame.segments.len(), 2);
        assert_eq!(frame.segments[0].k, 8);
        assert_eq!(frame.segments[0].source_trits, 16);
        assert_eq!(frame.segments[0].payload_trits, 7);
        let a = unpack_payload(&frame.segments[0], 0).expect("payload unpacks");
        assert_eq!(a.to_string(), "0110X01");
        let b = frame.segments[1].unpack().expect("payload unpacks");
        assert_eq!(b.to_string(), "111000X");
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_frame();
        bytes[0] ^= 0xFF;
        assert!(!is_frame(&bytes));
        assert_eq!(parse(&bytes), Err(FrameError::BadMagic));
    }

    #[test]
    fn unsupported_version_detected() {
        let mut bytes = sample_frame();
        bytes[4] = 99;
        assert_eq!(
            parse(&bytes),
            Err(FrameError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut bytes = sample_frame();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(parse(&bytes), Err(FrameError::BadCrc { segment: 1 }));
    }

    #[test]
    fn header_corruption_fails_crc_or_shape() {
        let mut bytes = sample_frame();
        // Flip the first segment's K field: CRC covers it.
        bytes[HEADER_BYTES] ^= 0x02;
        let err = parse(&bytes).expect_err("corrupt K must not parse");
        assert!(
            matches!(
                err,
                FrameError::BadCrc { .. }
                    | FrameError::Malformed { .. }
                    | FrameError::Truncated { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = sample_frame();
        for cut in 0..bytes.len() {
            let err = parse(&bytes[..cut]).expect_err("truncated frame must not parse");
            if cut >= HEADER_BYTES {
                assert!(
                    matches!(err, FrameError::Truncated { .. }),
                    "cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_frame();
        bytes.push(0xAB);
        assert!(matches!(
            parse(&bytes),
            Err(FrameError::Malformed {
                what: "trailing bytes after the last segment",
                ..
            })
        ));
    }

    #[test]
    fn segment_sum_must_match_header() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 1, 99);
        write_segment(&mut out, 8, 16, &tv("01"));
        assert!(matches!(
            parse(&out),
            Err(FrameError::Malformed {
                what: "segment source lengths do not sum to the header total",
                ..
            })
        ));
    }

    #[test]
    fn errors_display() {
        for e in [
            FrameError::BadMagic,
            FrameError::UnsupportedVersion { found: 9 },
            FrameError::Truncated { offset: 3 },
            FrameError::BadCrc { segment: 1 },
            FrameError::BadTable,
            FrameError::Malformed {
                segment: 0,
                what: "x",
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! The `9CSF` segment-frame container format.
//!
//! A frame makes a 9C stream *splittable*: variable-length codewords have
//! no internal sync points, so parallel decode needs out-of-band segment
//! boundaries. The frame records them self-describingly — each segment
//! carries its own block size `K`, source trit count, encoded payload
//! length and a CRC — mirroring the paper's Fig. 4(c) parallel-decoder
//! architecture, where the encoded stream is pre-split across independent
//! FSMs.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! file header (31 bytes):
//!   magic        4  b"9CSF"
//!   version      1  = 2
//!   flags        1  = 0 (reserved)
//!   code lengths 9  codeword length of C1..C9 (rebuilds the CodeTable)
//!   segments     4  u32 segment count
//!   source_len   8  u64 total source trits across all segments
//!   header_crc   4  CRC-32 (IEEE) over the 27 bytes above
//! per segment (16-byte header + payload):
//!   k            2  u16 block size for this segment
//!   reserved     2  = 0
//!   source_trits 4  u32 source trits this segment covers
//!   payload_trits4  u32 encoded trits in the payload
//!   crc32        4  CRC-32 (IEEE) over the 12 header bytes above + payload
//!   payload      ceil(payload_trits / 4) bytes, 2 bits per trit LSB-first
//!                (00 = 0, 01 = 1, 10 = X, 11 = invalid)
//! ```
//!
//! The `u32` length fields give every segment a hard ceiling of
//! `u32::MAX` (≈4 Gi) source trits and payload trits; the writer reports
//! oversized segments as [`FrameError::SegmentTooLarge`] rather than
//! panicking, so callers that shard their own streams must keep each
//! segment under 4 Gi trits.
//!
//! ## Frame v3: parity groups
//!
//! Version 3 extends the file header by two bytes and appends
//! Reed–Solomon parity segments behind the data segments:
//!
//! ```text
//! file header (33 bytes):
//!   magic        4  b"9CSF"
//!   version      1  = 3
//!   flags        1  = 0 (reserved)
//!   code lengths 9  codeword length of C1..C9
//!   segments     4  u32 data-segment count
//!   source_len   8  u64 total source trits across all data segments
//!   parity_g     1  data segments per parity group (0 = no parity)
//!   parity_r     1  parity segments per group
//!   header_crc   4  CRC-32 (IEEE) over the 29 bytes above
//! per parity segment (16-byte header + payload):
//!   marker       2  u16 = 0xFFFF (odd, so it can never parse as a K)
//!   group        4  u32 parity-group index
//!   pindex       2  u16 parity index within the group (0..r)
//!   data_len     4  u32 payload length in bytes (the group's shard len)
//!   crc32        4  CRC-32 (IEEE) over the 12 header bytes above + payload
//!   payload      data_len bytes of GF(256) Reed–Solomon parity
//! ```
//!
//! Data segments keep their v2 byte layout exactly and come first, so a
//! v3 frame with `parity_g = 0` is byte-identical to v2 apart from the
//! header. The `segments` count covers **data** segments only; parity
//! segments follow in `(group, pindex)` order. Data segment `i` belongs
//! to group `i % G` where `G = ceil(segments / parity_g)` — interleaved
//! assignment, so a damage *burst* over adjacent segments lands in
//! different groups and stays repairable. Parity shard `pindex` of a
//! group is the group's member segments (full header + payload bytes,
//! zero-padded to the group's longest member, absent members of a short
//! group all-zero) encoded with [`crate::engine::ecc::ParityCoder`]:
//! any `≤ r` erased members per group can be rebuilt byte-exactly and
//! then re-verified against their own CRC.
//!
//! Version history: v1 had no `header_crc` field (27-byte header). A
//! corrupted code-length byte could rebuild a *different* Kraft-valid
//! table and decode to silently wrong bits, so v2 covers the file header
//! with its own CRC and v1 is no longer accepted. v3 adds the parity
//! geometry bytes and parity segments; v2 frames remain fully supported.
//!
//! Every parse error is a typed [`FrameError`] — a corrupt or truncated
//! frame can never panic the decoder. Parsing is also *allocation-safe*:
//! all header-claimed sizes are validated against the remaining input
//! bytes and the caller's [`DecodeLimits`] **before** any allocation, so
//! a decompression-bomb header (e.g. a 40-byte file claiming `u32::MAX`
//! segments) is rejected with [`FrameError::Truncated`] /
//! [`FrameError::LimitExceeded`] instead of triggering a huge
//! `with_capacity`.
//!
//! For fault *tolerance* (not just detection), [`scan_salvage`] walks a
//! frame segment-by-segment, resynchronising after damage, and classifies
//! every byte range as intact or damaged — the engine's salvage decode
//! builds on it to recover every intact segment from a corrupted frame.

use ninec_testdata::trit::{Trit, TritVec};
use std::fmt;
use std::ops::Range;

/// The four magic bytes opening every segment frame.
pub const MAGIC: [u8; 4] = *b"9CSF";
/// Current frame format version without parity (the default wire format).
pub const VERSION: u8 = 2;
/// Frame format version carrying parity groups.
pub const VERSION_V3: u8 = 3;
/// File header size in bytes (v2: includes the trailing header CRC).
pub const HEADER_BYTES: usize = 31;
/// File header size in bytes (v3: v2 plus `parity_g` / `parity_r`).
pub const HEADER_BYTES_V3: usize = 33;
/// Per-segment header size in bytes (data and parity segments alike).
pub const SEGMENT_HEADER_BYTES: usize = 16;
/// Byte count of the v2 file header covered by `header_crc`.
const HEADER_CRC_COVERS: usize = 27;
/// Byte count of the v3 file header covered by `header_crc`.
const HEADER_CRC_COVERS_V3: usize = 29;
/// The `k`-field sentinel opening a parity-segment header. Deliberately
/// odd: a data-segment parse rejects any odd `K`, so the two header
/// kinds can never be confused.
pub const PARITY_MARKER: u16 = 0xFFFF;

/// Resource ceilings enforced while parsing or salvaging a frame.
///
/// Every limit is checked *before* the corresponding allocation, so a
/// hostile frame whose headers claim absurd sizes is rejected with
/// [`FrameError::LimitExceeded`] instead of exhausting memory. The
/// [`Default`] limits are generous for test-data workloads (a million
/// segments, 256 Mi trits per segment, 1 GiB of total decode
/// allocation); [`DecodeLimits::unlimited`] switches every ceiling off
/// for trusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum number of segments a frame may claim.
    pub max_segments: usize,
    /// Maximum source or payload trits any single segment may claim.
    pub max_segment_trits: usize,
    /// Approximate ceiling, in bytes, on the total memory a decode may
    /// allocate for trit buffers (output + per-segment scratch).
    pub max_total_alloc: usize,
    /// Maximum resynchronisation probe positions a salvage scan (or the
    /// streaming reader) may try per damaged range before giving up with
    /// a typed [`FrameError::LimitExceeded`] — bounds the scan's worst
    /// case on adversarial input.
    pub max_resync_probes: usize,
    /// Maximum byte size of a `9CA` archive epoch index
    /// ([`crate::engine::archive`]) this reader will load. An archive
    /// index is parsed *before* any per-frame allocation, so a bombed
    /// index claiming absurd record counts is rejected here with
    /// [`FrameError::LimitExceeded`] instead of exhausting memory.
    pub max_index_bytes: usize,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        Self {
            max_segments: 1 << 20,
            max_segment_trits: 1 << 28,
            max_total_alloc: 1 << 30,
            max_resync_probes: 1 << 20,
            max_index_bytes: 1 << 26,
        }
    }
}

impl DecodeLimits {
    /// No ceilings at all — for trusted frames (e.g. ones this process
    /// just encoded). Structural bomb checks (claimed sizes vs. the
    /// bytes actually present) still apply; they are free.
    #[must_use]
    pub fn unlimited() -> Self {
        Self {
            max_segments: usize::MAX,
            max_segment_trits: usize::MAX,
            max_total_alloc: usize::MAX,
            max_resync_probes: usize::MAX,
            max_index_bytes: usize::MAX,
        }
    }

    /// Byte ceiling any single shard (a data segment's header + payload,
    /// or a parity segment's payload) may claim under these limits.
    /// Derived from `max_segment_trits` (2 bits per trit) plus the
    /// segment header.
    #[must_use]
    pub fn max_shard_bytes(&self) -> usize {
        trit_alloc_bytes(self.max_segment_trits).saturating_add(SEGMENT_HEADER_BYTES)
    }
}

/// Bytes a [`TritVec`] of `trits` trits allocates (2 bits per trit).
pub(crate) fn trit_alloc_bytes(trits: usize) -> usize {
    trits.div_ceil(4)
}

/// Typed error for a malformed, corrupt or truncated segment frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The stream does not start with the `9CSF` magic.
    BadMagic,
    /// The frame version is newer than this decoder understands.
    UnsupportedVersion {
        /// The version byte found in the header.
        found: u8,
    },
    /// The byte stream ended before the promised structure was complete.
    Truncated {
        /// Byte offset at which more data was required.
        offset: usize,
    },
    /// The file header's own CRC-32 does not match its bytes — the code
    /// table and segment count are untrustworthy, so even salvage mode
    /// treats this as fatal.
    BadHeaderCrc,
    /// A segment's CRC-32 does not match its header + payload bytes.
    BadCrc {
        /// Zero-based segment index.
        segment: usize,
    },
    /// The stored code lengths violate the Kraft inequality and cannot
    /// rebuild a prefix-free table.
    BadTable,
    /// A structurally invalid segment (bad `K`, reserved bits set, an
    /// invalid `11` trit code, or lengths that disagree with the header).
    Malformed {
        /// Zero-based segment index (or the segment count for file-level
        /// inconsistencies discovered after the last segment).
        segment: usize,
        /// What was wrong.
        what: &'static str,
    },
    /// A header-claimed size exceeds the caller's [`DecodeLimits`].
    LimitExceeded {
        /// Which limit was hit.
        what: &'static str,
        /// The size the frame claimed.
        requested: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// Encode-side: a segment is too large for its `u16`/`u32` header
    /// fields (4 Gi-trit per-segment ceiling; see the module docs).
    SegmentTooLarge {
        /// Which field overflowed.
        what: &'static str,
        /// The offending length.
        len: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "not a 9CSF segment frame (bad magic)"),
            FrameError::UnsupportedVersion { found } => {
                write!(f, "unsupported 9CSF frame version {found}")
            }
            FrameError::Truncated { offset } => {
                write!(f, "frame truncated at byte offset {offset}")
            }
            FrameError::BadHeaderCrc => {
                write!(f, "file header CRC mismatch (header corrupt)")
            }
            FrameError::BadCrc { segment } => {
                write!(f, "CRC mismatch in segment {segment}")
            }
            FrameError::BadTable => {
                write!(f, "stored code lengths violate the Kraft inequality")
            }
            FrameError::Malformed { segment, what } => {
                write!(f, "malformed segment {segment}: {what}")
            }
            FrameError::LimitExceeded {
                what,
                requested,
                limit,
            } => {
                write!(
                    f,
                    "decode limit exceeded: {what} {requested} > limit {limit}"
                )
            }
            FrameError::SegmentTooLarge { what, len } => {
                write!(
                    f,
                    "segment too large to frame: {what} {len} overflows its header field"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a byte range of a frame was classified as damaged during a
/// salvage scan or salvage decode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DamageReason {
    /// The segment's CRC-32 did not match its bytes.
    BadCrc,
    /// The frame ended before the segment's promised bytes.
    Truncated,
    /// The segment header was structurally invalid.
    Malformed(&'static str),
    /// A header-claimed size exceeded the [`DecodeLimits`].
    LimitExceeded(&'static str),
    /// The segment passed its CRC but its payload failed 9C decoding
    /// (an adversarial or buggy writer).
    Decode(crate::decode::DecodeError),
    /// The worker decoding this segment panicked (only reachable with a
    /// fault injected via the `failpoints` feature, or a codec bug).
    WorkerPanicked,
    /// The file header's claims (segment count / source-length total)
    /// disagree with the segments actually present — e.g. spliced or
    /// duplicated segments.
    HeaderMismatch(&'static str),
    /// The caller's [`CancelToken`](crate::CancelToken) tripped before
    /// this segment's worker ran; its trits were erased to `X` so the
    /// salvage report stays a valid (if partial) answer.
    Cancelled,
    /// Not terminal damage: the segment was damaged on the wire but
    /// **rebuilt byte-exactly** from parity group `group` using
    /// `parity_used` parity shards, then re-verified against its own
    /// CRC. Its trits in the output are real, not `X`.
    RepairedBy {
        /// Parity group that reconstructed the segment.
        group: usize,
        /// Parity shards consumed by the reconstruction.
        parity_used: usize,
    },
}

impl fmt::Display for DamageReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DamageReason::BadCrc => write!(f, "CRC mismatch"),
            DamageReason::Truncated => write!(f, "truncated"),
            DamageReason::Malformed(what) => write!(f, "malformed: {what}"),
            DamageReason::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            DamageReason::Decode(e) => write!(f, "payload decode failed: {e}"),
            DamageReason::WorkerPanicked => write!(f, "decode worker panicked"),
            DamageReason::HeaderMismatch(what) => write!(f, "header mismatch: {what}"),
            DamageReason::Cancelled => write!(f, "decode cancelled before this segment ran"),
            DamageReason::RepairedBy { group, parity_used } => {
                write!(
                    f,
                    "repaired bit-exactly by parity group {group} ({parity_used} parity shards)"
                )
            }
        }
    }
}

impl DamageReason {
    /// `true` when the damage was fully repaired (the trits are real,
    /// not erased): the [`DamageReason::RepairedBy`] case.
    #[must_use]
    pub fn is_repaired(&self) -> bool {
        matches!(self, DamageReason::RepairedBy { .. })
    }

    /// The decode-ladder rung this damage entry resolved on, for the
    /// flight recorder and per-frame audits: `Repaired` when parity
    /// rebuilt the segment byte-exactly, `Salvaged` when its trits were
    /// erased to `X`.
    #[must_use]
    pub fn rung(&self) -> ninec_obs::RungKind {
        if self.is_repaired() {
            ninec_obs::RungKind::Repaired
        } else {
            ninec_obs::RungKind::Salvaged
        }
    }
}

impl DamageReason {
    pub(crate) fn from_frame_error(e: FrameError) -> Self {
        match e {
            FrameError::BadCrc { .. } => DamageReason::BadCrc,
            FrameError::Truncated { .. } => DamageReason::Truncated,
            FrameError::Malformed { what, .. } => DamageReason::Malformed(what),
            FrameError::LimitExceeded { what, .. } => DamageReason::LimitExceeded(what),
            // Unreachable from `segment_at`, but total anyway.
            _ => DamageReason::Malformed("unparseable segment"),
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// One parsed (CRC-verified) segment, borrowing its payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedSegment<'a> {
    /// Block size `K` for this segment.
    pub k: usize,
    /// Source trits this segment covers.
    pub source_trits: usize,
    /// Encoded trits in the payload.
    pub payload_trits: usize,
    /// The packed payload bytes (2 bits per trit).
    pub payload: &'a [u8],
}

impl ParsedSegment<'_> {
    /// Unpacks the payload into a [`TritVec`].
    ///
    /// # Errors
    ///
    /// [`FrameError::Malformed`] if a reserved `11` trit code appears
    /// (`segment` is filled in by the caller as `usize::MAX` here; use
    /// [`unpack_payload`] for a properly attributed error).
    pub fn unpack(&self) -> Result<TritVec, FrameError> {
        unpack_payload(self, usize::MAX)
    }
}

/// A parsed (fully CRC-verified) segment frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedFrame<'a> {
    /// Codeword lengths of C1..C9, as stored in the header.
    pub table_lengths: [u8; 9],
    /// Total source trits across all segments, as stored in the header.
    pub source_len: usize,
    /// The data segments, in stream order.
    pub segments: Vec<ParsedSegment<'a>>,
    /// Data segments per parity group (0 = unprotected / v2 frame).
    pub parity_g: u8,
    /// Parity segments per group.
    pub parity_r: u8,
    /// The parity shards, in `(group, pindex)` order (empty for v2 or
    /// `parity_g = 0` frames).
    pub parity: Vec<ParsedParity<'a>>,
}

impl ParsedFrame<'_> {
    /// Number of parity groups covering the data segments.
    #[must_use]
    pub fn groups(&self) -> usize {
        group_count(self.segments.len(), self.parity_g)
    }
}

/// Appends the file header for `segments` segments totalling `source_len`
/// source trits, encoded with a table of codeword `lengths`. The trailing
/// header CRC-32 is computed and appended automatically.
pub fn write_header(out: &mut Vec<u8>, lengths: [u8; 9], segments: u32, source_len: u64) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(0); // flags
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&segments.to_le_bytes());
    out.extend_from_slice(&source_len.to_le_bytes());
    let crc = crc32(&out[start..start + HEADER_CRC_COVERS]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Appends a v3 file header: like [`write_header`] but with the parity
/// geometry `(parity_g, parity_r)` and the v3 version byte. `segments`
/// counts **data** segments only.
pub fn write_header_v3(
    out: &mut Vec<u8>,
    lengths: [u8; 9],
    segments: u32,
    source_len: u64,
    parity_g: u8,
    parity_r: u8,
) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(VERSION_V3);
    out.push(0); // flags
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&segments.to_le_bytes());
    out.extend_from_slice(&source_len.to_le_bytes());
    out.push(parity_g);
    out.push(parity_r);
    let crc = crc32(&out[start..start + HEADER_CRC_COVERS_V3]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// One parsed (CRC-verified) v3 parity segment, borrowing its shard
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedParity<'a> {
    /// Parity-group index this shard protects.
    pub group: usize,
    /// Parity index within the group (`0..r`).
    pub pindex: usize,
    /// The GF(256) parity shard: `data_len` bytes, covering the group's
    /// member segments zero-padded to this length.
    pub payload: &'a [u8],
}

/// Appends one v3 parity segment (header + shard bytes) to `out`.
///
/// # Errors
///
/// [`FrameError::SegmentTooLarge`] when `group`, `pindex` or the shard
/// length overflows its header field. On error nothing is appended.
pub fn write_parity_segment(
    out: &mut Vec<u8>,
    group: usize,
    pindex: usize,
    shard: &[u8],
) -> Result<(), FrameError> {
    let group32 = match u32::try_from(group) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "parity group index",
                len: group,
            })
        }
    };
    let pindex16 = match u16::try_from(pindex) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "parity index",
                len: pindex,
            })
        }
    };
    let len32 = match u32::try_from(shard.len()) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "parity shard bytes",
                len: shard.len(),
            })
        }
    };
    let mut header = [0u8; 12];
    header[0..2].copy_from_slice(&PARITY_MARKER.to_le_bytes());
    header[2..6].copy_from_slice(&group32.to_le_bytes());
    header[6..8].copy_from_slice(&pindex16.to_le_bytes());
    header[8..12].copy_from_slice(&len32.to_le_bytes());
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(shard.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    out.extend_from_slice(&header);
    out.extend_from_slice(&(!crc).to_le_bytes());
    out.extend_from_slice(shard);
    Ok(())
}

/// Parses and CRC-verifies one parity segment starting at byte `at`,
/// returning the shard and the offset just past it. Performs *no*
/// allocation; every claimed size is checked against the bytes present
/// and against `limits` first.
pub(crate) fn parity_at<'a>(
    bytes: &'a [u8],
    at: usize,
    segment: usize,
    limits: &DecodeLimits,
) -> Result<(ParsedParity<'a>, usize), FrameError> {
    let header_end = at
        .checked_add(SEGMENT_HEADER_BYTES)
        .ok_or(FrameError::Truncated { offset: at })?;
    let header = bytes
        .get(at..header_end)
        .ok_or(FrameError::Truncated { offset: at })?;
    if u16::from_le_bytes([header[0], header[1]]) != PARITY_MARKER {
        return Err(FrameError::Malformed {
            segment,
            what: "not a parity segment (missing marker)",
        });
    }
    let group = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    let pindex = u16::from_le_bytes([header[6], header[7]]) as usize;
    let data_len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let crc_stored = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    // Bomb checks before trusting `data_len`: the shard must physically
    // fit in the remaining input and respect the per-shard byte ceiling.
    if data_len > limits.max_shard_bytes() {
        return Err(FrameError::LimitExceeded {
            what: "parity shard bytes",
            requested: data_len,
            limit: limits.max_shard_bytes(),
        });
    }
    let payload_end = header_end
        .checked_add(data_len)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    let payload = bytes
        .get(header_end..payload_end)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header[..12].iter().chain(payload.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    if !crc != crc_stored {
        return Err(FrameError::BadCrc { segment });
    }
    Ok((
        ParsedParity {
            group,
            pindex,
            payload,
        },
        payload_end,
    ))
}

/// Packs `payload` at 2 bits per trit, LSB-first within each byte.
#[must_use]
pub fn pack_payload(payload: &TritVec) -> Vec<u8> {
    let mut bytes = vec![0u8; payload.len().div_ceil(4)];
    for (i, t) in payload.iter().enumerate() {
        let code: u8 = match t {
            Trit::Zero => 0b00,
            Trit::One => 0b01,
            Trit::X => 0b10,
        };
        bytes[i / 4] |= code << ((i % 4) * 2);
    }
    bytes
}

/// Appends one segment (header + packed payload) to `out`.
///
/// # Errors
///
/// [`FrameError::SegmentTooLarge`] when `k` exceeds `u16::MAX` or either
/// length exceeds the `u32` header fields (the 4 Gi-trit per-segment
/// ceiling; see the module docs). On error nothing is appended.
pub fn write_segment(
    out: &mut Vec<u8>,
    k: usize,
    source_trits: usize,
    payload: &TritVec,
) -> Result<(), FrameError> {
    let k16 = match u16::try_from(k) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "block size K",
                len: k,
            })
        }
    };
    let src32 = match u32::try_from(source_trits) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "segment source trits",
                len: source_trits,
            })
        }
    };
    let pay32 = match u32::try_from(payload.len()) {
        Ok(v) => v,
        Err(_) => {
            return Err(FrameError::SegmentTooLarge {
                what: "segment payload trits",
                len: payload.len(),
            })
        }
    };
    let mut header = [0u8; 12];
    header[0..2].copy_from_slice(&k16.to_le_bytes());
    // bytes 2..4 reserved, zero
    header[4..8].copy_from_slice(&src32.to_le_bytes());
    header[8..12].copy_from_slice(&pay32.to_le_bytes());
    let bytes = pack_payload(payload);
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(bytes.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    out.extend_from_slice(&header);
    out.extend_from_slice(&(!crc).to_le_bytes());
    out.extend_from_slice(&bytes);
    Ok(())
}

/// `true` if `bytes` starts with the `9CSF` magic (cheap format sniff).
#[must_use]
pub fn is_frame(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Reads a little-endian `u32` at `at`, or `None` past the end.
pub(crate) fn le_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let s = bytes.get(at..at.checked_add(4)?)?;
    Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
}

/// Reads a little-endian `u64` at `at`, or `None` past the end.
fn le_u64(bytes: &[u8], at: usize) -> Option<u64> {
    let s = bytes.get(at..at.checked_add(8)?)?;
    Some(u64::from_le_bytes([
        s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
    ]))
}

/// The validated file header of a frame (v2 or v3).
pub(crate) struct FileHeader {
    pub(crate) table_lengths: [u8; 9],
    pub(crate) claimed_segments: usize,
    pub(crate) source_len: usize,
    /// Frame version ([`VERSION`] or [`VERSION_V3`]).
    pub(crate) version: u8,
    /// Data segments per parity group (0 = no parity; always 0 for v2).
    pub(crate) parity_g: u8,
    /// Parity segments per group (always 0 for v2 or when `parity_g` is 0).
    pub(crate) parity_r: u8,
    /// Size of this header on the wire (body starts here).
    pub(crate) header_bytes: usize,
}

impl FileHeader {
    /// Number of parity groups covering `claimed_segments` data segments.
    pub(crate) fn groups(&self) -> usize {
        group_count(self.claimed_segments, self.parity_g)
    }

    /// Total parity segments the frame should carry.
    pub(crate) fn parity_segments(&self) -> usize {
        self.groups() * self.parity_r as usize
    }
}

/// Number of parity groups for `data_segments` data segments at group
/// size `g` (`ceil(n / g)`; 0 when either is 0).
#[must_use]
pub fn group_count(data_segments: usize, g: u8) -> usize {
    if g == 0 || data_segments == 0 {
        0
    } else {
        data_segments.div_ceil(g as usize)
    }
}

/// Parity group of data segment `index` under interleaved assignment
/// across `groups` groups (`index % groups`).
#[must_use]
pub fn group_of(index: usize, groups: usize) -> usize {
    if groups == 0 {
        0
    } else {
        index % groups
    }
}

/// Position of data segment `index` within its parity group (the shard
/// slot it occupies: `index / groups`).
#[must_use]
pub fn position_in_group(index: usize, groups: usize) -> usize {
    index.checked_div(groups).unwrap_or(0)
}

/// Data-segment indices belonging to parity group `group`, in shard-slot
/// order: `group, group + groups, group + 2·groups, …` below `n`.
pub fn group_members(group: usize, n: usize, groups: usize) -> impl Iterator<Item = usize> {
    let step = groups.max(1);
    (group..n).step_by(step)
}

/// Parses and validates the file header — v2 (31 bytes) or v3 (33
/// bytes): magic, version, header CRC, count/source-length limits and
/// (v3) the parity geometry. Shared by strict parse, salvage and the
/// streaming reader.
pub(crate) fn parse_file_header(
    bytes: &[u8],
    limits: &DecodeLimits,
) -> Result<FileHeader, FrameError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(FrameError::BadMagic);
    }
    if bytes.len() < HEADER_BYTES {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    let version = bytes[4];
    let (header_bytes, crc_covers) = match version {
        VERSION => (HEADER_BYTES, HEADER_CRC_COVERS),
        VERSION_V3 => (HEADER_BYTES_V3, HEADER_CRC_COVERS_V3),
        found => return Err(FrameError::UnsupportedVersion { found }),
    };
    if bytes.len() < header_bytes {
        return Err(FrameError::Truncated {
            offset: bytes.len(),
        });
    }
    let stored = le_u32(bytes, crc_covers).ok_or(FrameError::Truncated {
        offset: bytes.len(),
    })?;
    if crc32(&bytes[..crc_covers]) != stored {
        return Err(FrameError::BadHeaderCrc);
    }
    let mut table_lengths = [0u8; 9];
    table_lengths.copy_from_slice(&bytes[6..15]);
    let claimed_segments = le_u32(bytes, 15).ok_or(FrameError::Truncated {
        offset: bytes.len(),
    })? as usize;
    let source_len_u64 = le_u64(bytes, 19).ok_or(FrameError::Truncated {
        offset: bytes.len(),
    })?;
    let source_len = usize::try_from(source_len_u64).map_err(|_| FrameError::Malformed {
        segment: 0,
        what: "source length exceeds the address space",
    })?;
    let (parity_g, parity_r) = if version == VERSION_V3 {
        let g = bytes[27];
        let r = bytes[28];
        if g as usize + r as usize > crate::engine::ecc::MAX_SHARDS {
            return Err(FrameError::Malformed {
                segment: 0,
                what: "parity geometry exceeds the GF(256) shard ceiling",
            });
        }
        if g == 0 && r != 0 {
            return Err(FrameError::Malformed {
                segment: 0,
                what: "parity shards declared without a group size",
            });
        }
        (g, r)
    } else {
        (0, 0)
    };
    if claimed_segments > limits.max_segments {
        return Err(FrameError::LimitExceeded {
            what: "segment count",
            requested: claimed_segments,
            limit: limits.max_segments,
        });
    }
    if trit_alloc_bytes(source_len) > limits.max_total_alloc {
        return Err(FrameError::LimitExceeded {
            what: "source-length allocation",
            requested: trit_alloc_bytes(source_len),
            limit: limits.max_total_alloc,
        });
    }
    Ok(FileHeader {
        table_lengths,
        claimed_segments,
        source_len,
        version,
        parity_g,
        parity_r,
        header_bytes,
    })
}

/// Parses and CRC-verifies one segment starting at byte `at`, returning
/// the segment and the offset just past its payload. Performs *no*
/// allocation: every claimed size is checked against the bytes actually
/// present and against `limits` first.
pub(crate) fn segment_at<'a>(
    bytes: &'a [u8],
    at: usize,
    segment: usize,
    limits: &DecodeLimits,
) -> Result<(ParsedSegment<'a>, usize), FrameError> {
    let header_end = at
        .checked_add(SEGMENT_HEADER_BYTES)
        .ok_or(FrameError::Truncated { offset: at })?;
    let header = bytes
        .get(at..header_end)
        .ok_or(FrameError::Truncated { offset: at })?;
    let k = u16::from_le_bytes([header[0], header[1]]) as usize;
    if header[2] != 0 || header[3] != 0 {
        return Err(FrameError::Malformed {
            segment,
            what: "reserved segment-header bytes are nonzero",
        });
    }
    let source_trits = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    let payload_trits = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let crc_stored = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
    if k < 4 || !k.is_multiple_of(2) {
        return Err(FrameError::Malformed {
            segment,
            what: "segment block size must be even and at least 4",
        });
    }
    // Bomb check: the payload must physically fit in the remaining input
    // before anything trusts `payload_trits`. Slicing allocates nothing.
    let payload_bytes = payload_trits.div_ceil(4);
    let payload_end = header_end
        .checked_add(payload_bytes)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    let payload = bytes
        .get(header_end..payload_end)
        .ok_or(FrameError::Truncated {
            offset: bytes.len(),
        })?;
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header[..12].iter().chain(payload.iter()) {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    if !crc != crc_stored {
        return Err(FrameError::BadCrc { segment });
    }
    // CRC is good, so the claims are what the writer wrote — now hold
    // them to the caller's limits and to 9C structure (each K-trit block
    // consumes at least one payload trit, so a CRC-valid header claiming
    // more output than `payload_trits * k` is an expansion bomb).
    if source_trits > limits.max_segment_trits {
        return Err(FrameError::LimitExceeded {
            what: "segment source trits",
            requested: source_trits,
            limit: limits.max_segment_trits,
        });
    }
    if payload_trits > limits.max_segment_trits {
        return Err(FrameError::LimitExceeded {
            what: "segment payload trits",
            requested: payload_trits,
            limit: limits.max_segment_trits,
        });
    }
    if source_trits > payload_trits.saturating_mul(k) {
        return Err(FrameError::Malformed {
            segment,
            what: "segment claims more source trits than its payload can encode",
        });
    }
    Ok((
        ParsedSegment {
            k,
            source_trits,
            payload_trits,
            payload,
        },
        payload_end,
    ))
}

/// Publishes frame-health counters for a failed parse/scan step.
pub(crate) fn publish_failure_metrics(e: &FrameError) {
    match e {
        FrameError::BadCrc { .. } | FrameError::BadHeaderCrc => {
            crate::metrics::publish_crc_failures(1);
        }
        FrameError::LimitExceeded { .. } => {
            crate::metrics::publish_limit_rejections(1);
        }
        _ => {}
    }
}

/// Parses and CRC-verifies a whole frame without unpacking any payload,
/// using the [`Default`] [`DecodeLimits`].
///
/// # Errors
///
/// Any structural problem is a typed [`FrameError`]; this function never
/// panics and never allocates more than the limits allow on hostile
/// input.
pub fn parse(bytes: &[u8]) -> Result<ParsedFrame<'_>, FrameError> {
    parse_limited(bytes, &DecodeLimits::default())
}

/// [`parse`] with caller-chosen [`DecodeLimits`].
///
/// # Errors
///
/// See [`parse`]; additionally [`FrameError::LimitExceeded`] when a
/// header-claimed size exceeds `limits`.
pub fn parse_limited<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
) -> Result<ParsedFrame<'a>, FrameError> {
    let out = parse_limited_inner(bytes, limits);
    if let Err(e) = &out {
        publish_failure_metrics(e);
    }
    out
}

fn parse_limited_inner<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
) -> Result<ParsedFrame<'a>, FrameError> {
    let head = parse_file_header(bytes, limits)?;
    let segments = head.claimed_segments;
    let parity_segments = head.parity_segments();
    // Bomb check: each claimed segment (data + parity) needs at least a
    // 16-byte header, so the header count must fit in the remaining
    // bytes *before* the `Vec::with_capacity` below — a tiny file
    // claiming `u32::MAX` segments is rejected here without allocating.
    let body = bytes.len() - head.header_bytes;
    match segments
        .checked_add(parity_segments)
        .and_then(|n| n.checked_mul(SEGMENT_HEADER_BYTES))
    {
        Some(need) if need <= body => {}
        _ => {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
            })
        }
    }
    let mut alloc_budget = trit_alloc_bytes(head.source_len);
    let mut parsed = Vec::with_capacity(segments);
    let mut at = head.header_bytes;
    let mut covered = 0usize;
    for segment in 0..segments {
        let (seg, next) = segment_at(bytes, at, segment, limits)?;
        alloc_budget = alloc_budget
            .saturating_add(trit_alloc_bytes(seg.source_trits))
            .saturating_add(trit_alloc_bytes(seg.payload_trits));
        if alloc_budget > limits.max_total_alloc {
            return Err(FrameError::LimitExceeded {
                what: "total decode allocation",
                requested: alloc_budget,
                limit: limits.max_total_alloc,
            });
        }
        covered = covered
            .checked_add(seg.source_trits)
            .ok_or(FrameError::Malformed {
                segment,
                what: "segment source lengths overflow",
            })?;
        parsed.push(seg);
        at = next;
    }
    if covered != head.source_len {
        return Err(FrameError::Malformed {
            segment: segments,
            what: "segment source lengths do not sum to the header total",
        });
    }
    // Parity segments follow the data, in (group, pindex) order; the
    // strict parse verifies the geometry labels match their positions.
    let groups = head.groups();
    let mut parity = Vec::with_capacity(parity_segments);
    for p in 0..parity_segments {
        let segment = segments + p;
        let (par, next) = parity_at(bytes, at, segment, limits)?;
        alloc_budget = alloc_budget.saturating_add(par.payload.len());
        if alloc_budget > limits.max_total_alloc {
            return Err(FrameError::LimitExceeded {
                what: "total decode allocation",
                requested: alloc_budget,
                limit: limits.max_total_alloc,
            });
        }
        let (want_group, want_pindex) = (p / head.parity_r as usize, p % head.parity_r as usize);
        if par.group != want_group || par.pindex != want_pindex || par.group >= groups {
            return Err(FrameError::Malformed {
                segment,
                what: "parity segment out of (group, pindex) order",
            });
        }
        parity.push(par);
        at = next;
    }
    if at != bytes.len() {
        return Err(FrameError::Malformed {
            segment: segments,
            what: "trailing bytes after the last segment",
        });
    }
    Ok(ParsedFrame {
        table_lengths: head.table_lengths,
        source_len: head.source_len,
        segments: parsed,
        parity_g: head.parity_g,
        parity_r: head.parity_r,
        parity,
    })
}

/// One classified byte range from a [`scan_salvage`] walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanEntry<'a> {
    /// A CRC-valid, structurally sound data segment.
    Intact {
        /// The parsed segment.
        seg: ParsedSegment<'a>,
        /// The bytes it occupies (header + payload).
        byte_range: Range<usize>,
    },
    /// A CRC-valid v3 parity segment (contributes no output trits; feeds
    /// the repair ladder).
    Parity {
        /// The parsed parity shard.
        par: ParsedParity<'a>,
        /// The bytes it occupies (header + shard).
        byte_range: Range<usize>,
    },
    /// A byte range that could not be parsed as a valid segment.
    Damaged {
        /// The bytes written off, up to the resynchronisation point.
        byte_range: Range<usize>,
        /// The `source_trits` field the (untrusted) header claimed, if
        /// the 16 header bytes were at least present.
        claimed_source_trits: Option<usize>,
        /// Why the range failed.
        reason: DamageReason,
    },
}

impl ScanEntry<'_> {
    /// The byte range this entry covers.
    #[must_use]
    pub fn byte_range(&self) -> Range<usize> {
        match self {
            ScanEntry::Intact { byte_range, .. }
            | ScanEntry::Parity { byte_range, .. }
            | ScanEntry::Damaged { byte_range, .. } => byte_range.clone(),
        }
    }
}

/// The result of a fault-tolerant frame walk: every byte of the body
/// classified as part of an intact segment, a parity segment or a
/// damaged range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SalvageScan<'a> {
    /// Codeword lengths of C1..C9, as stored in the (CRC-valid) header.
    pub table_lengths: [u8; 9],
    /// Total source trits the header claims.
    pub source_len: usize,
    /// Data-segment count the header claims (may disagree with `entries`
    /// when segments were spliced in or out).
    pub claimed_segments: usize,
    /// Data segments per parity group (0 = unprotected / v2 frame).
    pub parity_g: u8,
    /// Parity segments per group.
    pub parity_r: u8,
    /// The classified byte ranges, in stream order.
    pub entries: Vec<ScanEntry<'a>>,
}

impl SalvageScan<'_> {
    /// Number of intact data segments found.
    #[must_use]
    pub fn intact_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, ScanEntry::Intact { .. }))
            .count()
    }

    /// Number of parity groups the header geometry implies.
    #[must_use]
    pub fn groups(&self) -> usize {
        group_count(self.claimed_segments, self.parity_g)
    }

    /// Total parity segments the header geometry implies.
    #[must_use]
    pub fn claimed_parity_segments(&self) -> usize {
        self.groups() * self.parity_r as usize
    }
}

/// `true` when a segment of either kind (data, or parity if `v3`)
/// parses CRC-valid at `at`.
fn any_segment_parses(bytes: &[u8], at: usize, v3: bool, limits: &DecodeLimits) -> bool {
    if v3 && bytes.get(at..at + 2) == Some(&PARITY_MARKER.to_le_bytes()) {
        return parity_at(bytes, at, 0, limits).is_ok();
    }
    segment_at(bytes, at, 0, limits).is_ok()
}

/// Finds the next offset in `(at, len)` where a CRC-valid segment (data
/// or, for v3 frames, parity) parses, or `len` when the rest of the
/// frame is unrecoverable. Probing never allocates (it reuses the
/// parsers' bomb checks) and never publishes metrics — probes are
/// expected to fail.
///
/// # Errors
///
/// [`FrameError::LimitExceeded`] when
/// [`DecodeLimits::max_resync_probes`] positions were probed without
/// either resynchronising or reaching the end of the input.
pub(crate) fn find_resync(
    bytes: &[u8],
    at: usize,
    v3: bool,
    limits: &DecodeLimits,
) -> Result<usize, FrameError> {
    let len = bytes.len();
    let mut probes = 0usize;
    let mut p = at + 1;
    // A valid segment needs a 16-byte header, so stop early.
    while p + SEGMENT_HEADER_BYTES <= len {
        if probes >= limits.max_resync_probes {
            return Err(FrameError::LimitExceeded {
                what: "resync probes",
                requested: probes + 1,
                limit: limits.max_resync_probes,
            });
        }
        probes += 1;
        if any_segment_parses(bytes, p, v3, limits) {
            return Ok(p);
        }
        p += 1;
    }
    Ok(len)
}

/// Walks a frame fault-tolerantly, classifying every body byte range as
/// an intact segment or damage, resynchronising on the next CRC-valid
/// segment after each damaged range.
///
/// The walk is driven by the input length, not the header's claimed
/// segment count, so corrupted counts and spliced/truncated bodies still
/// scan. The per-entry `reason` records what failed; the engine's
/// salvage decode turns damaged ranges into X-trit erasures.
///
/// # Errors
///
/// Only file-level problems are fatal: [`FrameError::BadMagic`], a
/// header shorter than [`HEADER_BYTES`],
/// [`FrameError::UnsupportedVersion`], [`FrameError::BadHeaderCrc`] (the
/// code table and totals are untrustworthy, so there is nothing sound to
/// salvage against) and [`FrameError::LimitExceeded`] for file-level
/// bomb claims. Segment-level damage is never an error — it becomes a
/// [`ScanEntry::Damaged`].
pub fn scan_salvage<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
) -> Result<SalvageScan<'a>, FrameError> {
    // The walk itself lives in `plan::build` now — one scan pass builds
    // the whole decode plan, and this legacy scan shape is a view of it.
    super::plan::build(bytes, limits, super::plan::BuildMode::Full).map(|p| p.to_scan())
}

/// Unpacks a segment's payload, attributing errors to `segment`.
///
/// # Errors
///
/// [`FrameError::Malformed`] if a reserved `11` trit code appears. (The
/// CRC already caught random corruption; this guards against a buggy or
/// adversarial *writer*.)
pub fn unpack_payload(seg: &ParsedSegment<'_>, segment: usize) -> Result<TritVec, FrameError> {
    // `parse`/`scan_salvage` guarantee `payload` physically holds
    // `payload_trits` packed trits, so this capacity is input-bounded.
    let mut out = TritVec::with_capacity(seg.payload_trits);
    for i in 0..seg.payload_trits {
        let byte = match seg.payload.get(i / 4) {
            Some(&b) => b,
            None => {
                return Err(FrameError::Truncated {
                    offset: seg.payload.len(),
                })
            }
        };
        let code = (byte >> ((i % 4) * 2)) & 0b11;
        out.push(match code {
            0b00 => Trit::Zero,
            0b01 => Trit::One,
            0b10 => Trit::X,
            _ => {
                return Err(FrameError::Malformed {
                    segment,
                    what: "invalid trit code 11 in payload",
                })
            }
        });
    }
    // Pad bits past payload_trits in the last byte must be zero (the
    // writer zero-fills); tolerated if not — they are outside the data.
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical "123456789" check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_frame() -> Vec<u8> {
        let mut out = Vec::new();
        let payload_a = tv("0110X01");
        let payload_b = tv("111000X");
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 2, 32);
        write_segment(&mut out, 8, 16, &payload_a).expect("segment fits");
        write_segment(&mut out, 8, 16, &payload_b).expect("segment fits");
        out
    }

    #[test]
    fn roundtrip_parse() {
        let bytes = sample_frame();
        assert!(is_frame(&bytes));
        let frame = parse(&bytes).expect("well-formed frame parses");
        assert_eq!(frame.source_len, 32);
        assert_eq!(frame.segments.len(), 2);
        assert_eq!(frame.segments[0].k, 8);
        assert_eq!(frame.segments[0].source_trits, 16);
        assert_eq!(frame.segments[0].payload_trits, 7);
        let a = unpack_payload(&frame.segments[0], 0).expect("payload unpacks");
        assert_eq!(a.to_string(), "0110X01");
        let b = frame.segments[1].unpack().expect("payload unpacks");
        assert_eq!(b.to_string(), "111000X");
    }

    #[test]
    fn bad_magic_detected() {
        let mut bytes = sample_frame();
        bytes[0] ^= 0xFF;
        assert!(!is_frame(&bytes));
        assert_eq!(parse(&bytes), Err(FrameError::BadMagic));
    }

    #[test]
    fn unsupported_version_detected() {
        let mut bytes = sample_frame();
        bytes[4] = 99;
        assert_eq!(
            parse(&bytes),
            Err(FrameError::UnsupportedVersion { found: 99 })
        );
    }

    #[test]
    fn header_corruption_fails_header_crc() {
        let mut bytes = sample_frame();
        // Flip a code-length byte: without the v2 header CRC this could
        // rebuild a different Kraft-valid table and decode silently wrong.
        bytes[6] ^= 0x01;
        assert_eq!(parse(&bytes), Err(FrameError::BadHeaderCrc));
        // Salvage treats an untrustworthy header as fatal too.
        assert_eq!(
            scan_salvage(&bytes, &DecodeLimits::default()),
            Err(FrameError::BadHeaderCrc)
        );
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut bytes = sample_frame();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert_eq!(parse(&bytes), Err(FrameError::BadCrc { segment: 1 }));
    }

    #[test]
    fn header_corruption_fails_crc_or_shape() {
        let mut bytes = sample_frame();
        // Flip the first segment's K field: CRC covers it.
        bytes[HEADER_BYTES] ^= 0x02;
        let err = parse(&bytes).expect_err("corrupt K must not parse");
        assert!(
            matches!(
                err,
                FrameError::BadCrc { .. }
                    | FrameError::Malformed { .. }
                    | FrameError::Truncated { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let bytes = sample_frame();
        for cut in 0..bytes.len() {
            let err = parse(&bytes[..cut]).expect_err("truncated frame must not parse");
            if cut >= HEADER_BYTES {
                assert!(
                    matches!(err, FrameError::Truncated { .. }),
                    "cut {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_frame();
        bytes.push(0xAB);
        assert!(matches!(
            parse(&bytes),
            Err(FrameError::Malformed {
                what: "trailing bytes after the last segment",
                ..
            })
        ));
    }

    #[test]
    fn segment_sum_must_match_header() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 1, 99);
        write_segment(&mut out, 8, 16, &tv("01")).expect("segment fits");
        assert!(matches!(
            parse(&out),
            Err(FrameError::Malformed {
                what: "segment source lengths do not sum to the header total",
                ..
            })
        ));
    }

    #[test]
    fn oversized_segment_is_a_typed_error_not_a_panic() {
        let mut out = Vec::new();
        let before = out.len();
        let err = write_segment(&mut out, 1 << 20, 8, &tv("01")).expect_err("K overflows u16");
        assert!(matches!(
            err,
            FrameError::SegmentTooLarge {
                what: "block size K",
                ..
            }
        ));
        // Nothing was appended on the error path.
        assert_eq!(out.len(), before);
        let err =
            write_segment(&mut out, 8, usize::MAX, &tv("01")).expect_err("source overflows u32");
        assert!(matches!(
            err,
            FrameError::SegmentTooLarge {
                what: "segment source trits",
                ..
            }
        ));
        assert_eq!(out.len(), before);
    }

    /// Regression: a tiny file whose header claims `u32::MAX` segments
    /// must be rejected *before* `Vec::with_capacity(u32::MAX)`.
    #[test]
    fn segment_count_bomb_is_rejected_before_allocation() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], u32::MAX, 0);
        assert_eq!(out.len(), HEADER_BYTES);
        // Default limits: the claimed count exceeds max_segments.
        assert!(matches!(
            parse(&out),
            Err(FrameError::LimitExceeded {
                what: "segment count",
                ..
            })
        ));
        // Even unlimited: the count can't fit in the remaining bytes.
        assert!(matches!(
            parse_limited(&out, &DecodeLimits::unlimited()),
            Err(FrameError::Truncated { .. })
        ));
        // Salvage refuses the bomb claim under default limits too.
        assert!(matches!(
            scan_salvage(&out, &DecodeLimits::default()),
            Err(FrameError::LimitExceeded { .. })
        ));
    }

    /// Regression: a CRC-valid segment claiming vastly more source trits
    /// than its payload could encode must be rejected before the decoder
    /// allocates the claimed output.
    #[test]
    fn expansion_bomb_segment_is_rejected() {
        let mut out = Vec::new();
        write_header(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 1, 1 << 20);
        // Hand-build a segment header claiming 2^20 source trits from a
        // 2-trit payload at K = 8 (2 * 8 = 16 < 2^20), with a valid CRC.
        let mut header = [0u8; 12];
        header[0..2].copy_from_slice(&8u16.to_le_bytes());
        header[4..8].copy_from_slice(&(1u32 << 20).to_le_bytes());
        header[8..12].copy_from_slice(&2u32.to_le_bytes());
        let payload = [0b0001u8]; // two trits: 1, 0
        let mut seg = Vec::new();
        seg.extend_from_slice(&header);
        let crc = {
            let mut all = header.to_vec();
            all.extend_from_slice(&payload);
            crc32(&all)
        };
        seg.extend_from_slice(&crc.to_le_bytes());
        seg.extend_from_slice(&payload);
        out.extend_from_slice(&seg);
        assert!(matches!(
            parse(&out),
            Err(FrameError::Malformed {
                what: "segment claims more source trits than its payload can encode",
                ..
            })
        ));
    }

    #[test]
    fn per_segment_trit_limit_is_enforced() {
        let bytes = sample_frame();
        let tight = DecodeLimits {
            max_segment_trits: 4,
            ..DecodeLimits::default()
        };
        assert!(matches!(
            parse_limited(&bytes, &tight),
            Err(FrameError::LimitExceeded {
                what: "segment source trits",
                ..
            })
        ));
    }

    #[test]
    fn total_alloc_limit_is_enforced() {
        let bytes = sample_frame();
        let tight = DecodeLimits {
            max_total_alloc: 8, // 32 source trits need at least 8 bytes out + scratch
            ..DecodeLimits::default()
        };
        assert!(matches!(
            parse_limited(&bytes, &tight),
            Err(FrameError::LimitExceeded { .. })
        ));
        assert!(parse_limited(&bytes, &DecodeLimits::unlimited()).is_ok());
    }

    #[test]
    fn salvage_scan_on_clean_frame_is_all_intact() {
        let bytes = sample_frame();
        let scan = scan_salvage(&bytes, &DecodeLimits::default()).expect("clean frame scans");
        assert_eq!(scan.source_len, 32);
        assert_eq!(scan.claimed_segments, 2);
        assert_eq!(scan.entries.len(), 2);
        assert_eq!(scan.intact_count(), 2);
        // Entries tile the body exactly.
        assert_eq!(scan.entries[0].byte_range().start, HEADER_BYTES);
        assert_eq!(
            scan.entries[0].byte_range().end,
            scan.entries[1].byte_range().start
        );
        assert_eq!(scan.entries[1].byte_range().end, bytes.len());
    }

    #[test]
    fn salvage_scan_resyncs_past_a_corrupt_payload() {
        let mut bytes = sample_frame();
        // Corrupt the first segment's payload (just past its header).
        bytes[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0xFF;
        let scan = scan_salvage(&bytes, &DecodeLimits::default()).expect("scan survives");
        assert_eq!(scan.entries.len(), 2);
        assert!(matches!(
            &scan.entries[0],
            ScanEntry::Damaged {
                reason: DamageReason::BadCrc,
                claimed_source_trits: Some(16),
                ..
            }
        ));
        assert!(
            matches!(&scan.entries[1], ScanEntry::Intact { seg, .. } if seg.source_trits == 16)
        );
        // The damaged range covers exactly the first segment's bytes.
        let clean = sample_frame();
        let clean_scan = scan_salvage(&clean, &DecodeLimits::default()).expect("clean");
        assert_eq!(
            scan.entries[0].byte_range(),
            clean_scan.entries[0].byte_range()
        );
    }

    #[test]
    fn salvage_scan_handles_truncated_tail() {
        let bytes = sample_frame();
        let cut = bytes.len() - 2;
        let scan = scan_salvage(&bytes[..cut], &DecodeLimits::default()).expect("scan survives");
        assert_eq!(scan.intact_count(), 1);
        let last = scan.entries.last().expect("has entries");
        assert!(matches!(
            last,
            ScanEntry::Damaged {
                reason: DamageReason::Truncated,
                ..
            }
        ));
        assert_eq!(last.byte_range().end, cut);
    }

    #[test]
    fn errors_display() {
        for e in [
            FrameError::BadMagic,
            FrameError::UnsupportedVersion { found: 9 },
            FrameError::Truncated { offset: 3 },
            FrameError::BadHeaderCrc,
            FrameError::BadCrc { segment: 1 },
            FrameError::BadTable,
            FrameError::Malformed {
                segment: 0,
                what: "x",
            },
            FrameError::LimitExceeded {
                what: "x",
                requested: 2,
                limit: 1,
            },
            FrameError::SegmentTooLarge { what: "x", len: 5 },
        ] {
            assert!(!e.to_string().is_empty());
        }
        for r in [
            DamageReason::BadCrc,
            DamageReason::Truncated,
            DamageReason::Malformed("x"),
            DamageReason::LimitExceeded("x"),
            DamageReason::WorkerPanicked,
            DamageReason::HeaderMismatch("x"),
            DamageReason::Cancelled,
            DamageReason::RepairedBy {
                group: 1,
                parity_used: 2,
            },
        ] {
            assert!(!r.to_string().is_empty());
        }
        assert!(DamageReason::RepairedBy {
            group: 0,
            parity_used: 1
        }
        .is_repaired());
        assert!(!DamageReason::BadCrc.is_repaired());
    }

    // ------------------------------------------------------------------
    // Frame v3: parity groups.
    // ------------------------------------------------------------------

    /// A v3 frame: the two `sample_frame` data segments in one parity
    /// group (`g = 2, r = 1`) with a real GF(256) parity shard.
    fn sample_frame_v3() -> Vec<u8> {
        let payload_a = tv("0110X01");
        let payload_b = tv("111000X");
        let mut seg_a = Vec::new();
        write_segment(&mut seg_a, 8, 16, &payload_a).expect("segment fits");
        let mut seg_b = Vec::new();
        write_segment(&mut seg_b, 8, 16, &payload_b).expect("segment fits");
        let coder = crate::engine::ecc::ParityCoder::new(2, 1).expect("valid geometry");
        let shard_len = seg_a.len().max(seg_b.len());
        let parity = coder.encode(&[&seg_a, &seg_b], shard_len);
        let mut out = Vec::new();
        write_header_v3(&mut out, [1, 2, 5, 5, 5, 5, 5, 5, 4], 2, 32, 2, 1);
        out.extend_from_slice(&seg_a);
        out.extend_from_slice(&seg_b);
        write_parity_segment(&mut out, 0, 0, &parity[0]).expect("parity fits");
        out
    }

    #[test]
    fn v3_roundtrip_parse() {
        let bytes = sample_frame_v3();
        assert!(is_frame(&bytes));
        let frame = parse(&bytes).expect("well-formed v3 frame parses");
        assert_eq!(frame.source_len, 32);
        assert_eq!((frame.parity_g, frame.parity_r), (2, 1));
        assert_eq!(frame.groups(), 1);
        assert_eq!(frame.segments.len(), 2);
        assert_eq!(frame.parity.len(), 1);
        assert_eq!(frame.parity[0].group, 0);
        assert_eq!(frame.parity[0].pindex, 0);
        // Data segments are byte-identical to their v2 form: same bytes
        // parse at the v2 offsets of a v2 header.
        let v2 = sample_frame();
        assert_eq!(
            &bytes[HEADER_BYTES_V3..HEADER_BYTES_V3 + (v2.len() - HEADER_BYTES)],
            &v2[HEADER_BYTES..]
        );
        let a = frame.segments[0].unpack().expect("payload unpacks");
        assert_eq!(a.to_string(), "0110X01");
    }

    #[test]
    fn v3_zero_parity_is_v2_compatible_apart_from_the_header() {
        let payload_a = tv("0110X01");
        let payload_b = tv("111000X");
        let mut bytes = Vec::new();
        write_header_v3(&mut bytes, [1, 2, 5, 5, 5, 5, 5, 5, 4], 2, 32, 0, 0);
        write_segment(&mut bytes, 8, 16, &payload_a).expect("segment fits");
        write_segment(&mut bytes, 8, 16, &payload_b).expect("segment fits");
        let frame = parse(&bytes).expect("parity-free v3 parses");
        assert!(frame.parity.is_empty());
        assert_eq!(frame.groups(), 0);
        // Body is byte-identical to the v2 frame's body.
        let v2 = sample_frame();
        assert_eq!(&bytes[HEADER_BYTES_V3..], &v2[HEADER_BYTES..]);
    }

    #[test]
    fn v3_bad_parity_geometry_is_rejected() {
        let mut bytes = Vec::new();
        // g + r = 400 > 255: beyond the GF(256) shard ceiling.
        write_header_v3(&mut bytes, [1, 2, 5, 5, 5, 5, 5, 5, 4], 0, 0, 200, 200);
        assert!(matches!(
            parse(&bytes),
            Err(FrameError::Malformed { what, .. })
                if what.contains("shard ceiling")
        ));
        // Parity shards without a group size make no sense.
        let mut bytes = Vec::new();
        write_header_v3(&mut bytes, [1, 2, 5, 5, 5, 5, 5, 5, 4], 0, 0, 0, 3);
        assert!(matches!(
            parse(&bytes),
            Err(FrameError::Malformed { what, .. })
                if what.contains("without a group size")
        ));
    }

    #[test]
    fn v3_parity_out_of_order_is_rejected() {
        let bytes = sample_frame_v3();
        let mut swapped = Vec::new();
        // Re-emit the parity shard with a wrong group label.
        let frame = parse(&bytes).expect("parses");
        let shard = frame.parity[0].payload.to_vec();
        swapped.extend_from_slice(&bytes[..bytes.len() - (SEGMENT_HEADER_BYTES + shard.len())]);
        write_parity_segment(&mut swapped, 7, 0, &shard).expect("fits");
        assert!(matches!(
            parse(&swapped),
            Err(FrameError::Malformed { what, .. })
                if what.contains("order")
        ));
    }

    #[test]
    fn v3_parity_shard_bomb_is_rejected_before_allocation() {
        let bytes = sample_frame_v3();
        let frame = parse(&bytes).expect("parses");
        let shard_len = frame.parity[0].payload.len();
        let parity_start = bytes.len() - (SEGMENT_HEADER_BYTES + shard_len);
        let mut bomb = bytes[..parity_start].to_vec();
        // Forge a parity header claiming a ~4 GiB shard. The limit check
        // must fire before any allocation and before the CRC read.
        let mut header = [0u8; 12];
        header[0..2].copy_from_slice(&PARITY_MARKER.to_le_bytes());
        header[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        bomb.extend_from_slice(&header);
        bomb.extend_from_slice(&[0u8; 4]); // bogus CRC, never reached
        let limits = DecodeLimits::default();
        assert!(matches!(
            parse_limited(&bomb, &limits),
            Err(FrameError::LimitExceeded {
                what: "parity shard bytes",
                ..
            })
        ));
        // The scan degrades it to damage rather than failing the file.
        let scan = scan_salvage(&bomb, &limits).expect("scan survives");
        assert!(scan
            .entries
            .iter()
            .any(|e| matches!(e, ScanEntry::Damaged { .. })));
    }

    #[test]
    fn v3_scan_classifies_parity_entries() {
        let bytes = sample_frame_v3();
        let scan = scan_salvage(&bytes, &DecodeLimits::default()).expect("clean v3 scans");
        assert_eq!((scan.parity_g, scan.parity_r), (2, 1));
        assert_eq!(scan.groups(), 1);
        assert_eq!(scan.claimed_parity_segments(), 1);
        assert_eq!(scan.entries.len(), 3);
        assert_eq!(scan.intact_count(), 2);
        assert!(matches!(
            &scan.entries[2],
            ScanEntry::Parity { par, .. } if par.group == 0 && par.pindex == 0
        ));
        assert_eq!(scan.entries[2].byte_range().end, bytes.len());
    }

    #[test]
    fn v3_scan_degrades_corrupt_parity_to_damage() {
        let mut bytes = sample_frame_v3();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let scan = scan_salvage(&bytes, &DecodeLimits::default()).expect("scan survives");
        assert_eq!(scan.intact_count(), 2);
        let last_entry = scan.entries.last().expect("has entries");
        assert!(matches!(
            last_entry,
            ScanEntry::Damaged {
                claimed_source_trits: Some(0),
                ..
            }
        ));
    }

    #[test]
    fn group_helpers_interleave() {
        // 7 data segments, g = 3 → G = ceil(7/3) = 3 groups.
        assert_eq!(group_count(7, 3), 3);
        assert_eq!(group_count(0, 3), 0);
        assert_eq!(group_count(7, 0), 0);
        let groups = 3usize;
        for i in 0..7 {
            assert_eq!(group_of(i, groups), i % 3);
        }
        assert_eq!(position_in_group(5, groups), 1);
        assert_eq!(group_members(0, 7, groups).collect::<Vec<_>>(), [0, 3, 6]);
        assert_eq!(group_members(1, 7, groups).collect::<Vec<_>>(), [1, 4]);
        assert_eq!(group_members(2, 7, groups).collect::<Vec<_>>(), [2, 5]);
        // Every segment is in exactly one group, and group sizes never
        // exceed g.
        for g in 1u8..=5 {
            for n in 0..40usize {
                let gc = group_count(n, g);
                let mut seen = vec![false; n];
                for q in 0..gc {
                    let members: Vec<usize> = group_members(q, n, gc).collect();
                    assert!(members.len() <= g as usize, "n={n} g={g} q={q}");
                    for m in members {
                        assert!(!seen[m]);
                        seen[m] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "n={n} g={g}");
            }
        }
    }

    #[test]
    fn resync_probe_cap_is_a_typed_limit_error() {
        // Regression: the probe budget used to be a hard-coded constant;
        // it is now `DecodeLimits::max_resync_probes` with a typed error.
        let mut bytes = sample_frame();
        bytes[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0xFF;
        // Default limits: plenty of probes, the scan resyncs.
        assert!(scan_salvage(&bytes, &DecodeLimits::default()).is_ok());
        // A 1-probe budget cannot reach the next segment boundary.
        let tight = DecodeLimits {
            max_resync_probes: 1,
            ..DecodeLimits::default()
        };
        assert!(matches!(
            scan_salvage(&bytes, &tight),
            Err(FrameError::LimitExceeded {
                what: "resync probes",
                limit: 1,
                ..
            })
        ));
        // Unlimited really is unlimited.
        assert!(scan_salvage(&bytes, &DecodeLimits::unlimited()).is_ok());
    }

    #[test]
    fn max_shard_bytes_bounds_parity_shards() {
        let limits = DecodeLimits::default();
        assert_eq!(
            limits.max_shard_bytes(),
            trit_alloc_bytes(limits.max_segment_trits) + SEGMENT_HEADER_BYTES
        );
        assert!(DecodeLimits::unlimited().max_shard_bytes() >= limits.max_shard_bytes());
    }
}

//! Plan-then-execute decode pipeline: one scan pass, one ladder.
//!
//! Before this module, the decode ladder was structurally triplicated:
//! strict decode ([`frame::parse_limited`]), the repair rung and salvage
//! each re-walked segment headers and re-CRC'd payloads, so a
//! repaired-then-salvaged frame was scanned up to three times. A
//! [`FramePlan`] is built by **one** pass over the frame body — header
//! parse, limits check, per-segment CRC verdict, parity membership and
//! byte ranges — and every rung executes against it:
//!
//! - **strict** decodes only [`PlanEntry::Data`] entries (the CRC
//!   verdicts are already in the plan, nothing is re-verified) and fails
//!   closed on the plan's [`strict_error`](FramePlan::strict_error);
//! - **repair** feeds the plan's erasure positions straight to
//!   [`ParityCoder::reconstruct`](crate::engine::ecc::ParityCoder) —
//!   no re-scan, and each rebuilt shard is parsed exactly once;
//! - **salvage** materialises X-runs from the same entries.
//!
//! [`Engine::build_plan`] + [`Engine::execute_plan`] are the single
//! entry point the decode ladder ([`crate::session::DecodeSession`], the
//! CLI) drives: build one plan, try [`Policy::Strict`], fall back to
//! [`Policy::Repair`] or [`Policy::Salvage`] **on the same plan** — one
//! header/CRC pass for the whole ladder, proven by the
//! `ninec.frame.scan_passes` counter.
//!
//! The strict verdict is computed *during* the walk by replaying
//! [`frame::parse_limited`]'s checks in exactly its order (bomb check,
//! per-segment budget and overflow, source-length sum, parity `(group,
//! pindex)` order, trailing bytes), so a plan-based strict decode
//! reports byte-for-byte the same typed error the eager parser would.
//! [`frame::parse_limited`] itself remains as the independent reference
//! oracle — the ladder-equivalence suite diffs the two on every corpus
//! golden and on exhaustive single-byte mutation sweeps.

use crate::code::CodeTable;
use crate::decode::DecodeError;
use crate::engine::frame::{
    self, DamageReason, DecodeLimits, FrameError, ParsedParity, ParsedSegment, SalvageScan,
    ScanEntry,
};
use crate::engine::{cancel, pool, Engine, SalvageReport};
use ninec_testdata::trit::TritVec;
use std::ops::Range;

/// Which rung of the decode ladder to run against a [`FramePlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Policy {
    /// Fail-closed: any damage is a typed error (the plan's strict
    /// verdict), byte-identical to [`Engine::decode_frame`].
    Strict,
    /// Rebuild damaged segments from v3 parity groups first, then
    /// salvage whatever could not be reconstructed.
    Repair,
    /// Skip parity reconstruction: intact segments decode, damage is
    /// erased to `X` runs.
    Salvage,
}

/// How a plan build reacts to the first strict-order deviation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BuildMode {
    /// Stop at the first deviation without resync probing — the
    /// fast-fail shape of [`frame::parse_limited`], used by
    /// [`Engine::decode_frame`]. The resulting plan carries the strict
    /// verdict but no salvage-grade damage map.
    FailFast,
    /// Walk the whole body, resynchronising past damage, so the same
    /// plan serves strict, repair and salvage.
    Full,
}

/// One classified byte range of a [`FramePlan`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum PlanEntry<'a> {
    /// A CRC-valid data segment within the decode allocation budget.
    Data {
        /// The parsed (already CRC-verified) segment.
        seg: ParsedSegment<'a>,
        /// The bytes it occupies (header + payload).
        byte_range: Range<usize>,
    },
    /// A CRC-valid data segment whose decode would bust the running
    /// [`DecodeLimits::max_total_alloc`] budget — strict decode rejects
    /// the frame, salvage erases this range instead of decoding it.
    OverBudget {
        /// The parsed segment (not decoded — too expensive).
        seg: ParsedSegment<'a>,
        /// The bytes it occupies.
        byte_range: Range<usize>,
    },
    /// A CRC-valid v3 parity shard (contributes no output trits; feeds
    /// the repair rung).
    Parity {
        /// The parsed parity shard.
        par: ParsedParity<'a>,
        /// The bytes it occupies (header + shard).
        byte_range: Range<usize>,
    },
    /// A byte range that could not be parsed as a valid segment, up to
    /// the resynchronisation point.
    Damaged {
        /// The bytes written off.
        byte_range: Range<usize>,
        /// The `source_trits` field the (untrusted) header claimed, if
        /// the 16 header bytes were at least present. Parity headers
        /// carry no source trits — their claim is zero.
        claimed_source_trits: Option<usize>,
        /// The verbatim parse error, exactly as [`frame::segment_at`] /
        /// [`frame::parity_at`] reported it.
        error: FrameError,
    },
}

impl<'a> PlanEntry<'a> {
    /// The byte range this entry covers.
    #[must_use]
    pub fn byte_range(&self) -> Range<usize> {
        match self {
            PlanEntry::Data { byte_range, .. }
            | PlanEntry::OverBudget { byte_range, .. }
            | PlanEntry::Parity { byte_range, .. }
            | PlanEntry::Damaged { byte_range, .. } => byte_range.clone(),
        }
    }

    /// The equivalent fault-tolerant scan classification.
    fn to_scan_entry(&self) -> ScanEntry<'a> {
        match self {
            PlanEntry::Data { seg, byte_range } => ScanEntry::Intact {
                seg: *seg,
                byte_range: byte_range.clone(),
            },
            PlanEntry::OverBudget { seg, byte_range } => ScanEntry::Damaged {
                byte_range: byte_range.clone(),
                claimed_source_trits: Some(seg.source_trits),
                reason: DamageReason::LimitExceeded("total decode allocation"),
            },
            PlanEntry::Parity { par, byte_range } => ScanEntry::Parity {
                par: *par,
                byte_range: byte_range.clone(),
            },
            PlanEntry::Damaged {
                byte_range,
                claimed_source_trits,
                error,
            } => ScanEntry::Damaged {
                byte_range: byte_range.clone(),
                claimed_source_trits: *claimed_source_trits,
                reason: DamageReason::from_frame_error(error.clone()),
            },
        }
    }
}

/// A frame's complete decode plan: every body byte classified in one
/// header/CRC scan pass, plus the strict verdict the eager parser would
/// have reported. Built by [`Engine::build_plan`], consumed by
/// [`Engine::execute_plan`] at any [`Policy`].
#[derive(Debug, Clone)]
pub struct FramePlan<'a> {
    pub(crate) bytes: &'a [u8],
    pub(crate) table_lengths: [u8; 9],
    pub(crate) source_len: usize,
    pub(crate) claimed_segments: usize,
    pub(crate) version: u8,
    pub(crate) parity_g: u8,
    pub(crate) parity_r: u8,
    pub(crate) limits: DecodeLimits,
    pub(crate) entries: Vec<PlanEntry<'a>>,
    pub(crate) strict_error: Option<FrameError>,
}

impl<'a> FramePlan<'a> {
    /// The frame bytes the plan indexes into.
    #[must_use]
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// Codeword lengths of C1..C9, as stored in the (CRC-valid) header.
    #[must_use]
    pub fn table_lengths(&self) -> [u8; 9] {
        self.table_lengths
    }

    /// Total source trits the header claims.
    #[must_use]
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// Data-segment count the header claims.
    #[must_use]
    pub fn claimed_segments(&self) -> usize {
        self.claimed_segments
    }

    /// Frame version byte ([`frame::VERSION`] or [`frame::VERSION_V3`]).
    #[must_use]
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Data segments per parity group (0 = unprotected / v2 frame).
    #[must_use]
    pub fn parity_g(&self) -> u8 {
        self.parity_g
    }

    /// Parity segments per group.
    #[must_use]
    pub fn parity_r(&self) -> u8 {
        self.parity_r
    }

    /// The [`DecodeLimits`] the plan was built under.
    #[must_use]
    pub fn limits(&self) -> &DecodeLimits {
        &self.limits
    }

    /// The classified byte ranges, in stream order.
    #[must_use]
    pub fn entries(&self) -> &[PlanEntry<'a>] {
        &self.entries
    }

    /// The typed error a strict ([`frame::parse_limited`]-shaped) parse
    /// of these bytes reports, or `None` when the frame is strictly
    /// valid.
    #[must_use]
    pub fn strict_error(&self) -> Option<&FrameError> {
        self.strict_error.as_ref()
    }

    /// Number of intact data segments in the plan.
    #[must_use]
    pub fn intact_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e, PlanEntry::Data { .. }))
            .count()
    }

    /// Number of parity groups the header geometry implies.
    #[must_use]
    pub fn groups(&self) -> usize {
        frame::group_count(self.claimed_segments, self.parity_g)
    }

    /// Total parity segments the header geometry implies.
    #[must_use]
    pub fn claimed_parity_segments(&self) -> usize {
        self.groups() * self.parity_r as usize
    }

    /// The plan viewed as a fault-tolerant salvage scan (the legacy
    /// [`frame::scan_salvage`] shape — now a thin view over the plan).
    #[must_use]
    pub(crate) fn to_scan(&self) -> SalvageScan<'a> {
        SalvageScan {
            table_lengths: self.table_lengths,
            source_len: self.source_len,
            claimed_segments: self.claimed_segments,
            parity_g: self.parity_g,
            parity_r: self.parity_r,
            entries: self.entries.iter().map(PlanEntry::to_scan_entry).collect(),
        }
    }
}

/// Strict-decode resource bookkeeping shared by the plan walk and the
/// streaming reader: the running allocation budget and covered-trits
/// total, charged in exactly [`frame::parse_limited`]'s order.
pub(crate) struct StrictState {
    alloc_budget: usize,
    covered: usize,
    max_total_alloc: usize,
}

impl StrictState {
    pub(crate) fn new(source_len: usize, limits: &DecodeLimits) -> Self {
        Self {
            alloc_budget: frame::trit_alloc_bytes(source_len),
            covered: 0,
            max_total_alloc: limits.max_total_alloc,
        }
    }

    /// Charges one data segment's decode allocation (output + scratch)
    /// against the budget.
    pub(crate) fn charge_data(
        &mut self,
        source_trits: usize,
        payload_trits: usize,
    ) -> Result<(), FrameError> {
        self.alloc_budget = self
            .alloc_budget
            .saturating_add(frame::trit_alloc_bytes(source_trits))
            .saturating_add(frame::trit_alloc_bytes(payload_trits));
        self.check_budget()
    }

    /// Charges one parity shard's bytes against the budget.
    pub(crate) fn charge_parity(&mut self, shard_bytes: usize) -> Result<(), FrameError> {
        self.alloc_budget = self.alloc_budget.saturating_add(shard_bytes);
        self.check_budget()
    }

    fn check_budget(&self) -> Result<(), FrameError> {
        if self.alloc_budget > self.max_total_alloc {
            return Err(FrameError::LimitExceeded {
                what: "total decode allocation",
                requested: self.alloc_budget,
                limit: self.max_total_alloc,
            });
        }
        Ok(())
    }

    /// [`charge_data`](Self::charge_data) plus the covered-trits
    /// accumulation, overflow-checked and attributed like the strict
    /// parser's data loop.
    fn on_data(
        &mut self,
        source_trits: usize,
        payload_trits: usize,
        segment: usize,
    ) -> Result<(), FrameError> {
        self.charge_data(source_trits, payload_trits)?;
        self.covered = self
            .covered
            .checked_add(source_trits)
            .ok_or(FrameError::Malformed {
                segment,
                what: "segment source lengths overflow",
            })?;
        Ok(())
    }

    fn covered(&self) -> usize {
        self.covered
    }
}

/// The error [`frame::segment_at`] reports on parity-marker bytes in a
/// data-segment slot: the marker's trailing group bytes hit the
/// reserved-bytes check first, then the odd sentinel `K`.
fn marker_in_data_slot(bytes: &[u8], at: usize, segment: usize) -> FrameError {
    let reserved_nonzero = bytes
        .get(at + 2..at + 4)
        .is_some_and(|b| b.iter().any(|&x| x != 0));
    if reserved_nonzero {
        FrameError::Malformed {
            segment,
            what: "reserved segment-header bytes are nonzero",
        }
    } else {
        FrameError::Malformed {
            segment,
            what: "segment block size must be even and at least 4",
        }
    }
}

/// Replays [`frame::parse_limited`]'s validation order over plan entries
/// as the walk produces them, pinning the strict verdict without a
/// second pass. Every check and its attribution mirrors the eager
/// parser check-for-check.
struct StrictTracker {
    n: usize,
    p: usize,
    r: usize,
    groups: usize,
    source_len: usize,
    v3: bool,
    state: StrictState,
    /// Strict slot of the next entry: data for `0..n`, parity for
    /// `n..n + p`, trailing beyond.
    pos: usize,
    verdict: Option<FrameError>,
}

impl StrictTracker {
    fn new(bytes_len: usize, head: &frame::FileHeader, limits: &DecodeLimits) -> Self {
        let n = head.claimed_segments;
        let p = head.parity_segments();
        // Bomb check: each claimed segment needs at least a 16-byte
        // header in the body — same precondition the eager parser
        // enforces before allocating.
        let body = bytes_len - head.header_bytes;
        let verdict = match n
            .checked_add(p)
            .and_then(|t| t.checked_mul(frame::SEGMENT_HEADER_BYTES))
        {
            Some(need) if need <= body => None,
            _ => Some(FrameError::Truncated { offset: bytes_len }),
        };
        Self {
            n,
            p,
            r: (head.parity_r as usize).max(1),
            groups: head.groups(),
            source_len: head.source_len,
            v3: head.version == frame::VERSION_V3,
            state: StrictState::new(head.source_len, limits),
            pos: 0,
            verdict,
        }
    }

    fn verdict(&self) -> Option<&FrameError> {
        self.verdict.as_ref()
    }

    fn check_covered(&self) -> Result<(), FrameError> {
        if self.state.covered() != self.source_len {
            return Err(FrameError::Malformed {
                segment: self.n,
                what: "segment source lengths do not sum to the header total",
            });
        }
        Ok(())
    }

    fn has_marker(&self, bytes: &[u8], at: usize) -> bool {
        bytes.get(at..at + 2) == Some(&frame::PARITY_MARKER.to_le_bytes())
    }

    fn header_fits(bytes: &[u8], at: usize) -> bool {
        at.checked_add(frame::SEGMENT_HEADER_BYTES)
            .is_some_and(|end| end <= bytes.len())
    }

    fn on_entry(&mut self, bytes: &[u8], entry: &PlanEntry<'_>) {
        if self.verdict.is_some() {
            return;
        }
        if self.pos == self.n {
            // Crossing from the data region: the source-length sum is
            // checked before the first parity (or trailing) entry.
            if let Err(e) = self.check_covered() {
                self.verdict = Some(e);
                return;
            }
        }
        let segment = self.pos;
        if segment < self.n {
            match entry {
                PlanEntry::Data { seg, .. } | PlanEntry::OverBudget { seg, .. } => {
                    if let Err(e) = self
                        .state
                        .on_data(seg.source_trits, seg.payload_trits, segment)
                    {
                        self.verdict = Some(e);
                        return;
                    }
                }
                PlanEntry::Parity { byte_range, .. } => {
                    // A valid parity shard where the strict parser runs
                    // `segment_at`: the marker bytes fail its checks.
                    self.verdict = Some(marker_in_data_slot(bytes, byte_range.start, segment));
                    return;
                }
                PlanEntry::Damaged {
                    byte_range, error, ..
                } => {
                    let start = byte_range.start;
                    self.verdict = if self.v3
                        && self.has_marker(bytes, start)
                        && Self::header_fits(bytes, start)
                    {
                        // The walk parsed this with `parity_at`; the
                        // strict data loop would have run `segment_at`.
                        Some(marker_in_data_slot(bytes, start, segment))
                    } else {
                        Some(error.clone())
                    };
                    return;
                }
            }
        } else if segment < self.n + self.p {
            match entry {
                PlanEntry::Parity { par, .. } => {
                    if let Err(e) = self.state.charge_parity(par.payload.len()) {
                        self.verdict = Some(e);
                        return;
                    }
                    let slot = segment - self.n;
                    if par.group != slot / self.r
                        || par.pindex != slot % self.r
                        || par.group >= self.groups
                    {
                        self.verdict = Some(FrameError::Malformed {
                            segment,
                            what: "parity segment out of (group, pindex) order",
                        });
                        return;
                    }
                }
                PlanEntry::Data { .. } | PlanEntry::OverBudget { .. } => {
                    self.verdict = Some(FrameError::Malformed {
                        segment,
                        what: "not a parity segment (missing marker)",
                    });
                    return;
                }
                PlanEntry::Damaged {
                    byte_range, error, ..
                } => {
                    let start = byte_range.start;
                    self.verdict = if !Self::header_fits(bytes, start) {
                        Some(FrameError::Truncated { offset: start })
                    } else if !self.has_marker(bytes, start) {
                        Some(FrameError::Malformed {
                            segment,
                            what: "not a parity segment (missing marker)",
                        })
                    } else {
                        // The walk already ran `parity_at` here — its
                        // verbatim error is the strict parser's too.
                        Some(error.clone())
                    };
                    return;
                }
            }
        } else {
            self.verdict = Some(FrameError::Malformed {
                segment: self.n,
                what: "trailing bytes after the last segment",
            });
            return;
        }
        self.pos += 1;
    }

    /// The verdict once the walk reaches the end of the input.
    fn finish(mut self, bytes_len: usize) -> Option<FrameError> {
        if let Some(v) = self.verdict.take() {
            return Some(v);
        }
        if self.pos < self.n {
            // The strict data loop would parse at end-of-input next.
            return Some(FrameError::Truncated { offset: bytes_len });
        }
        if self.pos == self.n {
            if let Err(e) = self.check_covered() {
                return Some(e);
            }
        }
        if self.pos < self.n + self.p {
            return Some(FrameError::Truncated { offset: bytes_len });
        }
        None
    }
}

/// Builds a [`FramePlan`] in one header/CRC scan pass over `bytes`.
///
/// # Errors
///
/// Only file-level problems are fatal — bad magic, short or CRC-invalid
/// file header, unsupported version, file-level bomb claims, and (in
/// [`BuildMode::Full`]) an exhausted scan or resync-probe budget.
/// Segment-level damage lands in the plan, never in an `Err`.
pub(crate) fn build<'a>(
    bytes: &'a [u8],
    limits: &DecodeLimits,
    mode: BuildMode,
) -> Result<FramePlan<'a>, FrameError> {
    let head = match frame::parse_file_header(bytes, limits) {
        Ok(h) => h,
        Err(e) => {
            frame::publish_failure_metrics(&e);
            return Err(e);
        }
    };
    crate::metrics::publish_scan_passes(1);
    let v3 = head.version == frame::VERSION_V3;
    let fail_fast = mode == BuildMode::FailFast;
    let mut tracker = StrictTracker::new(bytes.len(), &head, limits);
    let mut entries: Vec<PlanEntry<'a>> = Vec::new();
    // The walk's own allocation budget for classifying over-budget
    // segments. Unlike the tracker's strict budget it keeps running past
    // damage — salvage skips expensive segments individually.
    let mut walk_budget = frame::trit_alloc_bytes(head.source_len);
    let scan_cap = limits
        .max_segments
        .saturating_add(head.parity_segments().min(limits.max_segments));
    let mut at = head.header_bytes;
    while at < bytes.len() {
        if fail_fast && tracker.verdict().is_some() {
            // The strict verdict is fixed; nothing downstream needs the
            // rest of the walk.
            break;
        }
        if !fail_fast && entries.len() >= scan_cap {
            let e = FrameError::LimitExceeded {
                what: "scanned segment count",
                requested: entries.len() + 1,
                limit: scan_cap,
            };
            frame::publish_failure_metrics(&e);
            return Err(e);
        }
        let index = entries.len();
        let is_parity = v3 && bytes.get(at..at + 2) == Some(&frame::PARITY_MARKER.to_le_bytes());
        let result = if is_parity {
            match frame::parity_at(bytes, at, index, limits) {
                Ok((par, next)) => {
                    let entry = PlanEntry::Parity {
                        par,
                        byte_range: at..next,
                    };
                    tracker.on_entry(bytes, &entry);
                    entries.push(entry);
                    at = next;
                    continue;
                }
                Err(e) => Err(e),
            }
        } else {
            frame::segment_at(bytes, at, index, limits)
        };
        match result {
            Ok((seg, next)) => {
                let add = frame::trit_alloc_bytes(seg.source_trits)
                    .saturating_add(frame::trit_alloc_bytes(seg.payload_trits));
                let entry = if walk_budget.saturating_add(add) > limits.max_total_alloc {
                    // Too expensive to decode — classified, not charged.
                    if !fail_fast {
                        crate::metrics::publish_limit_rejections(1);
                        ninec_obs::trace_instant(
                            "over_budget",
                            u32::try_from(index).unwrap_or(u32::MAX),
                            ninec_obs::RungKind::None,
                            ninec_obs::TracePayload::None,
                        );
                    }
                    PlanEntry::OverBudget {
                        seg,
                        byte_range: at..next,
                    }
                } else {
                    walk_budget = walk_budget.saturating_add(add);
                    PlanEntry::Data {
                        seg,
                        byte_range: at..next,
                    }
                };
                tracker.on_entry(bytes, &entry);
                entries.push(entry);
                at = next;
            }
            Err(e) => {
                if !fail_fast {
                    frame::publish_failure_metrics(&e);
                }
                // The header fields are untrusted but still useful as a
                // *claim* for sizing the erasure run.
                let claimed = if is_parity {
                    Some(0)
                } else {
                    frame::le_u32(bytes, at + 4).map(|v| v as usize)
                };
                let resync = if fail_fast {
                    // No probing: the verdict below ends the walk.
                    bytes.len()
                } else {
                    match frame::find_resync(bytes, at, v3, limits) {
                        Ok(r) => r,
                        Err(e2) => {
                            frame::publish_failure_metrics(&e2);
                            return Err(e2);
                        }
                    }
                };
                if !fail_fast {
                    // The per-segment CRC verdict and the resync probe it
                    // forced, on the flight-recorder timeline.
                    ninec_obs::trace_instant(
                        "crc_verdict",
                        u32::try_from(index).unwrap_or(u32::MAX),
                        ninec_obs::RungKind::None,
                        ninec_obs::TracePayload::Crc {
                            ok: false,
                            claimed_trits: u32::try_from(claimed.unwrap_or(0)).unwrap_or(u32::MAX),
                        },
                    );
                    ninec_obs::trace_instant(
                        "resync",
                        u32::try_from(index).unwrap_or(u32::MAX),
                        ninec_obs::RungKind::None,
                        ninec_obs::TracePayload::Resync {
                            from: u32::try_from(at).unwrap_or(u32::MAX),
                            to: u32::try_from(resync).unwrap_or(u32::MAX),
                        },
                    );
                }
                let entry = PlanEntry::Damaged {
                    byte_range: at..resync,
                    claimed_source_trits: claimed,
                    error: e,
                };
                tracker.on_entry(bytes, &entry);
                entries.push(entry);
                at = resync;
            }
        }
    }
    let strict_error = tracker.finish(bytes.len());
    if fail_fast {
        // The fail-fast build reports health metrics like the eager
        // parser: once, for the final verdict. (The full walk publishes
        // per damaged range instead, like the salvage scan always did.)
        if let Some(e) = &strict_error {
            frame::publish_failure_metrics(e);
        }
    }
    Ok(FramePlan {
        bytes,
        table_lengths: head.table_lengths,
        source_len: head.source_len,
        claimed_segments: head.claimed_segments,
        version: head.version,
        parity_g: head.parity_g,
        parity_r: head.parity_r,
        limits: *limits,
        entries,
        strict_error,
    })
}

/// Executes the strict rung against a plan: fail closed on the strict
/// verdict, otherwise decode the `Data` entries concurrently — the CRC
/// verdicts are already in the plan, so nothing is scanned twice.
pub(crate) fn execute_strict(
    engine: &Engine,
    plan: &FramePlan<'_>,
) -> Result<SalvageReport, DecodeError> {
    if let Some(e) = &plan.strict_error {
        return Err(e.clone().into());
    }
    let table = CodeTable::from_lengths(&plan.table_lengths).map_err(|_| FrameError::BadTable)?;
    // A strictly valid plan is exactly `n` data entries followed by the
    // parity segments, so the data ordinal equals the segment index.
    let segs: Vec<&ParsedSegment<'_>> = plan
        .entries
        .iter()
        .filter_map(|e| match e {
            PlanEntry::Data { seg, .. } => Some(seg),
            _ => None,
        })
        .collect();
    let results =
        pool::cancellable_map_indexed(engine.threads(), segs.len(), engine.cancel(), |i| {
            let _seg_span = ninec_obs::trace_span_scope(
                "segment_decode",
                u32::try_from(i).unwrap_or(u32::MAX),
                ninec_obs::TracePayload::None,
            );
            engine.decode_one_segment(segs[i], i, &table)
        });
    let mut parts = Vec::with_capacity(results.len());
    let mut first_err: Option<DecodeError> = None;
    let mut panics = 0u64;
    let mut cancelled = 0u64;
    for (i, r) in results.into_iter().enumerate() {
        match r {
            pool::JobOutcome::Done(Ok(seg_out)) => parts.push(seg_out),
            pool::JobOutcome::Done(Err(e)) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
            pool::JobOutcome::Panicked(_) => {
                panics += 1;
                if first_err.is_none() {
                    first_err = Some(DecodeError::WorkerPanicked { segment: i });
                }
            }
            pool::JobOutcome::Cancelled => cancelled += 1,
        }
    }
    crate::metrics::publish_worker_panics(panics);
    crate::metrics::publish_cancelled_jobs(cancelled);
    if cancelled > 0 {
        // Cancellation beats per-segment errors in the strict verdict:
        // the caller asked us to stop, so say so — with the trip cause
        // (deadline vs explicit hang-up) typed.
        let trip = engine
            .cancel()
            .and_then(cancel::CancelToken::trip)
            .unwrap_or(cancel::Trip::Cancelled);
        return Err(trip.decode_error());
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let mut trits = TritVec::with_capacity(plan.source_len);
    for seg_out in &parts {
        trits.extend_from_tritvec(seg_out);
    }
    let total = parts.len();
    Ok(SalvageReport {
        trits,
        recovered_segments: total,
        total_segments: total,
        damaged: Vec::new(),
    })
}

impl Engine {
    /// Builds the complete decode plan for a `9CSF` frame in **one**
    /// header/CRC scan pass: every body byte classified, parity
    /// membership resolved, and the strict verdict pinned. Feed the plan
    /// to [`execute_plan`](Engine::execute_plan) — running the whole
    /// strict → repair → salvage ladder against one plan costs exactly
    /// one scan pass (the `ninec.frame.scan_passes` counter proves it).
    ///
    /// # Errors
    ///
    /// Only file-level problems: bad magic, a short or CRC-invalid file
    /// header, an unsupported version, file-level
    /// [`DecodeError::LimitExceeded`] bombs (including an exhausted
    /// resync-probe budget). Segment-level damage lands in the plan.
    pub fn build_plan<'a>(&self, bytes: &'a [u8]) -> Result<FramePlan<'a>, DecodeError> {
        let _span = ninec_obs::span("engine_build_plan");
        build(bytes, self.limits(), BuildMode::Full).map_err(DecodeError::from)
    }

    /// Executes one rung of the decode ladder against a plan built by
    /// [`build_plan`](Engine::build_plan) — without re-scanning the
    /// frame. [`Policy::Strict`] fails closed exactly like
    /// [`decode_frame`](Engine::decode_frame); [`Policy::Repair`] and
    /// [`Policy::Salvage`] behave like
    /// [`decode_frame_repair`](Engine::decode_frame_repair) /
    /// [`decode_frame_salvage`](Engine::decode_frame_salvage).
    ///
    /// # Errors
    ///
    /// [`Policy::Strict`]: the plan's strict verdict or any per-segment
    /// decode failure. [`Policy::Repair`] / [`Policy::Salvage`]: only a
    /// Kraft-invalid stored code table — everything else degrades into
    /// the report's damage map.
    pub fn execute_plan(
        &self,
        plan: &FramePlan<'_>,
        policy: Policy,
    ) -> Result<SalvageReport, DecodeError> {
        let _span = ninec_obs::span("engine_execute_plan");
        match policy {
            Policy::Strict => execute_strict(self, plan),
            Policy::Repair => super::salvage::execute(self, plan, true),
            Policy::Salvage => super::salvage::execute(self, plan, false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::frame::{HEADER_BYTES, HEADER_BYTES_V3, SEGMENT_HEADER_BYTES};

    fn tv(s: &str) -> TritVec {
        s.parse().expect("valid trit literal")
    }

    fn sample_stream() -> TritVec {
        tv(&"0X0X01X001X0101X111111110000X1111X0110XX".repeat(12))
    }

    fn engine() -> Engine {
        Engine::builder().threads(2).segment_bits(64).build()
    }

    fn v3_engine(g: u8, r: u8) -> Engine {
        Engine::builder()
            .threads(2)
            .segment_bits(64)
            .parity(g, r)
            .build()
    }

    /// The strict verdict of a plan build (either mode), folded with the
    /// build's own fatal errors so it compares 1:1 against
    /// `parse_limited`'s result.
    fn plan_verdict(bytes: &[u8], mode: BuildMode) -> Option<String> {
        match build(bytes, &DecodeLimits::default(), mode) {
            Ok(plan) => plan.strict_error.map(|e| e.to_string()),
            Err(e) => Some(e.to_string()),
        }
    }

    fn parse_verdict(bytes: &[u8]) -> Option<String> {
        frame::parse_limited(bytes, &DecodeLimits::default())
            .err()
            .map(|e| e.to_string())
    }

    #[test]
    fn clean_frames_plan_with_no_strict_error() {
        let stream = sample_stream();
        for e in [engine(), v3_engine(4, 1)] {
            let bytes = e.encode_frame(8, &stream).expect("valid K");
            let plan = e.build_plan(&bytes).expect("plans");
            assert!(plan.strict_error().is_none());
            let parsed = frame::parse(&bytes).expect("parses");
            assert_eq!(plan.intact_count(), parsed.segments.len());
            assert_eq!(
                plan.entries().len(),
                parsed.segments.len() + parsed.parity.len()
            );
            // Strict execution against the plan matches decode_frame.
            let report = e.execute_plan(&plan, Policy::Strict).expect("decodes");
            assert_eq!(report.trits, e.decode_frame(&bytes).expect("decodes"));
            assert!(report.damaged.is_empty());
        }
    }

    #[test]
    fn strict_verdict_matches_parse_limited_on_every_single_byte_mutation() {
        let stream = sample_stream();
        for e in [engine(), v3_engine(2, 1)] {
            let bytes = e.encode_frame(8, &stream).expect("valid K");
            for flip in [0x01u8, 0xFF] {
                for i in 0..bytes.len() {
                    let mut bad = bytes.clone();
                    bad[i] ^= flip;
                    let want = parse_verdict(&bad);
                    for mode in [BuildMode::FailFast, BuildMode::Full] {
                        assert_eq!(
                            plan_verdict(&bad, mode),
                            want,
                            "byte {i} flip {flip:#04x} mode {mode:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strict_verdict_matches_parse_limited_on_every_truncation() {
        let stream = sample_stream();
        for e in [engine(), v3_engine(2, 1)] {
            let bytes = e.encode_frame(8, &stream).expect("valid K");
            for cut in 0..bytes.len() {
                let want = parse_verdict(&bytes[..cut]);
                for mode in [BuildMode::FailFast, BuildMode::Full] {
                    assert_eq!(
                        plan_verdict(&bytes[..cut], mode),
                        want,
                        "cut {cut} {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn one_plan_drives_the_whole_ladder() {
        let stream = sample_stream();
        let e = v3_engine(4, 1);
        let bytes = e.encode_frame(8, &stream).expect("valid K");
        let clean = e.decode_frame(&bytes).expect("decodes");
        let mut bad = bytes.clone();
        bad[HEADER_BYTES_V3 + SEGMENT_HEADER_BYTES] ^= 0x55;
        // Build once; strict fails, repair on the same plan is bit-exact.
        let plan = e.build_plan(&bad).expect("plans");
        assert!(matches!(
            e.execute_plan(&plan, Policy::Strict),
            Err(DecodeError::Frame(FrameError::BadCrc { segment: 0 }))
        ));
        let repaired = e.execute_plan(&plan, Policy::Repair).expect("repairs");
        assert!(repaired.is_full_recovery());
        assert_eq!(repaired.trits, clean);
        assert_eq!(repaired.repaired_segments(), 1);
        // Salvage from the same plan erases instead.
        let salvaged = e.execute_plan(&plan, Policy::Salvage).expect("salvages");
        assert!(!salvaged.is_full_recovery());
        assert_eq!(salvaged.trits.len(), clean.len());
    }

    #[test]
    fn fail_fast_build_stops_at_the_first_damage() {
        let stream = sample_stream();
        let e = engine();
        let bytes = e.encode_frame(8, &stream).expect("valid K");
        let mut bad = bytes.clone();
        bad[HEADER_BYTES + SEGMENT_HEADER_BYTES] ^= 0x55;
        let fast = build(&bad, &DecodeLimits::default(), BuildMode::FailFast).expect("plans");
        assert_eq!(fast.entries.len(), 1, "stops at the damaged entry");
        assert!(matches!(
            fast.strict_error,
            Some(FrameError::BadCrc { segment: 0 })
        ));
        let full = build(&bad, &DecodeLimits::default(), BuildMode::Full).expect("plans");
        assert!(full.entries.len() > 1, "full walk resynchronises");
        assert_eq!(fast.strict_error, full.strict_error);
    }

    #[test]
    fn scan_view_classifies_like_the_plan() {
        let stream = sample_stream();
        let e = v3_engine(4, 1);
        let bytes = e.encode_frame(8, &stream).expect("valid K");
        let mut bad = bytes.clone();
        bad[HEADER_BYTES_V3 + SEGMENT_HEADER_BYTES] ^= 0x55;
        let plan = e.build_plan(&bad).expect("plans");
        let scan = plan.to_scan();
        assert_eq!(scan.entries.len(), plan.entries().len());
        assert_eq!(scan.intact_count(), plan.intact_count());
        assert!(matches!(
            scan.entries[0],
            ScanEntry::Damaged {
                reason: DamageReason::BadCrc,
                ..
            }
        ));
    }
}

//! Deterministic fault-injection points for the engine's decode path.
//!
//! A [`FailPoint`] names a *site* (`seg`, the per-segment decode task,
//! or `arc`, the archive append write path), an optional index (`*`
//! matches every index) and an [`Action`] to take when the site is hit:
//!
//! - `panic` — the worker task panics (exercises the pool's panic
//!   isolation and [`crate::decode::DecodeError::WorkerPanicked`]);
//! - `delay[:millis]` — the task sleeps first (exercises scheduling /
//!   merge ordering under skew; default 1 ms);
//! - `corrupt` — the task's decoded output has its first trit flipped
//!   *after* a successful decode (a torn write: CRC passed, output is
//!   silently wrong — what downstream verification must catch);
//! - `kill` — (site `arc` only) the archive append stops dead once the
//!   armed byte boundary is crossed, leaving exactly `index` bytes of
//!   the append on disk — a deterministic stand-in for `kill -9` used
//!   by the torn-append harness to prove the previous index epoch
//!   stays fully readable.
//!
//! Fail points are configured **per [`Engine`](crate::engine::Engine)**,
//! not process-globally, so concurrently running tests can never arm each
//! other's faults. Two ways in, both only with the `failpoints` cargo
//! feature:
//!
//! - [`EngineBuilder::failpoint`](crate::engine::EngineBuilder::failpoint)
//!   in code, or
//! - the [`ENV`] environment variable (`NINEC_FAILPOINT`), parsed once at
//!   [`build`](crate::engine::EngineBuilder::build) time with the spec
//!   grammar below.
//!
//! ```text
//! spec     := point (';' point)*
//! point    := site ':' index ':' action
//! site     := "seg" | "arc"
//! index    := decimal | '*'
//! action   := "panic" | "delay" (':' millis)? | "corrupt" | "kill"
//! ```
//!
//! e.g. `NINEC_FAILPOINT='seg:3:panic'` or `seg:*:delay:5;seg:0:corrupt`.
//!
//! Without the `failpoints` feature nothing can arm a fail point, so the
//! production decode path never fires one; the parser and types stay
//! compiled (they are inert data) to keep the surface testable.

use std::fmt;

/// Environment variable holding a fail-point spec, read at
/// `EngineBuilder::build` when the `failpoints` feature is enabled.
pub const ENV: &str = "NINEC_FAILPOINT";

/// The per-segment decode site name.
pub const SITE_SEG: &str = "seg";

/// The archive append write-path site name. The fail-point *index* is
/// the byte boundary (within one append's writes to the `9ca` data
/// file) past which a [`Action::Kill`] point stops the process's
/// writes, simulating a crash at exactly that offset.
pub const SITE_ARC: &str = "arc";

/// What an armed fail point does when hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Panic inside the worker task.
    Panic,
    /// Sleep before doing the work.
    Delay {
        /// Sleep duration in milliseconds.
        millis: u64,
    },
    /// Flip the first trit of the task's output after a successful
    /// decode (simulates a torn write past the CRC check).
    Corrupt,
    /// Stop an archive append dead at the armed byte boundary: bytes up
    /// to the boundary reach the data file, nothing after does, and the
    /// append returns a torn-write error without ever committing a new
    /// index epoch (simulates `kill -9` mid-append).
    Kill,
}

/// One armed fault-injection point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailPoint {
    /// Site name (today always [`SITE_SEG`]).
    pub site: String,
    /// Segment index to fire on; `None` fires on every index (`*`).
    pub index: Option<usize>,
    /// What to do when hit.
    pub action: Action,
}

impl FailPoint {
    /// `true` when this point covers `site`/`index`.
    #[must_use]
    pub fn matches(&self, site: &str, index: usize) -> bool {
        self.site == site && self.index.is_none_or(|want| want == index)
    }
}

/// First armed action covering `site`/`index`, if any.
#[must_use]
pub fn fire<'a>(points: &'a [FailPoint], site: &str, index: usize) -> Option<&'a Action> {
    points
        .iter()
        .find(|p| p.matches(site, index))
        .map(|p| &p.action)
}

/// A malformed fail-point spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The offending spec fragment.
    pub fragment: String,
    /// What was wrong with it.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fail-point spec {:?}: {}", self.fragment, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Parses a `;`-separated fail-point spec (see the module docs for the
/// grammar). Empty fragments are skipped, so trailing `;` is fine.
///
/// # Errors
///
/// [`ParseError`] naming the first malformed fragment.
pub fn parse_spec(spec: &str) -> Result<Vec<FailPoint>, ParseError> {
    let mut out = Vec::new();
    for fragment in spec.split(';') {
        let fragment = fragment.trim();
        if fragment.is_empty() {
            continue;
        }
        let err = |what| ParseError {
            fragment: fragment.to_string(),
            what,
        };
        let mut parts = fragment.split(':');
        let site = parts.next().unwrap_or_default();
        if site != SITE_SEG && site != SITE_ARC {
            return Err(err("unknown site (expected \"seg\" or \"arc\")"));
        }
        let index = match parts.next() {
            Some("*") => None,
            Some(n) => Some(
                n.parse::<usize>()
                    .map_err(|_| err("index must be a number or '*'"))?,
            ),
            None => return Err(err("missing segment index")),
        };
        let action = match parts.next() {
            Some("panic") => Action::Panic,
            Some("delay") => {
                let millis = match parts.next() {
                    Some(ms) => ms
                        .parse::<u64>()
                        .map_err(|_| err("delay millis must be a number"))?,
                    None => 1,
                };
                Action::Delay { millis }
            }
            Some("corrupt") => Action::Corrupt,
            Some("kill") => Action::Kill,
            _ => {
                return Err(err(
                    "unknown action (panic | delay[:millis] | corrupt | kill)",
                ))
            }
        };
        if matches!(action, Action::Panic | Action::Corrupt | Action::Kill)
            && parts.next().is_some()
        {
            return Err(err("trailing spec components"));
        }
        out.push(FailPoint {
            site: site.to_string(),
            index,
            action,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_points() {
        assert_eq!(
            parse_spec("seg:3:panic").expect("valid"),
            vec![FailPoint {
                site: "seg".into(),
                index: Some(3),
                action: Action::Panic,
            }]
        );
        assert_eq!(
            parse_spec("seg:*:delay").expect("valid"),
            vec![FailPoint {
                site: "seg".into(),
                index: None,
                action: Action::Delay { millis: 1 },
            }]
        );
        assert_eq!(
            parse_spec("seg:0:delay:25").expect("valid"),
            vec![FailPoint {
                site: "seg".into(),
                index: Some(0),
                action: Action::Delay { millis: 25 },
            }]
        );
    }

    #[test]
    fn parses_lists_and_skips_empties() {
        let points = parse_spec("seg:1:panic; seg:*:corrupt;").expect("valid");
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].action, Action::Corrupt);
        assert!(parse_spec("").expect("empty spec is fine").is_empty());
    }

    #[test]
    fn parses_arc_kill_points() {
        assert_eq!(
            parse_spec("arc:47:kill").expect("valid"),
            vec![FailPoint {
                site: "arc".into(),
                index: Some(47),
                action: Action::Kill,
            }]
        );
        assert!(parse_spec("arc:1:kill:now").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "global:1:panic",
            "seg",
            "seg:x:panic",
            "seg:1:explode",
            "seg:1",
            "seg:1:panic:now",
            "seg:1:delay:soon",
        ] {
            let e = parse_spec(bad).expect_err(bad);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn fire_matches_index_and_wildcard() {
        let points = parse_spec("seg:2:panic;seg:*:delay:9").expect("valid");
        assert_eq!(fire(&points, "seg", 2), Some(&Action::Panic));
        assert_eq!(fire(&points, "seg", 7), Some(&Action::Delay { millis: 9 }));
        assert_eq!(fire(&points, "other", 2), None);
        assert_eq!(fire(&[], "seg", 0), None);
    }
}

//! Per-frame decode audit: which ladder rung produced each segment.
//!
//! A [`DecodeAudit`] is the queryable rollup of one audited frame decode
//! ([`crate::session::DecodeSession::decode_frame_audited`]): one
//! [`SegmentAudit`] per output segment naming the rung it resolved on
//! (strict / repaired / salvaged), and — when the flight recorder is
//! compiled in and enabled — the worker that decoded it and the decode
//! wall-clock, recovered from the matching `segment_decode` span pair in
//! the trace.
//!
//! The rung facts come from the [`SalvageReport`]'s damage map, so they
//! are exact in every build; the worker/timing attribution degrades to
//! `None` when tracing is compiled out (`--no-default-features`) or the
//! runtime kill switch is off.

use crate::engine::frame::DamageReason;
use crate::engine::salvage::SalvageReport;
use std::collections::HashMap;
use std::fmt;

/// The decode-ladder rung one segment resolved on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum SegmentRung {
    /// The segment decoded strictly: CRC-valid on the wire, payload
    /// decoded first try.
    Strict,
    /// The segment was damaged on the wire but rebuilt byte-exactly from
    /// its parity group before decoding.
    Repaired {
        /// Parity group that reconstructed the segment.
        group: usize,
        /// Parity shards consumed by the reconstruction.
        parity_used: usize,
    },
    /// The segment could not be recovered; its trits are `X` erasures.
    Salvaged,
}

impl SegmentRung {
    /// Stable lowercase label: `"strict"`, `"repaired"` or `"salvaged"`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SegmentRung::Strict => "strict",
            SegmentRung::Repaired { .. } => "repaired",
            SegmentRung::Salvaged => "salvaged",
        }
    }
}

impl fmt::Display for SegmentRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One segment's line in a [`DecodeAudit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentAudit {
    /// Output-plan segment index (stream order).
    pub index: usize,
    /// The ladder rung the segment resolved on.
    pub rung: SegmentRung,
    /// Worker that ran the segment's final decode, when the flight
    /// recorder captured it.
    pub worker: Option<u32>,
    /// Wall-clock of the segment's final decode in nanoseconds, when the
    /// flight recorder captured it.
    pub nanos: Option<u64>,
}

/// Queryable per-frame audit trail of one audited decode (see the
/// module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeAudit {
    /// Flight-recorder trace id the decode ran under (0 when tracing is
    /// compiled out).
    pub trace: u64,
    /// One entry per output segment, in stream order.
    pub segments: Vec<SegmentAudit>,
}

impl DecodeAudit {
    /// Builds the audit for `report`, attributing workers and timings
    /// from the flight recorder's current contents filtered to `trace`.
    ///
    /// When the same segment was decoded more than once (a strict
    /// attempt that failed, then the salvage rung), the **last** span
    /// pair wins — that is the decode whose output the report contains.
    #[must_use]
    pub fn collect(trace: u64, report: &SalvageReport) -> Self {
        let mut segments: Vec<SegmentAudit> = (0..report.total_segments)
            .map(|index| SegmentAudit {
                index,
                rung: SegmentRung::Strict,
                worker: None,
                nanos: None,
            })
            .collect();
        for d in &report.damaged {
            if let Some(slot) = segments.get_mut(d.index) {
                slot.rung = match d.reason {
                    DamageReason::RepairedBy { group, parity_used } => {
                        SegmentRung::Repaired { group, parity_used }
                    }
                    _ => SegmentRung::Salvaged,
                };
            }
        }
        // Pair up segment_decode spans from the recorder; events are in
        // seq order, so later pairs overwrite earlier attempts.
        let mut open: HashMap<u64, (u32, u32, u64)> = HashMap::new();
        for ev in ninec_obs::snapshot_trace() {
            if ev.trace != trace || ev.name != "segment_decode" {
                continue;
            }
            match ev.kind {
                ninec_obs::EventKind::SpanStart => {
                    open.insert(ev.span, (ev.segment, ev.worker, ev.nanos));
                }
                ninec_obs::EventKind::SpanEnd => {
                    if let Some((seg, worker, start)) = open.remove(&ev.span) {
                        if let Some(slot) = segments.get_mut(seg as usize) {
                            slot.worker = (worker != ninec_obs::NO_WORKER).then_some(worker);
                            slot.nanos = Some(ev.nanos.saturating_sub(start));
                        }
                    }
                }
                ninec_obs::EventKind::Instant => {}
            }
        }
        DecodeAudit { trace, segments }
    }

    /// Segments that decoded strictly.
    #[must_use]
    pub fn strict_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.rung, SegmentRung::Strict))
            .count()
    }

    /// Segments rebuilt byte-exactly from parity.
    #[must_use]
    pub fn repaired_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.rung, SegmentRung::Repaired { .. }))
            .count()
    }

    /// Segments erased to `X`.
    #[must_use]
    pub fn salvaged_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s.rung, SegmentRung::Salvaged))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::salvage::DamagedSegment;
    use ninec_testdata::trit::TritVec;

    fn report(total: usize, damaged: Vec<DamagedSegment>) -> SalvageReport {
        SalvageReport {
            trits: TritVec::new(),
            recovered_segments: total - damaged.iter().filter(|d| !d.reason.is_repaired()).count(),
            total_segments: total,
            damaged,
        }
    }

    #[test]
    fn rungs_derive_from_the_damage_map() {
        let r = report(
            3,
            vec![
                DamagedSegment {
                    index: 1,
                    byte_range: 0..0,
                    trit_range: 0..0,
                    reason: DamageReason::RepairedBy {
                        group: 2,
                        parity_used: 1,
                    },
                },
                DamagedSegment {
                    index: 2,
                    byte_range: 0..0,
                    trit_range: 0..0,
                    reason: DamageReason::BadCrc,
                },
            ],
        );
        let audit = DecodeAudit::collect(0, &r);
        assert_eq!(audit.segments.len(), 3);
        assert_eq!(audit.segments[0].rung, SegmentRung::Strict);
        assert_eq!(
            audit.segments[1].rung,
            SegmentRung::Repaired {
                group: 2,
                parity_used: 1
            }
        );
        assert_eq!(audit.segments[2].rung, SegmentRung::Salvaged);
        assert_eq!(audit.strict_segments(), 1);
        assert_eq!(audit.repaired_segments(), 1);
        assert_eq!(audit.salvaged_segments(), 1);
    }

    #[test]
    fn rung_labels_are_stable() {
        assert_eq!(SegmentRung::Strict.label(), "strict");
        assert_eq!(
            SegmentRung::Repaired {
                group: 0,
                parity_used: 0
            }
            .to_string(),
            "repaired"
        );
        assert_eq!(SegmentRung::Salvaged.label(), "salvaged");
    }
}

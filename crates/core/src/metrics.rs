//! Metric names and publishing helpers for the codec's telemetry.
//!
//! All metric names the `ninec` crate emits into the
//! [`ninec_obs::global()`] registry are defined here as constants so
//! exporter consumers (CLI `--stats`, `bench_core`'s `OBS_core.json`)
//! can reference them without string drift.
//!
//! Publishing is *batched*: the streaming encoder/decoder tally into
//! plain local structs on the hot path and flush once per run through
//! [`publish_encode`] / histogram helpers here, guarded by
//! [`ninec_obs::runtime_enabled`] — with the `obs` feature off the
//! whole module body compiles to nothing.

use crate::code::{CodeTable, ALL_CASES};
use crate::encode::EncodeStats;

/// Counter: total `K`-bit blocks encoded.
pub const ENCODE_BLOCKS: &str = "ninec.encode.blocks";
/// Counter: total encoded bits `|T_E|` emitted.
pub const ENCODE_BITS: &str = "ninec.encode.encoded_bits";
/// Counter: total source symbols `|T_D|` consumed.
pub const ENCODE_SOURCE_BITS: &str = "ninec.encode.source_bits";
/// Counter: don't-cares that survived into verbatim payload.
pub const ENCODE_LEFTOVER_X: &str = "ninec.encode.leftover_x";
/// Counter name for one case's hits: `ninec.encode.case.C1` … `.C9`.
#[must_use]
pub fn case_counter_name(index: usize) -> String {
    format!("ninec.encode.case.C{}", index + 1)
}
/// Histogram: per-block encoded size (codeword + payload) in bits.
pub const ENCODE_BLOCK_BITS: &str = "ninec.encode.block_bits";
/// Histogram: leftover-X density per run, in percent of `|T_D|`.
pub const ENCODE_LX_PCT: &str = "ninec.encode.leftover_x_pct";
/// Histogram: encoder throughput per run, in Mbit/s of source stream.
pub const ENCODE_THROUGHPUT: &str = "ninec.encode.throughput_mbit_s";

/// Counter: segments completed by engine pool workers.
pub const ENGINE_SEGMENTS: &str = "ninec.engine.segments";
/// Counter: jobs an engine worker stole from a sibling's deque.
pub const ENGINE_STEALS: &str = "ninec.engine.steals";
/// Histogram: wall-clock nanoseconds spent encoding one segment.
pub const ENGINE_SEG_ENCODE_NS: &str = "ninec.engine.segment.encode_ns";
/// Histogram: wall-clock nanoseconds spent decoding one segment.
pub const ENGINE_SEG_DECODE_NS: &str = "ninec.engine.segment.decode_ns";
/// Gauge name for one pool worker's queue depth:
/// `ninec.engine.worker.<i>.queue_depth`.
#[must_use]
pub fn worker_queue_depth_name(worker: usize) -> String {
    format!("ninec.engine.worker.{worker}.queue_depth")
}

/// Counter name for one pool worker's cumulative job run time:
/// `ninec.engine.worker.<i>.busy_ns`.
#[must_use]
pub fn worker_busy_ns_name(worker: usize) -> String {
    format!("ninec.engine.worker.{worker}.busy_ns")
}

/// Flushes one pool worker's cumulative wall-clock job time — the
/// Fig 4c per-decoder load-imbalance number as an aggregate; the flight
/// recorder holds the per-job timeline. Batched once at worker exit.
pub fn publish_worker_busy(worker: usize, nanos: u64) {
    if !ninec_obs::runtime_enabled() || nanos == 0 {
        return;
    }
    ninec_obs::global()
        .counter(&worker_busy_ns_name(worker))
        .add(nanos);
}

/// Publishes one pool worker's current queue depth gauge.
///
/// Called once per segment pop — batched at the segment boundary, never
/// inside the encode/decode hot loop. No-op unless runtime-enabled.
pub fn publish_worker_queue_depth(worker: usize, depth: usize) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    ninec_obs::global()
        .gauge(&worker_queue_depth_name(worker))
        .set(depth as f64);
}

/// Flushes one pool worker's lifetime tallies (`steals`, `done` segments)
/// into the global registry — one batched flush per worker exit.
pub fn publish_pool_worker(steals: u64, done: u64) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    let reg = ninec_obs::global();
    if steals > 0 {
        reg.counter(ENGINE_STEALS).add(steals);
    }
    reg.counter(ENGINE_SEGMENTS).add(done);
}

/// Records one segment's encode latency in nanoseconds.
pub fn publish_segment_encode(nanos: u64) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    ninec_obs::histogram(ENGINE_SEG_ENCODE_NS).record(nanos);
}

/// Records one segment's decode latency in nanoseconds.
pub fn publish_segment_decode(nanos: u64) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    ninec_obs::histogram(ENGINE_SEG_DECODE_NS).record(nanos);
}

/// Counter: 9CSF CRC mismatches (file-header or segment) seen while
/// parsing or salvage-scanning frames.
pub const FRAME_CRC_FAILURES: &str = "ninec.frame.crc_failures";
/// Counter: full header/CRC scan passes over a frame body. One
/// plan-then-execute decode — strict, repair or salvage, or the whole
/// ladder sharing one [`crate::engine::FramePlan`] — costs exactly one
/// pass; the pre-plan ladder cost up to three.
pub const FRAME_SCAN_PASSES: &str = "ninec.frame.scan_passes";
/// Counter: frames or segments rejected by [`crate::engine::DecodeLimits`].
pub const FRAME_LIMIT_REJECTIONS: &str = "ninec.frame.limit_rejections";
/// Counter: segments recovered byte-identically by salvage-mode decode
/// from frames that contained damage.
pub const ENGINE_SALVAGED_SEGMENTS: &str = "ninec.engine.salvaged_segments";
/// Counter: decode worker panics caught by the panic-isolated pool.
pub const ENGINE_WORKER_PANICS: &str = "ninec.engine.worker_panics";
/// Counter: segment jobs abandoned because the caller's
/// [`crate::CancelToken`] tripped (cancel or deadline) mid-decode.
pub const ENGINE_CANCELLED_JOBS: &str = "ninec.engine.cancelled_jobs";

/// Records header/CRC scan passes over a frame body (one per
/// [`crate::engine::FramePlan`] build). Proves the plan-then-execute
/// ladder scans a damaged frame exactly once.
pub fn publish_scan_passes(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(FRAME_SCAN_PASSES).add(n);
}

/// Records CRC verification failures seen on a frame's main parse/scan
/// walk (resync probing never counts — probes are expected to fail).
pub fn publish_crc_failures(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(FRAME_CRC_FAILURES).add(n);
}

/// Records frames/segments rejected by a [`crate::engine::DecodeLimits`]
/// ceiling before any allocation happened.
pub fn publish_limit_rejections(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(FRAME_LIMIT_REJECTIONS).add(n);
}

/// Records intact segments recovered by a salvage decode of a damaged
/// frame (batched once per salvage run; clean frames record nothing).
pub fn publish_salvaged_segments(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ENGINE_SALVAGED_SEGMENTS).add(n);
}

/// Records decode-worker panics caught and isolated by the engine pool.
pub fn publish_worker_panics(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ENGINE_WORKER_PANICS).add(n);
}

/// Records segment jobs abandoned at the cancellation boundary.
pub fn publish_cancelled_jobs(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ENGINE_CANCELLED_JOBS).add(n);
}

/// Counter: damaged segments rebuilt byte-exactly by GF(256) erasure
/// repair (frame v3 parity groups) and accepted after re-CRC.
pub const ECC_REPAIRED_SEGMENTS: &str = "ninec.ecc.repaired_segments";
/// Counter: parity bits emitted by v3 frame encodes (parity segment
/// headers + shard payloads, in bits).
pub const ECC_PARITY_BITS: &str = "ninec.ecc.parity_bits";
/// Counter: damaged segments the repair rung could *not* reconstruct
/// (over-budget erasures, dead parity, failed re-CRC) — these fell
/// through to salvage X-erasure.
pub const ECC_REPAIR_FAILURES: &str = "ninec.ecc.repair_failures";

/// Records segments rebuilt from parity by the repair rung (batched
/// once per repair run; nothing recorded when no repair happened).
pub fn publish_repaired_segments(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ECC_REPAIRED_SEGMENTS).add(n);
}

/// Records the parity overhead (in bits) added to an encoded v3 frame.
pub fn publish_parity_bits(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ECC_PARITY_BITS).add(n);
}

/// Records damaged segments the repair rung failed to reconstruct.
pub fn publish_repair_failures(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ECC_REPAIR_FAILURES).add(n);
}

/// Counter: segments whose CRC (and, where grouped, parity) the archive
/// scrubber walked.
pub const ARCHIVE_SCRUBBED_SEGMENTS: &str = "ninec.archive.scrubbed_segments";
/// Counter: rotted archive segments rebuilt byte-exactly from parity and
/// rewritten in place by the scrubber.
pub const ARCHIVE_REPAIRED_SEGMENTS: &str = "ninec.archive.repaired_segments";
/// Counter: archive segments beyond the parity budget — unreadable and
/// unrecoverable.
pub const ARCHIVE_LOST_SEGMENTS: &str = "ninec.archive.lost_segments";
/// Counter: segment appends satisfied by the content-addressed dedup
/// table instead of new data-file bytes.
pub const ARCHIVE_DEDUP_HITS: &str = "ninec.archive.dedup_hits";

/// Flushes one scrub pass's tallies (segments walked / repaired / lost)
/// into the global registry — one batched flush per scrub.
pub fn publish_archive_scrub(scrubbed: u64, repaired: u64, lost: u64) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    let reg = ninec_obs::global();
    reg.counter(ARCHIVE_SCRUBBED_SEGMENTS).add(scrubbed);
    if repaired > 0 {
        reg.counter(ARCHIVE_REPAIRED_SEGMENTS).add(repaired);
    }
    if lost > 0 {
        reg.counter(ARCHIVE_LOST_SEGMENTS).add(lost);
    }
}

/// Records segment appends deduplicated against already-stored blobs
/// (batched once per archive append).
pub fn publish_archive_dedup_hits(n: u64) {
    if !ninec_obs::runtime_enabled() || n == 0 {
        return;
    }
    ninec_obs::global().counter(ARCHIVE_DEDUP_HITS).add(n);
}

/// Counter: decode runs completed.
pub const DECODE_RUNS: &str = "ninec.decode.runs";
/// Counter: blocks decoded.
pub const DECODE_BLOCKS: &str = "ninec.decode.blocks";
/// Counter: compressed bits consumed.
pub const DECODE_BITS_IN: &str = "ninec.decode.bits_in";
/// Counter: symbols emitted (clipped to `source_len`).
pub const DECODE_SYMBOLS_OUT: &str = "ninec.decode.symbols_out";

/// Flushes one encoding run's totals into the global registry.
///
/// `table`/`k` reconstruct the per-block size distribution from the case
/// counts (`N_i` samples of `|C_i| + payload_i(K)` each), so the hot loop
/// never touches a histogram. No-op unless telemetry is compiled in *and*
/// runtime-enabled.
pub fn publish_encode(stats: &EncodeStats, source_len: usize, table: &CodeTable, k: usize) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    let reg = ninec_obs::global();
    reg.counter(ENCODE_BLOCKS).add(stats.blocks);
    reg.counter(ENCODE_BITS).add(stats.encoded_bits);
    reg.counter(ENCODE_SOURCE_BITS).add(source_len as u64);
    reg.counter(ENCODE_LEFTOVER_X).add(stats.leftover_x);
    for case in ALL_CASES {
        let n = stats.case_counts[case.index()];
        if n > 0 {
            reg.counter(&case_counter_name(case.index())).add(n);
        }
    }
    let block_bits = reg.histogram(ENCODE_BLOCK_BITS);
    for case in ALL_CASES {
        let n = stats.case_counts[case.index()];
        if n > 0 {
            block_bits.record_n(table.block_bits(case, k) as u64, n);
        }
    }
    if source_len > 0 {
        let lx_pct = stats.leftover_x as f64 / source_len as f64 * 100.0;
        reg.histogram(ENCODE_LX_PCT).record(lx_pct.round() as u64);
    }
}

/// Records one run's encoder throughput (`source_bits` over `secs`).
///
/// No-op unless runtime-enabled or when the measurement is degenerate.
pub fn publish_encode_throughput(source_bits: usize, secs: f64) {
    if !ninec_obs::runtime_enabled() || secs <= 0.0 || source_bits == 0 {
        return;
    }
    let mbit_s = source_bits as f64 / secs / 1e6;
    ninec_obs::histogram(ENCODE_THROUGHPUT).record(mbit_s.round() as u64);
}

/// Flushes one decode run's totals into the global registry.
///
/// No-op unless telemetry is compiled in *and* runtime-enabled.
pub fn publish_decode(blocks: u64, bits_in: u64, symbols_out: u64) {
    if !ninec_obs::runtime_enabled() {
        return;
    }
    let reg = ninec_obs::global();
    reg.counter(DECODE_RUNS).inc();
    reg.counter(DECODE_BLOCKS).add(blocks);
    reg.counter(DECODE_BITS_IN).add(bits_in);
    reg.counter(DECODE_SYMBOLS_OUT).add(symbols_out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_counter_names_are_c1_to_c9() {
        assert_eq!(case_counter_name(0), "ninec.encode.case.C1");
        assert_eq!(case_counter_name(8), "ninec.encode.case.C9");
    }

    #[test]
    fn worker_gauge_names_are_indexed() {
        assert_eq!(
            worker_queue_depth_name(0),
            "ninec.engine.worker.0.queue_depth"
        );
        assert_eq!(
            worker_queue_depth_name(7),
            "ninec.engine.worker.7.queue_depth"
        );
    }

    #[test]
    fn publish_encode_matches_stats() {
        // Exercise the publishing path; exact-count assertions live in the
        // isolated differential suite (tests/obs_differential.rs at the
        // workspace root) because the global registry is process-wide.
        let table = CodeTable::paper();
        let stats = EncodeStats {
            case_counts: [3, 0, 0, 0, 1, 0, 0, 0, 2],
            blocks: 6,
            encoded_bits: 40,
            leftover_x: 4,
        };
        publish_encode(&stats, 48, &table, 8);
        if ninec_obs::is_compiled() {
            let snap = ninec_obs::snapshot();
            assert!(snap.counter(ENCODE_BLOCKS).unwrap_or(0) >= 6);
            assert!(snap.histogram(ENCODE_BLOCK_BITS).is_some());
        } else {
            assert!(ninec_obs::snapshot().is_empty());
        }
    }
}

//! Block and half classification, and greedy case selection.

use crate::code::{Case, CodeTable, HalfSpec, ALL_CASES};
use ninec_testdata::slice::TritSlice;
use ninec_testdata::trit::{Trit, TritVec};

/// Compatibility classes of one `K/2`-bit half.
///
/// A half is compatible with all-zeros if every symbol is `0` or `X`, and
/// with all-ones if every symbol is `1` or `X`; an all-`X` half is
/// compatible with both. A half containing both a care-0 and a care-1 is a
/// *mismatch* and must travel verbatim.
///
/// # Examples
///
/// ```
/// use ninec::block::HalfClass;
/// use ninec_testdata::trit::TritVec;
///
/// let h: TritVec = "0X0X".parse()?;
/// let class = HalfClass::classify(h.iter());
/// assert!(class.can_zero && !class.can_one && !class.is_mismatch());
/// let all_x = HalfClass::classify("XX".parse::<TritVec>()?.iter());
/// assert!(all_x.can_zero && all_x.can_one);
/// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HalfClass {
    /// Compatible with all-zeros.
    pub can_zero: bool,
    /// Compatible with all-ones.
    pub can_one: bool,
}

impl HalfClass {
    /// Classifies a half given its symbols.
    ///
    /// This is the scalar (per-symbol) reference; hot paths use
    /// [`HalfClass::classify_slice`], which does the same in `O(len / 64)`
    /// word operations. The two are checked against each other by the
    /// differential test-suite.
    pub fn classify<I: IntoIterator<Item = Trit>>(half: I) -> Self {
        Self::classify_scalar(half)
    }

    /// Scalar per-symbol classification, kept as the behavioural reference
    /// for differential testing against [`HalfClass::classify_slice`].
    #[doc(hidden)]
    pub fn classify_scalar<I: IntoIterator<Item = Trit>>(half: I) -> Self {
        let mut class = HalfClass {
            can_zero: true,
            can_one: true,
        };
        for t in half {
            match t {
                Trit::Zero => class.can_one = false,
                Trit::One => class.can_zero = false,
                Trit::X => {}
            }
            if class.is_mismatch() {
                break;
            }
        }
        class
    }

    /// Word-parallel classification of `slice[from .. to]`.
    ///
    /// Uses the packed care/value planes: the half is one-compatible iff no
    /// specified zero exists (`care & !value == 0` over the range) and
    /// zero-compatible iff no specified one exists (`value == 0`), each a
    /// masked popcount-style scan costing `O((to - from) / 64)` word
    /// operations. An empty range is compatible with both, matching the
    /// `X`-padding semantics of partial final blocks.
    ///
    /// # Examples
    ///
    /// ```
    /// use ninec::block::HalfClass;
    /// use ninec_testdata::trit::TritVec;
    ///
    /// let stream: TritVec = "0X0X1X11".parse()?;
    /// let left = HalfClass::classify_slice(stream.as_slice(), 0, 4);
    /// assert!(left.can_zero && !left.can_one);
    /// let right = HalfClass::classify_slice(stream.as_slice(), 4, 8);
    /// assert!(right.can_one && !right.can_zero);
    /// # Ok::<(), ninec_testdata::trit::ParseTritError>(())
    /// ```
    #[must_use]
    pub fn classify_slice(slice: TritSlice<'_>, from: usize, to: usize) -> Self {
        let (can_zero, can_one) = slice.classify_range(from, to);
        HalfClass { can_zero, can_one }
    }

    /// `true` if the half is compatible with neither uniform value.
    pub fn is_mismatch(self) -> bool {
        !self.can_zero && !self.can_one
    }

    /// Whether this half can be encoded under `spec`.
    ///
    /// Any half may be declared [`HalfSpec::Mismatch`] (sent verbatim);
    /// uniform specs require the corresponding compatibility.
    pub fn satisfies(self, spec: HalfSpec) -> bool {
        match spec {
            HalfSpec::Zero => self.can_zero,
            HalfSpec::One => self.can_one,
            HalfSpec::Mismatch => true,
        }
    }
}

/// Chooses the cheapest feasible case for a block with halves `(left,
/// right)` under `table` at block size `k`.
///
/// Cost is codeword length plus verbatim payload; ties break toward the
/// lower case index (the paper's order). With the paper's table this
/// reduces to the intuitive greedy: C1 if possible, else C2, C3, C4, then
/// the single-mismatch cases, then C9 — but the exhaustive search also
/// stays optimal under frequency-reassigned tables, where at small `K` a
/// short mismatch codeword can undercut a 5-bit uniform one.
///
/// # Examples
///
/// ```
/// use ninec::block::{choose_case, HalfClass};
/// use ninec::code::{Case, CodeTable};
///
/// let table = CodeTable::paper();
/// let zeros = HalfClass { can_zero: true, can_one: false };
/// let both = HalfClass { can_zero: true, can_one: true };
/// let mis = HalfClass { can_zero: false, can_one: false };
/// assert_eq!(choose_case(both, both, &table, 8), Case::ZZ);
/// assert_eq!(choose_case(zeros, mis, &table, 8), Case::ZM);
/// assert_eq!(choose_case(mis, mis, &table, 8), Case::MM);
/// ```
pub fn choose_case(left: HalfClass, right: HalfClass, table: &CodeTable, k: usize) -> Case {
    let mut best: Option<(usize, Case)> = None;
    for case in ALL_CASES {
        let (ls, rs) = case.halves();
        if !left.satisfies(ls) || !right.satisfies(rs) {
            continue;
        }
        let cost = table.block_bits(case, k);
        match best {
            Some((b, _)) if b <= cost => {}
            _ => best = Some((cost, case)),
        }
    }
    best.map(|(_, c)| c).expect("MM is always feasible")
}

/// Classifies the block `stream[start .. start + k]` and picks its case.
///
/// # Panics
///
/// Panics if the block does not fit in `stream` or `k` is odd/zero.
pub fn classify_block(stream: &TritVec, start: usize, k: usize, table: &CodeTable) -> Case {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "block size must be even and >= 2, got {k}"
    );
    assert!(start + k <= stream.len(), "block out of range");
    let half = k / 2;
    let block = stream.slice_view(start, start + k);
    let left = HalfClass::classify_slice(block, 0, half);
    let right = HalfClass::classify_slice(block, half, k);
    choose_case(left, right, table, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::PAPER_LENGTHS;

    fn class(s: &str) -> HalfClass {
        HalfClass::classify(s.parse::<TritVec>().unwrap().iter())
    }

    #[test]
    fn classification_basics() {
        assert!(class("0000").can_zero);
        assert!(!class("0000").can_one);
        assert!(class("1X11").can_one);
        assert!(!class("1X11").can_zero);
        assert!(class("XXXX").can_zero && class("XXXX").can_one);
        assert!(class("0X1X").is_mismatch());
    }

    #[test]
    fn greedy_prefers_cheapest_uniform_case() {
        let t = CodeTable::paper();
        // Both halves all-X: C1 (1 bit) beats C2 (2 bits).
        assert_eq!(choose_case(class("XX"), class("XX"), &t, 4), Case::ZZ);
        // Left forced 1, right all-X: C2 (2 bits) beats C4 (5 bits).
        assert_eq!(choose_case(class("1X"), class("XX"), &t, 4), Case::OO);
        // Left forced 0, right forced 1: only C3 among the uniform cases.
        assert_eq!(choose_case(class("00"), class("11"), &t, 4), Case::ZO);
        assert_eq!(choose_case(class("11"), class("0X"), &t, 4), Case::OZ);
    }

    #[test]
    fn single_mismatch_cases() {
        let t = CodeTable::paper();
        assert_eq!(choose_case(class("0X"), class("01"), &t, 4), Case::ZM);
        assert_eq!(choose_case(class("01"), class("X0"), &t, 4), Case::MZ);
        assert_eq!(choose_case(class("1X"), class("10"), &t, 4), Case::OM);
        assert_eq!(choose_case(class("10"), class("11"), &t, 4), Case::MO);
    }

    #[test]
    fn mismatch_with_flexible_half_prefers_cheaper_codeword() {
        let t = CodeTable::paper();
        // Right half is all-X: ZM and OM are both feasible with equal cost;
        // the tie breaks to the lower index, ZM (C5).
        assert_eq!(choose_case(class("XX"), class("XX"), &t, 4), Case::ZZ);
        assert_eq!(choose_case(class("10"), class("XX"), &t, 4), Case::MZ);
    }

    #[test]
    fn reassigned_table_can_flip_the_greedy_choice() {
        // Give MM the 1-bit codeword. At K = 4 a block with one forced-0
        // half and one forced-1 half costs: ZO = 5 (its codeword is now 5
        // bits) vs MM = 1 + 4 = 5 — tie, broken toward ZO (lower index).
        // At K = 2 the MM encoding would win outright; K = 4 documents the
        // tie-break, and the swapped C1<->C9 lengths keep Kraft tight.
        let mut lengths = PAPER_LENGTHS;
        lengths.swap(0, 8); // C1 <-> C9
        let t = CodeTable::from_lengths(&lengths).unwrap();
        let got = choose_case(class("00"), class("11"), &t, 4);
        assert_eq!(got, Case::ZO);
        // A genuinely uniform-both block still uses the cheapest uniform
        // case under the swapped table (OO has 2 bits < ZZ's 4).
        assert_eq!(choose_case(class("XX"), class("XX"), &t, 4), Case::OO);
    }

    #[test]
    fn classify_block_on_stream() {
        let t = CodeTable::paper();
        let stream: TritVec = "0000XXXX01XX1111".parse().unwrap();
        assert_eq!(classify_block(&stream, 0, 8, &t), Case::ZZ);
        assert_eq!(classify_block(&stream, 8, 8, &t), Case::MO);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_block_size_panics() {
        let t = CodeTable::paper();
        let stream: TritVec = "000".parse().unwrap();
        let _ = classify_block(&stream, 0, 3, &t);
    }
}

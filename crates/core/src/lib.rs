//! `ninec` — the nine-coded (9C) test data compression technique.
//!
//! Reproduction of *"Nine-Coded Compression Technique with Application to
//! Reduced Pin-Count Testing and Flexible On-Chip Decompression"*
//! (Tehranipour, Nourani, Chakrabarty — DATE 2004).
//!
//! A precomputed scan test set `T_D` over {`0`, `1`, `X`} is cut into
//! fixed `K`-bit blocks; each block's two halves are classified as
//! all-zeros / all-ones / mismatch and the block is replaced by one of
//! nine prefix-free codewords (plus verbatim payload for mismatch halves).
//! Don't-cares in the payload survive compression and can be filled later —
//! randomly for non-modeled-fault coverage, or transition-minimizing for
//! scan power.
//!
//! - [`code`] — the nine cases and the prefix code table;
//! - [`block`] — half/block classification and greedy case selection;
//! - [`mod@encode`] / [`mod@decode`] — the codec, word-parallel on the
//!   packed care/value planes, with streaming entry points
//!   ([`encode::StreamEncoder`], [`decode::StreamDecoder`]) that hold only
//!   `O(K)` state between chunks;
//! - [`stream`] — the [`stream::BitSink`] / [`stream::BitSource`]
//!   abstractions the streaming codec reads and writes;
//! - [`session`] — the unified [`session::DecodeSession`] builder entry
//!   point for everything decode (the deprecated `decode*` free
//!   functions it replaced were removed in 0.4.0 — see the README's
//!   migration note);
//! - [`engine`] — the sharded multi-core codec engine: a vendored
//!   work-stealing pool, the self-describing `9CSF` segment-frame
//!   container, and parallel encode/decode that is byte-identical to the
//!   serial path at any thread count;
//! - [`analysis`] — compression-ratio and test-application-time models;
//! - [`metrics`] — the crate's telemetry names and batched publishing
//!   into the [`ninec_obs`] global registry (compiled out without the
//!   default-on `obs` feature);
//! - [`freqdir`] — frequency-directed codeword reassignment (Table VII);
//! - [`multiscan`] — vertical data arrangement for `m` scan chains
//!   (reduced pin-count testing, Figures 3–4).
//!
//! # Quick start
//!
//! ```
//! use ninec::encode::Encoder;
//! use ninec::session::DecodeSession;
//! use ninec_testdata::gen::SyntheticProfile;
//!
//! // An s5378-shaped synthetic test set, compressed at K = 8.
//! let cubes = SyntheticProfile::new("demo", 50, 214, 0.72).generate(1);
//! let encoder = Encoder::new(8)?;
//! let encoded = encoder.encode_set(&cubes);
//! println!("CR = {:.1}%", encoded.compression_ratio());
//!
//! // Decoding preserves every care bit of the source.
//! let decoded = DecodeSession::new().decode(&encoded)?;
//! let src = cubes.as_stream();
//! assert!(decoded.len() == src.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod block;
pub mod code;
pub mod decode;
pub mod encode;
pub mod engine;
pub mod freqdir;
pub mod metrics;
pub mod multiscan;
pub mod session;
pub mod stream;

pub use analysis::{CompressionReport, TatModel};
pub use code::{Case, CodeTable};
pub use decode::{DecodeError, StreamDecoder};
pub use encode::{CaseSelect, EncodeStats, EncodeTotals, Encoded, Encoder, StreamEncoder};
pub use engine::{
    CancelToken, DamageReason, DamagedSegment, DecodeAudit, DecodeLimits, EncodeFrameError, Engine,
    EngineBuilder, FrameError, FramePlan, PlanEntry, Policy, SalvageReport, SegmentAudit,
    SegmentRung, SharedEngine, Trip,
};
pub use session::{DecodeOutcome, DecodeSession, RungKind};
pub use stream::{BitCounter, BitSink, BitSource};

//! Three-valued logic simulation and stuck-at fault simulation.
//!
//! Operates on the full-scan combinational view of a
//! [`ninec_circuit::Circuit`]: PIs and scan cells drive the logic, POs and
//! scan-cell `D` inputs are observed. 64 patterns are simulated per pass
//! (packed [`Word3`](logic::Word3) bit-planes), and faults are injected by
//! forcing the faulty net.
//!
//! - [`logic`] — packed Kleene three-valued logic;
//! - [`sim`] — parallel-pattern good-machine simulation;
//! - [`fault`] — stuck-at faults and structural collapsing;
//! - [`fsim`] — single-fault parallel-pattern fault simulation.
//!
//! # Example
//!
//! ```
//! use ninec_circuit::bench::{parse_bench, S27};
//! use ninec_fsim::fsim::fault_coverage;
//! use ninec_testdata::cube::TestSet;
//!
//! let s27 = parse_bench(S27)?;
//! let ts = TestSet::from_patterns(7, ["1010101", "0101010", "1111111"])?;
//! println!("coverage: {:.1}%", fault_coverage(&s27, &ts));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod fsim;
pub mod logic;
pub mod seq;
pub mod sim;

pub use fault::{all_faults, collapsed_faults, StuckFault};
pub use fsim::{fault_coverage, fault_simulate, n_detect, FaultSimResult};

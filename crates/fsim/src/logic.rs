//! Packed three-valued logic.
//!
//! A [`Word3`] holds 64 three-valued signals as two bit-planes: `ones`
//! (definitely 1) and `zeros` (definitely 0); a bit set in neither plane is
//! unknown (`X`). The planes are disjoint by construction. Gate evaluation
//! over `Word3` simulates 64 patterns per operation.

use ninec_circuit::GateKind;
use ninec_testdata::trit::Trit;
use std::fmt;

/// 64 packed three-valued signals.
///
/// # Examples
///
/// ```
/// use ninec_fsim::logic::Word3;
///
/// let a = Word3::splat_one();
/// let b = Word3::splat_x();
/// // 1 AND X = X, 1 OR X = 1.
/// assert_eq!(Word3::and2(a, b), Word3::splat_x());
/// assert_eq!(Word3::or2(a, b), Word3::splat_one());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Word3 {
    /// Lanes that are definitely 1.
    pub ones: u64,
    /// Lanes that are definitely 0.
    pub zeros: u64,
}

impl Word3 {
    /// All lanes `X`.
    pub fn splat_x() -> Self {
        Self { ones: 0, zeros: 0 }
    }

    /// All lanes 0.
    pub fn splat_zero() -> Self {
        Self {
            ones: 0,
            zeros: u64::MAX,
        }
    }

    /// All lanes 1.
    pub fn splat_one() -> Self {
        Self {
            ones: u64::MAX,
            zeros: 0,
        }
    }

    /// Sets lane `i` from a trit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn set_lane(&mut self, i: usize, t: Trit) {
        assert!(i < 64, "lane {i} out of range");
        let bit = 1u64 << i;
        self.ones &= !bit;
        self.zeros &= !bit;
        match t {
            Trit::One => self.ones |= bit,
            Trit::Zero => self.zeros |= bit,
            Trit::X => {}
        }
    }

    /// Reads lane `i` as a trit.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64`.
    pub fn lane(&self, i: usize) -> Trit {
        assert!(i < 64, "lane {i} out of range");
        let bit = 1u64 << i;
        if self.ones & bit != 0 {
            Trit::One
        } else if self.zeros & bit != 0 {
            Trit::Zero
        } else {
            Trit::X
        }
    }

    /// Lanes with a definite value (either plane set).
    pub fn defined(&self) -> u64 {
        self.ones | self.zeros
    }

    /// Lane-wise two-input AND (Kleene logic).
    pub fn and2(a: Self, b: Self) -> Self {
        Self {
            ones: a.ones & b.ones,
            zeros: a.zeros | b.zeros,
        }
    }

    /// Lane-wise two-input OR (Kleene logic).
    pub fn or2(a: Self, b: Self) -> Self {
        Self {
            ones: a.ones | b.ones,
            zeros: a.zeros & b.zeros,
        }
    }

    /// Lane-wise two-input XOR (`X` if either side is `X`).
    pub fn xor2(a: Self, b: Self) -> Self {
        let defined = a.defined() & b.defined();
        let val = a.ones ^ b.ones;
        Self {
            ones: val & defined,
            zeros: !val & defined,
        }
    }

    /// Lanes where `self` and `other` hold *definite, opposite* values —
    /// the detection criterion of stuck-at fault simulation.
    pub fn definite_difference(&self, other: &Self) -> u64 {
        (self.ones & other.zeros) | (self.zeros & other.ones)
    }
}

impl std::ops::Not for Word3 {
    type Output = Self;

    /// Lane-wise NOT (Kleene logic: `!X = X`).
    fn not(self) -> Self {
        Self {
            ones: self.zeros,
            zeros: self.ones,
        }
    }
}

impl fmt::Display for Word3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..64 {
            write!(f, "{}", self.lane(i))?;
        }
        Ok(())
    }
}

/// Evaluates one gate over packed fanin values.
///
/// # Panics
///
/// Panics on [`GateKind::Input`] / [`GateKind::Dff`] (they are sources, not
/// evaluated) or on an empty fanin list.
pub fn eval_gate(kind: GateKind, fanins: &[Word3]) -> Word3 {
    assert!(
        !fanins.is_empty(),
        "gate evaluation needs at least one fanin"
    );
    match kind {
        GateKind::Input | GateKind::Dff => {
            panic!("{kind} is a source, not an evaluated gate")
        }
        GateKind::Buf => fanins[0],
        GateKind::Not => !fanins[0],
        GateKind::And => fanins.iter().copied().fold(Word3::splat_one(), Word3::and2),
        GateKind::Nand => !eval_gate(GateKind::And, fanins),
        GateKind::Or => fanins.iter().copied().fold(Word3::splat_zero(), Word3::or2),
        GateKind::Nor => !eval_gate(GateKind::Or, fanins),
        GateKind::Xor => fanins[1..].iter().copied().fold(fanins[0], Word3::xor2),
        GateKind::Xnor => !eval_gate(GateKind::Xor, fanins),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(t: Trit) -> Word3 {
        match t {
            Trit::Zero => Word3::splat_zero(),
            Trit::One => Word3::splat_one(),
            Trit::X => Word3::splat_x(),
        }
    }

    #[test]
    fn kleene_truth_tables() {
        use Trit::{One as I, Zero as O, X};
        let cases = [
            // (a, b, and, or, xor)
            (O, O, O, O, O),
            (O, I, O, I, I),
            (I, I, I, I, O),
            (O, X, O, X, X),
            (I, X, X, I, X),
            (X, X, X, X, X),
        ];
        for (a, b, and, or, xor) in cases {
            assert_eq!(Word3::and2(w(a), w(b)), w(and), "{a} AND {b}");
            assert_eq!(Word3::or2(w(a), w(b)), w(or), "{a} OR {b}");
            assert_eq!(Word3::xor2(w(a), w(b)), w(xor), "{a} XOR {b}");
            // Commutativity.
            assert_eq!(Word3::and2(w(b), w(a)), w(and));
            assert_eq!(Word3::or2(w(b), w(a)), w(or));
            assert_eq!(Word3::xor2(w(b), w(a)), w(xor));
        }
    }

    #[test]
    fn lanes_are_independent() {
        let mut v = Word3::splat_x();
        v.set_lane(0, Trit::One);
        v.set_lane(1, Trit::Zero);
        v.set_lane(63, Trit::One);
        assert_eq!(v.lane(0), Trit::One);
        assert_eq!(v.lane(1), Trit::Zero);
        assert_eq!(v.lane(2), Trit::X);
        assert_eq!(v.lane(63), Trit::One);
        // Overwriting a lane clears the old plane bit.
        v.set_lane(0, Trit::Zero);
        assert_eq!(v.lane(0), Trit::Zero);
        assert_eq!(v.ones & 1, 0);
    }

    #[test]
    fn gate_eval_multi_input() {
        let a = w(Trit::One);
        let b = w(Trit::One);
        let c = w(Trit::Zero);
        assert_eq!(eval_gate(GateKind::And, &[a, b, c]), w(Trit::Zero));
        assert_eq!(eval_gate(GateKind::Nand, &[a, b, c]), w(Trit::One));
        assert_eq!(eval_gate(GateKind::Or, &[c, c, a]), w(Trit::One));
        assert_eq!(eval_gate(GateKind::Nor, &[c, c]), w(Trit::One));
        assert_eq!(eval_gate(GateKind::Xor, &[a, b, a]), w(Trit::One));
        assert_eq!(eval_gate(GateKind::Xnor, &[a, b]), w(Trit::One));
        assert_eq!(eval_gate(GateKind::Not, &[a]), w(Trit::Zero));
        assert_eq!(eval_gate(GateKind::Buf, &[c]), w(Trit::Zero));
    }

    #[test]
    fn controlling_values_beat_x() {
        // 0 AND X = 0 even though X is unknown; dually for OR.
        assert_eq!(
            eval_gate(GateKind::And, &[w(Trit::Zero), w(Trit::X)]),
            w(Trit::Zero)
        );
        assert_eq!(
            eval_gate(GateKind::Or, &[w(Trit::One), w(Trit::X)]),
            w(Trit::One)
        );
    }

    #[test]
    fn definite_difference() {
        let mut good = Word3::splat_x();
        let mut bad = Word3::splat_x();
        good.set_lane(0, Trit::One);
        bad.set_lane(0, Trit::Zero); // definite difference
        good.set_lane(1, Trit::One);
        bad.set_lane(1, Trit::One); // same
        good.set_lane(2, Trit::One); // bad lane 2 is X: not definite
        assert_eq!(good.definite_difference(&bad), 0b001);
    }

    #[test]
    #[should_panic(expected = "source")]
    fn input_not_evaluable() {
        let _ = eval_gate(GateKind::Input, &[Word3::splat_x()]);
    }
}

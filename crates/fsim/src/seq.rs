//! Sequential (cycle-by-cycle) three-valued simulation.
//!
//! Complements the combinational scan-view simulator: flip-flop state is
//! held across [`SequentialSimulator::step`] calls, so scan shifting,
//! capture cycles and full scan-test protocols can be replayed exactly as
//! a tester would drive them.

use crate::logic::{eval_gate, Word3};
use ninec_circuit::{Circuit, GateKind};
use ninec_testdata::trit::{Trit, TritVec};

/// A single-lane sequential simulator (64-lane packing is unnecessary
/// here; protocols are inherently serial).
///
/// # Examples
///
/// Drive the s27 benchmark for a couple of cycles:
///
/// ```
/// use ninec_circuit::bench::{parse_bench, S27};
/// use ninec_fsim::seq::SequentialSimulator;
/// use ninec_testdata::trit::TritVec;
///
/// let s27 = parse_bench(S27)?;
/// let mut sim = SequentialSimulator::new(&s27);
/// sim.reset_state(ninec_testdata::trit::Trit::Zero);
/// let pis: TritVec = "0000".parse()?;
/// let outputs = sim.step(&pis);
/// assert_eq!(outputs.len(), 1); // one PO
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SequentialSimulator<'a> {
    circuit: &'a Circuit,
    /// Current Q value per flip-flop, parallel to `circuit.dffs()`.
    state: Vec<Trit>,
}

impl<'a> SequentialSimulator<'a> {
    /// Creates a simulator with all flops at `X`.
    pub fn new(circuit: &'a Circuit) -> Self {
        Self {
            circuit,
            state: vec![Trit::X; circuit.dffs().len()],
        }
    }

    /// Forces every flop to `value` (e.g. a global reset).
    pub fn reset_state(&mut self, value: Trit) {
        self.state.fill(value);
    }

    /// Current flop states, in `circuit.dffs()` order.
    pub fn state(&self) -> &[Trit] {
        &self.state
    }

    /// Overwrites one flop's state.
    ///
    /// # Panics
    ///
    /// Panics if `ff_index` is out of range.
    pub fn set_flop(&mut self, ff_index: usize, value: Trit) {
        self.state[ff_index] = value;
    }

    /// Applies `pi_values` (one trit per primary input, in declaration
    /// order), evaluates the combinational logic, returns the primary
    /// outputs, and clocks every flop (`Q ← D`).
    ///
    /// # Panics
    ///
    /// Panics if `pi_values.len()` differs from the PI count.
    pub fn step(&mut self, pi_values: &TritVec) -> TritVec {
        let outputs = self.evaluate(pi_values, |c, values| {
            c.dffs()
                .iter()
                .map(|&ff| values[c.gate(ff).inputs[0]].lane(0))
                .collect()
        });
        outputs
    }

    /// Like [`step`](Self::step) but without clocking the flops — a pure
    /// combinational peek at the POs under the current state.
    pub fn peek(&self, pi_values: &TritVec) -> TritVec {
        let mut clone = self.clone();
        let keep = clone.state.clone();
        clone.evaluate(pi_values, move |_, _| keep)
    }

    fn evaluate<F>(&mut self, pi_values: &TritVec, next_state: F) -> TritVec
    where
        F: FnOnce(&Circuit, &[Word3]) -> Vec<Trit>,
    {
        let c = self.circuit;
        assert_eq!(
            pi_values.len(),
            c.primary_inputs().len(),
            "expected {} primary-input values, got {}",
            c.primary_inputs().len(),
            pi_values.len()
        );
        let mut values = vec![Word3::splat_x(); c.num_gates()];
        for (i, &net) in c.primary_inputs().iter().enumerate() {
            let mut w = Word3::splat_x();
            w.set_lane(0, pi_values.get(i).expect("length checked"));
            values[net] = w;
        }
        for (i, &ff) in c.dffs().iter().enumerate() {
            let mut w = Word3::splat_x();
            w.set_lane(0, self.state[i]);
            values[ff] = w;
        }
        for &net in c.topo_order() {
            let gate = c.gate(net);
            if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
                continue;
            }
            let fanins: Vec<Word3> = gate.inputs.iter().map(|&i| values[i]).collect();
            values[net] = eval_gate(gate.kind, &fanins);
        }
        let outputs: TritVec = c
            .primary_outputs()
            .iter()
            .map(|&net| values[net].lane(0))
            .collect();
        self.state = next_state(c, &values);
        outputs
    }

    /// Convenience for scan protocols on a
    /// [`ScannedCircuit`](ninec_circuit::scan::ScannedCircuit): shifts
    /// `pattern` in serially (scan_en = 1, one cycle per bit, functional
    /// PIs held at `X`), so `pattern[0]` — shifted first — ends up in the
    /// *last* chain cell.
    ///
    /// Returns the bits observed on `scan_out` during the shift (the
    /// previous chain contents, unloading).
    ///
    /// # Panics
    ///
    /// Panics if `pattern.len()` differs from the chain length.
    pub fn scan_shift(
        &mut self,
        scanned: &ninec_circuit::scan::ScannedCircuit,
        pattern: &TritVec,
    ) -> TritVec {
        let c = &scanned.circuit;
        assert!(
            std::ptr::eq(self.circuit, c),
            "simulator must wrap the scanned circuit"
        );
        assert_eq!(
            pattern.len(),
            scanned.chain.len(),
            "pattern length != chain length"
        );
        let num_pis = c.primary_inputs().len();
        let si_pos = c
            .primary_inputs()
            .iter()
            .position(|&n| n == scanned.scan_in)
            .expect("scan_in is a PI");
        let se_pos = c
            .primary_inputs()
            .iter()
            .position(|&n| n == scanned.scan_en)
            .expect("scan_en is a PI");
        let so_pos = c
            .primary_outputs()
            .iter()
            .position(|&n| n == scanned.scan_out)
            .expect("scan_out is a PO");
        let mut unloaded = TritVec::with_capacity(pattern.len());
        for bit in pattern.iter() {
            let mut pis = TritVec::repeat(Trit::X, num_pis);
            pis.set(si_pos, bit);
            pis.set(se_pos, Trit::One);
            let outs = self.step(&pis);
            unloaded.push(outs.get(so_pos).expect("scan_out present"));
        }
        unloaded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_circuit::bench::{parse_bench, S27};
    use ninec_circuit::scan::insert_scan;
    use ninec_circuit::Circuit;

    /// A 1-bit toggler: q = DFF(NOT q), y = q.
    fn toggler() -> Circuit {
        parse_bench("INPUT(en)\nOUTPUT(y)\nq = DFF(nq)\nnq = NOT(q)\ny = BUF(q)\n").unwrap()
    }

    #[test]
    fn state_advances_each_step() {
        let c = toggler();
        let mut sim = SequentialSimulator::new(&c);
        sim.reset_state(Trit::Zero);
        let pis: TritVec = "X".parse().unwrap();
        assert_eq!(sim.step(&pis).to_string(), "0");
        assert_eq!(sim.step(&pis).to_string(), "1");
        assert_eq!(sim.step(&pis).to_string(), "0");
    }

    #[test]
    fn peek_does_not_clock() {
        let c = toggler();
        let mut sim = SequentialSimulator::new(&c);
        sim.reset_state(Trit::Zero);
        let pis: TritVec = "X".parse().unwrap();
        assert_eq!(sim.peek(&pis).to_string(), "0");
        assert_eq!(sim.peek(&pis).to_string(), "0");
        assert_eq!(sim.state(), &[Trit::Zero]);
        sim.step(&pis);
        assert_eq!(sim.state(), &[Trit::One]);
    }

    #[test]
    fn unknown_state_propagates_until_reset() {
        let c = toggler();
        let mut sim = SequentialSimulator::new(&c);
        let pis: TritVec = "X".parse().unwrap();
        assert_eq!(sim.step(&pis).to_string(), "X");
        sim.set_flop(0, Trit::One);
        assert_eq!(sim.step(&pis).to_string(), "1");
    }

    #[test]
    fn scan_shift_loads_the_chain_serially() {
        let s27 = parse_bench(S27).unwrap();
        let scanned = insert_scan(&s27).unwrap();
        let mut sim = SequentialSimulator::new(&scanned.circuit);
        sim.reset_state(Trit::Zero);
        let pattern: TritVec = "101".parse().unwrap();
        sim.scan_shift(&scanned, &pattern);
        // First-shifted bit ends in the last cell: state = reverse order.
        assert_eq!(
            sim.state(),
            &[Trit::One, Trit::Zero, Trit::One],
            "chain contents after shifting 101"
        );
    }

    #[test]
    fn scan_shift_unloads_previous_contents() {
        let s27 = parse_bench(S27).unwrap();
        let scanned = insert_scan(&s27).unwrap();
        let mut sim = SequentialSimulator::new(&scanned.circuit);
        // Preload a known state, then shift: scan_out yields it MSB-ish
        // (last cell first).
        sim.set_flop(0, Trit::One);
        sim.set_flop(1, Trit::Zero);
        sim.set_flop(2, Trit::One);
        let zeros: TritVec = "000".parse().unwrap();
        let unloaded = sim.scan_shift(&scanned, &zeros);
        assert_eq!(unloaded.to_string(), "101");
        assert_eq!(sim.state(), &[Trit::Zero, Trit::Zero, Trit::Zero]);
    }
}

//! Single stuck-at faults and structural collapsing.

use ninec_circuit::{Circuit, GateKind, NetId};
use std::fmt;

/// A single stuck-at fault on a net (gate output / stem).
///
/// # Examples
///
/// ```
/// use ninec_fsim::fault::StuckFault;
///
/// let f = StuckFault::sa0(3);
/// assert_eq!(f.net, 3);
/// assert!(!f.stuck_at_one);
/// assert_eq!(format!("{f}"), "net3/sa0");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StuckFault {
    /// The faulty net.
    pub net: NetId,
    /// `true` for stuck-at-1, `false` for stuck-at-0.
    pub stuck_at_one: bool,
}

impl StuckFault {
    /// Stuck-at-0 on `net`.
    pub fn sa0(net: NetId) -> Self {
        Self {
            net,
            stuck_at_one: false,
        }
    }

    /// Stuck-at-1 on `net`.
    pub fn sa1(net: NetId) -> Self {
        Self {
            net,
            stuck_at_one: true,
        }
    }
}

impl fmt::Display for StuckFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "net{}/sa{}", self.net, self.stuck_at_one as u8)
    }
}

/// The uncollapsed fault list: stuck-at-0 and stuck-at-1 on every net.
pub fn all_faults(circuit: &Circuit) -> Vec<StuckFault> {
    (0..circuit.num_gates())
        .flat_map(|n| [StuckFault::sa0(n), StuckFault::sa1(n)])
        .collect()
}

/// Structurally collapsed fault list.
///
/// Uses gate-level equivalence on fanout-free nets: for an AND/NAND gate,
/// a stuck-at-0 on a fanout-free input net is equivalent to the output
/// stuck at the gate's 0-response (sa0 for AND, sa1 for NAND) and is
/// dropped; dually for OR/NOR with stuck-at-1 inputs; for NOT/BUF both
/// input faults collapse into the output. The retained representative is
/// always the fault *closest to the outputs* in each equivalence class.
pub fn collapsed_faults(circuit: &Circuit) -> Vec<StuckFault> {
    // Fanout counts.
    let n = circuit.num_gates();
    let mut fanout = vec![0usize; n];
    for id in 0..n {
        for &src in &circuit.gate(id).inputs {
            fanout[src] += 1;
        }
    }
    for &po in circuit.primary_outputs() {
        fanout[po] += 1;
    }

    let mut keep = vec![[true, true]; n]; // [sa0, sa1] per net
    for id in 0..n {
        let gate = circuit.gate(id);
        for &src in &gate.inputs {
            if fanout[src] != 1 {
                continue; // only fanout-free nets collapse into this gate
            }
            match gate.kind {
                GateKind::And | GateKind::Nand => keep[src][0] = false,
                GateKind::Or | GateKind::Nor => keep[src][1] = false,
                GateKind::Buf | GateKind::Not | GateKind::Dff => {
                    keep[src][0] = false;
                    keep[src][1] = false;
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    for (net, k) in keep.iter().enumerate() {
        if k[0] {
            out.push(StuckFault::sa0(net));
        }
        if k[1] {
            out.push(StuckFault::sa1(net));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_circuit::bench::{parse_bench, C17, S27};

    #[test]
    fn all_faults_count() {
        let c17 = parse_bench(C17).unwrap();
        assert_eq!(all_faults(&c17).len(), 2 * c17.num_gates());
    }

    #[test]
    fn collapsing_shrinks_the_list() {
        let s27 = parse_bench(S27).unwrap();
        let all = all_faults(&s27);
        let collapsed = collapsed_faults(&s27);
        assert!(collapsed.len() < all.len());
        assert!(!collapsed.is_empty());
    }

    #[test]
    fn fanout_stems_keep_both_faults() {
        // c17: N11 fans out to N16 and N19, so both its faults stay.
        let c17 = parse_bench(C17).unwrap();
        let n11 = c17.net_by_name("N11").unwrap();
        let collapsed = collapsed_faults(&c17);
        assert!(collapsed.contains(&StuckFault::sa0(n11)));
        assert!(collapsed.contains(&StuckFault::sa1(n11)));
    }

    #[test]
    fn fanout_free_nand_input_drops_sa0() {
        // c17: N10 feeds only N22 (a NAND): N10/sa0 collapses away,
        // N10/sa1 stays.
        let c17 = parse_bench(C17).unwrap();
        let n10 = c17.net_by_name("N10").unwrap();
        let collapsed = collapsed_faults(&c17);
        assert!(!collapsed.contains(&StuckFault::sa0(n10)));
        assert!(collapsed.contains(&StuckFault::sa1(n10)));
    }

    #[test]
    fn display_format() {
        assert_eq!(StuckFault::sa1(7).to_string(), "net7/sa1");
    }
}

//! Parallel-pattern three-valued logic simulation of the full-scan view.

use crate::logic::{eval_gate, Word3};
use ninec_circuit::{Circuit, GateKind};
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::TritVec;

/// Simulates one chunk of up to 64 cubes, returning per-net packed values.
///
/// Cubes address the scan view: positions `0..num_pis` drive the PIs,
/// the rest drive the FF outputs (PPIs).
pub(crate) fn simulate_chunk(
    circuit: &Circuit,
    cubes: &[TritVec],
    force: Option<(usize, Word3)>,
) -> Vec<Word3> {
    debug_assert!(cubes.len() <= 64, "chunk too wide");
    let view = circuit.scan_view();
    let mut values = vec![Word3::splat_x(); circuit.num_gates()];
    for (pos, &net) in view.inputs.iter().enumerate() {
        let mut w = Word3::splat_x();
        for (lane, cube) in cubes.iter().enumerate() {
            w.set_lane(lane, cube.get(pos).expect("cube width matches scan view"));
        }
        values[net] = w;
    }
    if let Some((net, w)) = force {
        values[net] = w;
    }
    for &net in circuit.topo_order() {
        let gate = circuit.gate(net);
        if matches!(gate.kind, GateKind::Input | GateKind::Dff) {
            continue;
        }
        let fanins: Vec<Word3> = gate.inputs.iter().map(|&i| values[i]).collect();
        let mut out = eval_gate(gate.kind, &fanins);
        if let Some((fnet, w)) = force {
            if fnet == net {
                out = w;
            }
        }
        values[net] = out;
    }
    values
}

/// Simulates every cube of `set` through the full-scan view, returning one
/// response per cube over the view's outputs (POs then PPOs).
///
/// Don't-cares propagate pessimistically (Kleene logic): an output is `X`
/// unless the cube's care bits force it.
///
/// # Panics
///
/// Panics if `set.pattern_len()` differs from the scan view's cube width.
///
/// # Examples
///
/// ```
/// use ninec_circuit::bench::{parse_bench, C17};
/// use ninec_fsim::sim::simulate_cubes;
/// use ninec_testdata::cube::TestSet;
///
/// let c17 = parse_bench(C17)?;
/// let cubes = TestSet::from_patterns(5, ["00000", "11111"])?;
/// let responses = simulate_cubes(&c17, &cubes);
/// // All-0 inputs: the second NAND layer sees all 1s, so both POs are 0.
/// assert_eq!(responses[0].to_string(), "00");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate_cubes(circuit: &Circuit, set: &TestSet) -> Vec<TritVec> {
    let view = circuit.scan_view();
    assert_eq!(
        set.pattern_len(),
        view.cube_width(),
        "cube width {} does not match scan view width {}",
        set.pattern_len(),
        view.cube_width()
    );
    let cubes: Vec<TritVec> = set.patterns().collect();
    let mut out = Vec::with_capacity(cubes.len());
    for chunk in cubes.chunks(64) {
        let values = simulate_chunk(circuit, chunk, None);
        for lane in 0..chunk.len() {
            let mut resp = TritVec::with_capacity(view.outputs.len());
            for &net in &view.outputs {
                resp.push(values[net].lane(lane));
            }
            out.push(resp);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ninec_circuit::bench::{parse_bench, C17, S27};

    #[test]
    fn c17_known_vectors() {
        let c17 = parse_bench(C17).unwrap();
        // Inputs N1 N2 N3 N6 N7; outputs N22 N23.
        // N10=!(N1&N3) N11=!(N3&N6) N16=!(N2&N11) N19=!(N11&N7)
        // N22=!(N10&N16) N23=!(N16&N19)
        let cases = [
            ("00000", "11"), // N10=1 N11=1 N16=1 N19=1 -> N22=0? check below
            ("11111", "11"),
            ("10101", "11"),
        ];
        // Recompute case 1 by hand: N10=!(0&0)=1, N11=!(0&0)=1,
        // N16=!(0&1)=1, N19=!(1&0)=1, N22=!(1&1)=0, N23=!(1&1)=0.
        let cubes = TestSet::from_patterns(5, cases.iter().map(|c| c.0)).unwrap();
        let resp = simulate_cubes(&c17, &cubes);
        assert_eq!(resp[0].to_string(), "00");
        // 11111: N10=0 N11=0 N16=1 N19=1 N22=1 N23=0.
        assert_eq!(resp[1].to_string(), "10");
        // 10101: N1=1 N2=0 N3=1 N6=0 N7=1: N10=0 N11=1 N16=1 N19=0
        // N22=!(0&1)=1 N23=!(1&0)=1.
        assert_eq!(resp[2].to_string(), "11");
    }

    #[test]
    fn x_inputs_propagate() {
        let c17 = parse_bench(C17).unwrap();
        let cubes = TestSet::from_patterns(5, ["XXXXX", "0X0XX"]).unwrap();
        let resp = simulate_cubes(&c17, &cubes);
        assert_eq!(resp[0].to_string(), "XX");
        // N1=0, N3=0: N10=1, N11=1; N16=!(X&1)=X, N19=!(1&X)=X ->
        // N22=!(1&X)=X, N23=X.
        assert_eq!(resp[1].to_string(), "XX");
    }

    #[test]
    fn controlling_x_resolution() {
        let c17 = parse_bench(C17).unwrap();
        // N3=1,N6=1 -> N11=0 -> N16=1,N19=1 -> N23=0 regardless of X.
        let cubes = TestSet::from_patterns(5, ["XX111"]).unwrap();
        let resp = simulate_cubes(&c17, &cubes);
        assert_eq!(resp[0].get(1).unwrap().to_char(), '0');
    }

    #[test]
    fn s27_scan_view_simulation() {
        let s27 = parse_bench(S27).unwrap();
        let width = s27.scan_view().cube_width();
        assert_eq!(width, 7);
        let cubes = TestSet::from_patterns(7, ["0000000", "1111111", "XXXXXXX"]).unwrap();
        let resp = simulate_cubes(&s27, &cubes);
        assert_eq!(resp.len(), 3);
        // 4 outputs: 1 PO + 3 PPOs.
        assert_eq!(resp[0].len(), 4);
        // Fully specified cubes give fully specified responses.
        assert_eq!(resp[0].count_x(), 0);
        assert_eq!(resp[1].count_x(), 0);
    }

    #[test]
    fn more_than_64_patterns() {
        let c17 = parse_bench(C17).unwrap();
        let mut ts = TestSet::new(5);
        for i in 0..150 {
            let bits: String = (0..5)
                .map(|b| if i >> b & 1 == 1 { '1' } else { '0' })
                .collect();
            ts.push_pattern(&bits.parse().unwrap()).unwrap();
        }
        let resp = simulate_cubes(&c17, &ts);
        assert_eq!(resp.len(), 150);
        // Pattern i and pattern i+32 have identical inputs (5 bits wrap).
        assert_eq!(resp[3], resp[35]);
    }
}

//! Parallel-pattern single-fault stuck-at fault simulation.
//!
//! For each fault, the circuit is re-simulated with the faulty net forced,
//! 64 patterns per pass, and compared against the cached good-machine
//! response. Detection is *definite*: the good and faulty values must be
//! specified and opposite at some observation point (don't-cares never
//! count as detection, matching the pessimism scan test requires).

use crate::fault::StuckFault;
use crate::logic::Word3;
use crate::sim::simulate_chunk;
use ninec_circuit::Circuit;
use ninec_testdata::cube::TestSet;
use ninec_testdata::trit::TritVec;
use std::fmt;

/// Outcome of fault-simulating a test set against a fault list.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSimResult {
    /// For each fault (in input order), the index of the first detecting
    /// pattern, or `None` if undetected.
    pub first_detection: Vec<Option<usize>>,
    /// For each fault, whether some pattern *possibly* detects it: the
    /// good machine is specified at an output where the faulty machine is
    /// `X` (industry's "potential detect"; counts only when the fault was
    /// never definitely detected).
    pub possible_detection: Vec<bool>,
    /// Number of faults simulated.
    pub total_faults: usize,
}

impl FaultSimResult {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.first_detection.iter().filter(|d| d.is_some()).count()
    }

    /// Fault coverage in percent (definite detections only).
    pub fn coverage_percent(&self) -> f64 {
        if self.total_faults == 0 {
            return 100.0;
        }
        self.detected() as f64 / self.total_faults as f64 * 100.0
    }

    /// Number of possibly-but-not-definitely detected faults.
    pub fn possibly_detected(&self) -> usize {
        self.first_detection
            .iter()
            .zip(&self.possible_detection)
            .filter(|(d, p)| d.is_none() && **p)
            .count()
    }

    /// Optimistic coverage counting each potential detect at the given
    /// credit (industry convention: 0.5).
    pub fn coverage_with_potential(&self, credit: f64) -> f64 {
        if self.total_faults == 0 {
            return 100.0;
        }
        (self.detected() as f64 + credit * self.possibly_detected() as f64)
            / self.total_faults as f64
            * 100.0
    }

    /// Indices of the undetected faults.
    pub fn undetected_indices(&self) -> Vec<usize> {
        self.first_detection
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect()
    }
}

impl fmt::Display for FaultSimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} faults detected ({:.2}%)",
            self.detected(),
            self.total_faults,
            self.coverage_percent()
        )
    }
}

/// Fault-simulates `set` against `faults` on the full-scan view of
/// `circuit`.
///
/// # Panics
///
/// Panics if the set's cube width differs from the scan view's.
///
/// # Examples
///
/// ```
/// use ninec_circuit::bench::{parse_bench, C17};
/// use ninec_fsim::fault::collapsed_faults;
/// use ninec_fsim::fsim::fault_simulate;
/// use ninec_testdata::cube::TestSet;
///
/// let c17 = parse_bench(C17)?;
/// let faults = collapsed_faults(&c17);
/// // Six vectors suffice for full stuck-at coverage of c17.
/// let ts = TestSet::from_patterns(
///     5,
///     ["10111", "01111", "11000", "00010", "01010", "10101"],
/// )?;
/// let result = fault_simulate(&c17, &ts, &faults);
/// assert_eq!(result.coverage_percent(), 100.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn fault_simulate(circuit: &Circuit, set: &TestSet, faults: &[StuckFault]) -> FaultSimResult {
    let view = circuit.scan_view();
    assert_eq!(
        set.pattern_len(),
        view.cube_width(),
        "cube width {} does not match scan view width {}",
        set.pattern_len(),
        view.cube_width()
    );
    let cubes: Vec<TritVec> = set.patterns().collect();
    let mut first_detection = vec![None; faults.len()];
    let mut possible_detection = vec![false; faults.len()];

    for (chunk_idx, chunk) in cubes.chunks(64).enumerate() {
        let good = simulate_chunk(circuit, chunk, None);
        let remaining: Vec<usize> = first_detection
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.is_none().then_some(i))
            .collect();
        if remaining.is_empty() {
            break;
        }
        let lane_mask = if chunk.len() < 64 {
            (1u64 << chunk.len()) - 1
        } else {
            u64::MAX
        };
        for fi in remaining {
            let fault = faults[fi];
            let forced = if fault.stuck_at_one {
                Word3::splat_one()
            } else {
                Word3::splat_zero()
            };
            let faulty = simulate_chunk(circuit, chunk, Some((fault.net, forced)));
            let mut lanes = 0u64;
            let mut maybe = 0u64;
            for &net in &view.outputs {
                lanes |= good[net].definite_difference(&faulty[net]);
                // Potential detect: good specified, faulty unknown.
                maybe |= good[net].defined() & !faulty[net].defined();
            }
            lanes &= lane_mask;
            if lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                first_detection[fi] = Some(chunk_idx * 64 + lane);
            }
            if maybe & lane_mask != 0 {
                possible_detection[fi] = true;
            }
        }
    }
    FaultSimResult {
        first_detection,
        possible_detection,
        total_faults: faults.len(),
    }
}

/// Convenience: coverage of `set` over the collapsed fault list.
pub fn fault_coverage(circuit: &Circuit, set: &TestSet) -> f64 {
    let faults = crate::fault::collapsed_faults(circuit);
    fault_simulate(circuit, set, &faults).coverage_percent()
}

/// N-detect profile: how many patterns of `set` definitely detect each
/// fault (capped at `n_cap` to bound the work).
///
/// N-detect is the standard proxy for *non-modeled-fault* quality: a set
/// that detects each stuck-at fault many times, through different
/// activation paths, is far more likely to catch defects outside the
/// fault model — precisely what the 9C paper's "fill the leftover
/// don't-cares randomly" feature is for.
///
/// # Panics
///
/// Panics if the set's cube width differs from the scan view's, or if
/// `n_cap` is 0.
///
/// # Examples
///
/// ```
/// use ninec_circuit::bench::{parse_bench, C17};
/// use ninec_fsim::fault::collapsed_faults;
/// use ninec_fsim::fsim::n_detect;
/// use ninec_testdata::cube::TestSet;
///
/// let c17 = parse_bench(C17)?;
/// let faults = collapsed_faults(&c17);
/// let ts = TestSet::from_patterns(5, ["10111", "10111", "01111"])?;
/// let counts = n_detect(&c17, &ts, &faults, 8);
/// // Duplicated patterns double-count detections.
/// assert!(counts.iter().any(|&c| c >= 2));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn n_detect(circuit: &Circuit, set: &TestSet, faults: &[StuckFault], n_cap: u32) -> Vec<u32> {
    assert!(n_cap > 0, "n_cap must be positive");
    let view = circuit.scan_view();
    assert_eq!(
        set.pattern_len(),
        view.cube_width(),
        "cube width {} does not match scan view width {}",
        set.pattern_len(),
        view.cube_width()
    );
    let cubes: Vec<TritVec> = set.patterns().collect();
    let mut counts = vec![0u32; faults.len()];
    for chunk in cubes.chunks(64) {
        if counts.iter().all(|&c| c >= n_cap) {
            break;
        }
        let good = simulate_chunk(circuit, chunk, None);
        let lane_mask = if chunk.len() < 64 {
            (1u64 << chunk.len()) - 1
        } else {
            u64::MAX
        };
        for (fi, fault) in faults.iter().enumerate() {
            if counts[fi] >= n_cap {
                continue;
            }
            let forced = if fault.stuck_at_one {
                Word3::splat_one()
            } else {
                Word3::splat_zero()
            };
            let faulty = simulate_chunk(circuit, chunk, Some((fault.net, forced)));
            let mut lanes = 0u64;
            for &net in &view.outputs {
                lanes |= good[net].definite_difference(&faulty[net]);
            }
            counts[fi] = (counts[fi] + (lanes & lane_mask).count_ones()).min(n_cap);
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{all_faults, collapsed_faults};
    use ninec_circuit::bench::{parse_bench, C17, S27};
    use ninec_circuit::random::RandomCircuitSpec;

    #[test]
    fn no_patterns_no_detection() {
        let c17 = parse_bench(C17).unwrap();
        let faults = collapsed_faults(&c17);
        let ts = TestSet::new(5);
        let r = fault_simulate(&c17, &ts, &faults);
        assert_eq!(r.detected(), 0);
        assert_eq!(r.coverage_percent(), 0.0);
    }

    #[test]
    fn exhaustive_c17_reaches_full_coverage() {
        let c17 = parse_bench(C17).unwrap();
        let faults = collapsed_faults(&c17);
        let mut ts = TestSet::new(5);
        for v in 0..32u32 {
            let bits: String = (0..5)
                .map(|b| if v >> b & 1 == 1 { '1' } else { '0' })
                .collect();
            ts.push_pattern(&bits.parse().unwrap()).unwrap();
        }
        let r = fault_simulate(&c17, &ts, &faults);
        assert_eq!(
            r.detected(),
            r.total_faults,
            "undetected: {:?}",
            r.undetected_indices()
        );
        assert_eq!(r.coverage_percent(), 100.0);
    }

    #[test]
    fn x_cubes_detect_conservatively() {
        let c17 = parse_bench(C17).unwrap();
        let faults = all_faults(&c17);
        let all_x = TestSet::from_patterns(5, ["XXXXX"]).unwrap();
        let r = fault_simulate(&c17, &all_x, &faults);
        assert_eq!(
            r.detected(),
            0,
            "all-X cube cannot definitely detect anything"
        );
    }

    #[test]
    fn targeted_cube_detects_with_x() {
        let c17 = parse_bench(C17).unwrap();
        // N1=1, N3=1 -> N10=0; N10/sa1 should be detected if the effect
        // propagates: N22=!(N10&N16). Need N16=1: N2=0 suffices (N16=!(N2&N11)).
        let n10 = c17.net_by_name("N10").unwrap();
        let cube = TestSet::from_patterns(5, ["1010X"]).unwrap();
        let r = fault_simulate(&c17, &cube, &[StuckFault::sa1(n10)]);
        assert_eq!(r.first_detection[0], Some(0));
    }

    #[test]
    fn first_detection_index_is_first() {
        let c17 = parse_bench(C17).unwrap();
        let n10 = c17.net_by_name("N10").unwrap();
        let ts = TestSet::from_patterns(5, ["00000", "1010X", "1010X"]).unwrap();
        let r = fault_simulate(&c17, &ts, &[StuckFault::sa1(n10)]);
        assert_eq!(r.first_detection[0], Some(1));
    }

    #[test]
    fn s27_random_patterns_get_high_coverage() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let s27 = parse_bench(S27).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut ts = TestSet::new(7);
        for _ in 0..64 {
            let bits: String = (0..7)
                .map(|_| if rng.gen_bool(0.5) { '1' } else { '0' })
                .collect();
            ts.push_pattern(&bits.parse().unwrap()).unwrap();
        }
        let cov = fault_coverage(&s27, &ts);
        assert!(cov > 80.0, "coverage {cov}");
    }

    #[test]
    fn random_circuit_simulates_without_panic() {
        let c = RandomCircuitSpec::new("fz", 6, 6, 80).generate(11);
        let faults = collapsed_faults(&c);
        let ts = TestSet::from_patterns(12, ["010101010101", "111111000000"]).unwrap();
        let r = fault_simulate(&c, &ts, &faults);
        assert!(r.detected() <= r.total_faults);
    }

    #[test]
    fn n_detect_counts_every_detection() {
        let c17 = parse_bench(C17).unwrap();
        let faults = collapsed_faults(&c17);
        let once = TestSet::from_patterns(5, ["10111"]).unwrap();
        let thrice = TestSet::from_patterns(5, ["10111", "10111", "10111"]).unwrap();
        let a = n_detect(&c17, &once, &faults, 16);
        let b = n_detect(&c17, &thrice, &faults, 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(*y, x * 3, "triplicated pattern must triple the count");
        }
    }

    #[test]
    fn n_detect_caps() {
        let c17 = parse_bench(C17).unwrap();
        let faults = collapsed_faults(&c17);
        let mut ts = TestSet::new(5);
        for _ in 0..10 {
            ts.push_pattern(&"10111".parse().unwrap()).unwrap();
        }
        let counts = n_detect(&c17, &ts, &faults, 4);
        assert!(counts.iter().all(|&c| c <= 4));
        assert!(counts.contains(&4));
    }

    #[test]
    fn n_detect_consistent_with_first_detection() {
        let s27 = parse_bench(S27).unwrap();
        let faults = collapsed_faults(&s27);
        let ts = TestSet::from_patterns(7, ["1010101", "0101010", "1111111", "0000000"]).unwrap();
        let sim = fault_simulate(&s27, &ts, &faults);
        let counts = n_detect(&s27, &ts, &faults, 8);
        for (d, &c) in sim.first_detection.iter().zip(&counts) {
            assert_eq!(d.is_some(), c > 0, "detected iff n-detect > 0");
        }
    }

    #[test]
    fn repeated_random_fill_raises_distinct_n_detect() {
        // The paper's headline feature: re-applying X-rich patterns with
        // fresh random fill keeps adding *distinct* detecting patterns,
        // while constant fill saturates after the first application.
        use ninec_testdata::fill::{fill_test_set, FillStrategy};
        let s27 = parse_bench(S27).unwrap();
        let faults = collapsed_faults(&s27);
        let ts = TestSet::from_patterns(
            7,
            [
                "1XXXXXX", "X0XXXXX", "XX1XXXX", "XXX0XXX", "XXXX1XX", "XXXXX0X", "XXXXXX1",
            ],
        )
        .unwrap();
        // Zero fill: repetition yields the identical pattern set.
        let zero = fill_test_set(&ts, FillStrategy::Zero);
        let nz: u32 = n_detect(&s27, &zero, &faults, 64).iter().sum();
        // Random fill applied 4 times, deduplicated.
        let mut seen = std::collections::HashSet::new();
        let mut union = TestSet::new(7);
        for r in 0..4u64 {
            for p in fill_test_set(&ts, FillStrategy::Random { seed: 11 + r }).patterns() {
                if seen.insert(p.to_string()) {
                    union.push_pattern(&p).unwrap();
                }
            }
        }
        let nr: u32 = n_detect(&s27, &union, &faults, 64).iter().sum();
        assert!(
            nr > nz,
            "4x random fill ({nr} distinct detections) should beat constant fill ({nz})"
        );
    }

    #[test]
    fn result_display() {
        let r = FaultSimResult {
            first_detection: vec![Some(0), None],
            possible_detection: vec![false, true],
            total_faults: 2,
        };
        assert_eq!(r.to_string(), "1/2 faults detected (50.00%)");
        assert_eq!(r.possibly_detected(), 1);
        assert!((r.coverage_with_potential(0.5) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn potential_detects_counted_for_x_cubes() {
        // An all-X cube: nothing is definite, but a fault forcing a
        // constant makes the faulty side specified while the good side is
        // X — that is NOT a potential detect (we need good specified,
        // faulty X). Build the converse: good specified, faulty X.
        // c17 with a cube specifying all inputs: good fully specified.
        // Fault sa1 on an input the cube sets to 1 never produces any
        // difference (and no X) -> neither detected nor potential.
        let c17 = parse_bench(C17).unwrap();
        let n1 = c17.net_by_name("N1").unwrap();
        let ts = TestSet::from_patterns(5, ["10111"]).unwrap();
        let r = fault_simulate(&c17, &ts, &[StuckFault::sa1(n1)]);
        assert_eq!(r.first_detection[0], None);
        assert!(!r.possible_detection[0]);
        assert_eq!(r.coverage_with_potential(0.5), 0.0);
    }

    #[test]
    fn coverage_with_potential_at_least_definite() {
        let s27 = parse_bench(S27).unwrap();
        let faults = collapsed_faults(&s27);
        let ts = TestSet::from_patterns(7, ["101X10X", "X1X0X01", "0101010"]).unwrap();
        let r = fault_simulate(&s27, &ts, &faults);
        assert!(r.coverage_with_potential(0.5) >= r.coverage_percent());
        assert!(r.coverage_with_potential(1.0) >= r.coverage_with_potential(0.5));
    }
}
